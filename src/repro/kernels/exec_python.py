"""Pure-Python kernel executor: an ``array('d')`` slot interpreter.

The dependency-free fallback backend (``"array"``).  Replays one
lowered :class:`~repro.kernels.program.KernelProgram` at a time over a
fresh copy of its slot vector; the level schedule already put ops in a
valid order, so execution is a single forward pass.  Each opcode's
float sequence matches legacy plan replay exactly — including the
``denominator <= 0.0`` RATIO guard predicate (kept verbatim so a NaN
denominator takes the same branch it always did) and AVG's
left-to-right accumulation from ``0.0``.
"""

from __future__ import annotations

from array import array

from .program import OP_AVG, OP_MUL, OP_RATIO, KernelProgram

__all__ = ["execute_program", "execute_batch"]


def execute_program(program: KernelProgram) -> float:
    """Run one lowered program; returns its root-slot value."""
    slots = array("d", program.base)
    opcodes = program.opcodes
    dsts = program.dsts
    args = program.args
    offsets = program.arg_offsets
    for i in range(len(opcodes)):
        opcode = opcodes[i]
        start = offsets[i]
        if opcode == OP_RATIO:
            denominator = slots[args[start + 2]]
            if denominator <= 0.0:
                slots[dsts[i]] = 0.0
            else:
                slots[dsts[i]] = (
                    slots[args[start]] * slots[args[start + 1]] / denominator
                )
        elif opcode == OP_AVG:
            end = offsets[i + 1]
            total = 0.0
            for j in range(start, end):
                total += slots[args[j]]
            slots[dsts[i]] = total / (end - start)
        elif opcode == OP_MUL:
            slots[dsts[i]] = slots[args[start]] * slots[args[start + 1]]
        else:
            slots[dsts[i]] = slots[args[start]] / slots[args[start + 1]]
    return slots[program.root]


def execute_batch(programs: list[KernelProgram]) -> list[float]:
    """Run one program per query, in query order."""
    return [execute_program(program) for program in programs]
