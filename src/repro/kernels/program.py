"""Flat int-array kernel programs lowered from compiled decomposition plans.

A :class:`KernelProgram` is the flat-array form of one per-shape plan
(:class:`~repro.core.plan.CompiledPlan`, ``CoverPlan`` or ``GramPlan``):
a constant slot vector (``array('d')``), an opcode stream
(``array('B')``) and a packed operand table (``array('l')``).  Ops are
*level-scheduled* at lowering time — stably sorted by dataflow depth so
every op only reads slots produced at strictly lower levels.  The pure
Python executor (:mod:`repro.kernels.exec_python`) ignores the levels
and replays ops in the scheduled order; the numpy executor
(:mod:`repro.kernels.exec_numpy`) uses the level boundaries to evaluate
whole batches one ``(level, opcode, arity)`` column group at a time.

Bit-identity with legacy plan replay is the design constraint, not a
goal: every opcode reproduces the exact scalar float sequence of the
plan it was lowered from (see the per-opcode notes below), and the
stable level sort never reorders the operands *within* an op, so the
left-to-right accumulation order of ``AVG`` is preserved.

Opcodes::

    RATIO dst, (t1, t2, common)   # Theorem 1 step, denominator<=0 guard
    AVG   dst, parts              # voting average, accumulated in order
    MUL   dst, (a, b)             # cover / gram chain step
    DIV   dst, (a, b)             # cover numerator / denominator

``GramPlan``'s ``window / overlap`` divides Python *ints* (correctly
rounded true division, which differs from ``float(w) / float(o)`` once
counts exceed 2**53), so the lowerer precomputes each gram ratio as a
base constant and emits ``MUL`` — the executors never re-divide.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Sequence, Union

if TYPE_CHECKING:
    from ..core.plan import CompiledPlan, CoverPlan, GramPlan

    PlanT = Union[CompiledPlan, CoverPlan, GramPlan]

__all__ = [
    "OP_RATIO",
    "OP_AVG",
    "OP_MUL",
    "OP_DIV",
    "KernelProgram",
    "lower_plan",
]

OP_RATIO = 0
OP_AVG = 1
OP_MUL = 2
OP_DIV = 3

_OpList = list[tuple[int, int, tuple[int, ...]]]


class KernelProgram:
    """One lowered plan: constants + a level-scheduled flat op stream.

    Attributes are plain stdlib arrays so programs pickle to a few
    contiguous buffers — cheap enough to ship once per worker process
    and reuse across every chunk (:mod:`repro.parallel.batch`).

    * ``base`` — ``array('d')`` initial slot vector; ops overwrite
      their ``dst`` slot in place, exactly like plan replay.
    * ``opcodes`` / ``dsts`` — per-op opcode and destination slot.
    * ``args`` / ``arg_offsets`` — packed operand slots; op ``i`` reads
      ``args[arg_offsets[i]:arg_offsets[i + 1]]``.
    * ``level_offsets`` — op-index boundaries of each dataflow level
      (ops within a level are independent of each other).
    * ``root`` — slot holding the estimate after execution.
    """

    __slots__ = ("base", "opcodes", "dsts", "args", "arg_offsets", "level_offsets", "root")

    def __init__(
        self,
        base: "array[float]",
        opcodes: "array[int]",
        dsts: "array[int]",
        args: "array[int]",
        arg_offsets: "array[int]",
        level_offsets: "array[int]",
        root: int,
    ) -> None:
        self.base = base
        self.opcodes = opcodes
        self.dsts = dsts
        self.args = args
        self.arg_offsets = arg_offsets
        self.level_offsets = level_offsets
        self.root = root

    @property
    def num_ops(self) -> int:
        return len(self.opcodes)

    @property
    def num_levels(self) -> int:
        return len(self.level_offsets) - 1

    def __getstate__(
        self,
    ) -> tuple[
        "array[float]",
        "array[int]",
        "array[int]",
        "array[int]",
        "array[int]",
        "array[int]",
        int,
    ]:
        return (
            self.base,
            self.opcodes,
            self.dsts,
            self.args,
            self.arg_offsets,
            self.level_offsets,
            self.root,
        )

    def __setstate__(
        self,
        state: tuple[
            "array[float]",
            "array[int]",
            "array[int]",
            "array[int]",
            "array[int]",
            "array[int]",
            int,
        ],
    ) -> None:
        (
            self.base,
            self.opcodes,
            self.dsts,
            self.args,
            self.arg_offsets,
            self.level_offsets,
            self.root,
        ) = state

    def __repr__(self) -> str:
        return (
            f"KernelProgram(slots={len(self.base)}, ops={self.num_ops}, "
            f"levels={self.num_levels})"
        )


def _finalize(base: Sequence[float], ops: _OpList, root: int) -> KernelProgram:
    """Level-schedule ``ops`` and pack everything into flat arrays.

    An op's level is ``1 + max(level of its operand slots)`` (base
    constants are level 0).  Plan builders only ever emit an op after
    the ops producing its operands, so one forward pass assigns levels;
    the sort is stable, preserving original op order within a level.
    Levels are contiguous (an op at level L+1 needs an operand written
    at level L), so boundaries fall wherever the level increments.
    """
    slot_level = [0] * len(base)
    op_levels: list[int] = []
    for _opcode, dst, operands in ops:
        level = 0
        for slot in operands:
            if slot_level[slot] > level:
                level = slot_level[slot]
        level += 1
        slot_level[dst] = level
        op_levels.append(level)
    order = sorted(range(len(ops)), key=op_levels.__getitem__)

    opcodes = array("B")
    dsts = array("l")
    args = array("l")
    arg_offsets = array("l", [0])
    level_offsets = array("l", [0])
    previous_level = 1
    for rank, index in enumerate(order):
        opcode, dst, operands = ops[index]
        if op_levels[index] != previous_level:
            level_offsets.append(rank)
            previous_level = op_levels[index]
        opcodes.append(opcode)
        dsts.append(dst)
        args.extend(operands)
        arg_offsets.append(len(args))
    level_offsets.append(len(ops))
    return KernelProgram(
        array("d", base), opcodes, dsts, args, arg_offsets, level_offsets, root
    )


def _lower_compiled(plan: "CompiledPlan") -> KernelProgram:
    """Recursive/voting plans translate op-for-op (RATIO / AVG)."""
    from ..core.plan import AVG_OP, RATIO_OP

    base, plan_ops, root = plan.kernel_parts()
    ops: _OpList = []
    for opcode, dst, operands in plan_ops:
        if opcode == RATIO_OP:
            ops.append((OP_RATIO, dst, operands))
        elif opcode == AVG_OP:
            ops.append((OP_AVG, dst, operands))
        else:  # pragma: no cover - no other plan opcodes exist
            raise ValueError(f"unknown plan opcode {opcode!r}")
    return _finalize(base, ops, root)


def _lower_cover(plan: "CoverPlan") -> KernelProgram:
    """Fix-sized cover: two 1.0-seeded MUL chains and a final DIV.

    Mirrors ``CoverPlan.evaluate`` exactly, including the leading
    ``1.0 * first_factor`` multiply and the short-circuit cases
    (direct lookup / zero block), which lower to constant programs.
    """
    if plan.blocks is None:
        return _finalize([plan.factors[0][0]], [], 0)
    if plan.zero:
        return _finalize([0.0], [], 0)
    base: list[float] = [1.0, 1.0]
    ops: _OpList = []
    numerator = 0
    denominator = 1
    for block, overlap in plan.factors:
        base.append(block)
        base.append(0.0)
        ops.append((OP_MUL, len(base) - 1, (numerator, len(base) - 2)))
        numerator = len(base) - 1
        if overlap is not None:
            base.append(overlap)
            base.append(0.0)
            ops.append((OP_MUL, len(base) - 1, (denominator, len(base) - 2)))
            denominator = len(base) - 1
    base.append(0.0)
    ops.append((OP_DIV, len(base) - 1, (numerator, denominator)))
    return _finalize(base, ops, len(base) - 1)


def _lower_gram(plan: "GramPlan") -> KernelProgram:
    """Markov path: head constant times precomputed gram ratios.

    ``GramPlan.evaluate`` divides Python ints (``window / overlap``),
    whose correctly-rounded result can differ from dividing the floats;
    the ratio is therefore computed *here*, once, and baked in as a
    constant so the MUL chain replays the identical float sequence.
    """
    if plan.zero:
        return _finalize([0.0], [], 0)
    base: list[float] = [float(plan.head)]
    ops: _OpList = []
    accumulator = 0
    for window, overlap in plan.steps:
        base.append(window / overlap)
        base.append(0.0)
        ops.append((OP_MUL, len(base) - 1, (accumulator, len(base) - 2)))
        accumulator = len(base) - 1
    return _finalize(base, ops, accumulator)


def lower_plan(plan: "PlanT") -> KernelProgram:
    """Lower any compiled decomposition plan to a flat kernel program."""
    from ..core.plan import CompiledPlan, CoverPlan, GramPlan

    if isinstance(plan, CompiledPlan):
        return _lower_compiled(plan)
    if isinstance(plan, CoverPlan):
        return _lower_cover(plan)
    if isinstance(plan, GramPlan):
        return _lower_gram(plan)
    raise TypeError(f"cannot lower {type(plan).__name__} to a kernel program")
