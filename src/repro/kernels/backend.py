"""Kernel backend detection and selection.

Two interchangeable executors evaluate lowered
:class:`~repro.kernels.program.KernelProgram` batches:

* ``"array"`` — the dependency-free pure-Python interpreter over
  ``array('d')`` slot vectors (:mod:`repro.kernels.exec_python`);
* ``"numpy"`` — vectorised column ops over one concatenated slot
  vector for the whole batch (:mod:`repro.kernels.exec_numpy`),
  available only when numpy is importable (``pip install repro[numpy]``).

``"plan"`` names the legacy per-query compiled-plan replay path (no
kernel lowering at all); it is the default so existing callers keep
their exact execution shape.  ``"auto"`` resolves to the fastest
available kernel backend.  All backends are bit-identical by
construction — selection is purely a throughput choice.

Setting ``REPRO_DISABLE_NUMPY=1`` in the environment hides an installed
numpy, forcing the fallback import path; the CI no-numpy legs and the
fallback tests rely on it.
"""

from __future__ import annotations

import os

__all__ = [
    "HAVE_NUMPY",
    "KERNEL_BACKENDS",
    "available_backends",
    "resolve_backend",
]


def _numpy_available() -> bool:
    """Import-probe for the optional numpy dependency (env-maskable)."""
    if os.environ.get("REPRO_DISABLE_NUMPY", "") not in ("", "0"):
        return False
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


#: True when the numpy executor can be used in this process.
HAVE_NUMPY = _numpy_available()

#: Backends that evaluate lowered kernel programs (excludes ``"plan"``).
KERNEL_BACKENDS = ("array", "numpy") if HAVE_NUMPY else ("array",)


def available_backends() -> tuple[str, ...]:
    """Every usable ``estimate_batch`` backend name, legacy path included."""
    return ("plan",) + KERNEL_BACKENDS


def resolve_backend(backend: str | None) -> str:
    """Normalise a user-facing backend knob to a concrete backend name.

    ``None`` keeps the legacy compiled-plan replay (``"plan"``);
    ``"auto"`` picks the fastest available kernel backend (numpy when
    importable, the ``array('d')`` interpreter otherwise).  Explicit
    names are validated: asking for ``"numpy"`` without numpy installed
    raises :class:`ValueError` instead of silently degrading.
    """
    if backend is None or backend == "plan":
        return "plan"
    if backend == "auto":
        return "numpy" if HAVE_NUMPY else "array"
    if backend == "array":
        return "array"
    if backend == "numpy":
        if not HAVE_NUMPY:
            raise ValueError(
                "backend 'numpy' requested but numpy is not importable "
                "(install the extra: pip install repro[numpy], or use "
                "backend='auto' to fall back automatically)"
            )
        return "numpy"
    raise ValueError(
        f"unknown estimation backend {backend!r} "
        "(expected one of: auto, plan, array, numpy)"
    )
