"""Sanctioned observability bridge for the kernel layer.

The ``kernel-purity`` lint rule confines ``repro.obs`` imports inside
``repro.kernels`` to this module: executors stay observability-free (no
per-op recording, no allocation on the disabled path), and everything
the kernel layer wants to report funnels through the early-return
guarded helpers below, called once per batch — never inside the per-op
hot loops.
"""

from __future__ import annotations

from .. import obs

__all__ = ["record_kernel_batch", "record_prepared_batch"]


def record_kernel_batch(
    backend: str, estimator: str, queries: int, programs: int
) -> None:
    """Per-backend counters for one kernel batch (only when obs is on)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "kernel_batch_queries_total",
        "Queries answered by the vectorised kernel executors.",
        labels=("backend", "estimator"),
    ).inc(queries, backend=backend, estimator=estimator)
    obs.registry.counter(
        "kernel_batch_programs_total",
        "Distinct lowered programs evaluated per kernel batch.",
        labels=("backend", "estimator"),
    ).inc(programs, backend=backend, estimator=estimator)


def record_prepared_batch(backend: str, programs: int, ops: int) -> None:
    """One concatenated, level-scheduled batch was built and cached."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "kernel_prepared_batches_total",
        "Concatenated kernel batches prepared (index arrays built).",
        labels=("backend",),
    ).inc(backend=backend)
    obs.registry.gauge(
        "kernel_prepared_batch_ops",
        "Ops in the most recently prepared kernel batch.",
        labels=("backend",),
    ).set(ops, backend=backend)
    obs.registry.gauge(
        "kernel_prepared_batch_programs",
        "Programs in the most recently prepared kernel batch.",
        labels=("backend",),
    ).set(programs, backend=backend)
