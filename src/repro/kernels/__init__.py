"""Vectorised flat-array estimation kernels.

This package lowers the per-shape compiled decomposition plans (PR 5's
``CompiledPlan`` / ``CoverPlan`` / ``GramPlan``) to flat int-array
programs — an opcode stream plus packed operand table over dense slot
indices — and executes whole query batches through one of two
interchangeable backends:

* ``"array"`` — a dependency-free ``array('d')`` interpreter
  (:mod:`repro.kernels.exec_python`);
* ``"numpy"`` — whole-batch vectorised column ops over one
  concatenated slot vector (:mod:`repro.kernels.exec_numpy`),
  used when the optional numpy dependency is importable.

Both backends are bit-identical to legacy plan replay (the ``"plan"``
backend) — same float operations in the same order per query — which
the cross-backend hypothesis suite asserts.  Backend selection lives in
:mod:`repro.kernels.backend`; estimators expose it via
``estimate_batch(backend=...)`` and the CLI via ``--backend``.

:class:`KernelState` is the per-estimator cache tying it together:
lowered programs keyed by interned pattern id (picklable — shipped once
per worker process and reused across chunks) plus a bounded per-process
cache of numpy :class:`~repro.kernels.exec_numpy.PreparedBatch` index
structures keyed by batch shape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .backend import (
    HAVE_NUMPY,
    KERNEL_BACKENDS,
    available_backends,
    resolve_backend,
)
from .program import KernelProgram, lower_plan
from .record import record_kernel_batch, record_prepared_batch

if TYPE_CHECKING:
    from .program import PlanT

__all__ = [
    "HAVE_NUMPY",
    "KERNEL_BACKENDS",
    "available_backends",
    "resolve_backend",
    "KernelProgram",
    "lower_plan",
    "KernelState",
    "record_kernel_batch",
    "record_prepared_batch",
]


class KernelState:
    """Per-estimator kernel caches: lowered programs + prepared batches.

    ``programs`` maps interned pattern id -> :class:`KernelProgram` and
    is what pickles when an estimator ships to a worker process — flat
    stdlib arrays, so the one-time per-worker cost is a few contiguous
    buffer copies.  The numpy ``PreparedBatch`` cache is process-local
    (rebuilt lazily in each worker, keyed by the batch's distinct
    pattern-id tuple) and bounded: when full it is cleared outright
    rather than LRU-tracked — batch shapes are few and rebuilds cheap
    relative to the bookkeeping.
    """

    _PREPARED_LIMIT = 64

    __slots__ = ("_programs", "_prepared")

    def __init__(self) -> None:
        self._programs: dict[int, KernelProgram] = {}
        self._prepared: dict[tuple[int, ...], Any] = {}

    @property
    def program_count(self) -> int:
        return len(self._programs)

    def clear(self) -> None:
        self._programs.clear()
        self._prepared.clear()

    def program_for(self, pattern_id: int, plan: "PlanT") -> KernelProgram:
        """The lowered program for ``plan``, lowering on first sight."""
        program = self._programs.get(pattern_id)
        if program is None:
            program = lower_plan(plan)
            self._programs[pattern_id] = program
        return program

    def execute(
        self,
        backend: str,
        pattern_ids: list[int],
        plans: list["PlanT"],
    ) -> list[float]:
        """Evaluate one program per query on ``backend``, in order.

        ``pattern_ids`` and ``plans`` are parallel lists (repeats are
        expected — that is the point of a warm batch).  The ``"numpy"``
        backend resolves the batch's distinct-shape key against the
        prepared-batch cache; ``"array"`` interprets program by program.
        """
        programs = [
            self.program_for(pattern_id, plan)
            for pattern_id, plan in zip(pattern_ids, plans)
        ]
        if backend == "numpy":
            key = tuple(pattern_ids)
            prepared = self._prepared.get(key)
            if prepared is None:
                from .exec_numpy import prepare_batch

                if len(self._prepared) >= self._PREPARED_LIMIT:
                    self._prepared.clear()
                prepared = prepare_batch(programs)
                self._prepared[key] = prepared
                record_prepared_batch("numpy", len(programs), prepared.num_ops)
            result: list[float] = prepared.run()
            return result
        from .exec_python import execute_batch

        return execute_batch(programs)

    def __getstate__(self) -> dict[int, KernelProgram]:
        return self._programs

    def __setstate__(self, state: dict[int, KernelProgram]) -> None:
        self._programs = state
        self._prepared = {}
