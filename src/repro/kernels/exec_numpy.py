"""Numpy kernel executor: whole-batch vectorised column ops.

The ``"numpy"`` backend concatenates every program's slot vector in a
batch into one float64 array and pre-groups ops by ``(level, opcode,
arity)`` across programs.  Executing the batch is then a handful of
column gathers and elementwise ops per group instead of a Python-level
loop per plan op — the index arrays (the expensive part) are built once
per distinct batch shape and cached by :class:`~repro.kernels.KernelState`.

Bit-identity with the scalar executors is engineered per opcode:

* elementwise ``*``, ``/`` and ``+`` on float64 are the IEEE-754 ops
  CPython's scalar arithmetic performs, so MUL / DIV / the RATIO
  product match trivially;
* RATIO's guard selects lanes with ``~(den <= 0.0)`` — the *same
  predicate* as the scalar branch, so a NaN denominator divides (NaN)
  rather than zeroing, exactly like plan replay;
* AVG accumulates its parts sequentially (one ``+=`` per operand
  column, left to right, starting from zeros) — **not** ``np.sum``,
  whose pairwise summation rounds differently — then divides by the
  part count.

This module is only imported once a batch actually runs on the numpy
backend; :mod:`repro.kernels.backend` decides availability.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .program import OP_AVG, OP_MUL, OP_RATIO, KernelProgram

__all__ = ["PreparedBatch", "prepare_batch"]


class PreparedBatch:
    """Index arrays for one batch shape, reusable across executions.

    ``_steps`` holds one entry per ``(level, opcode, arity)`` group, in
    ascending level order: ``(opcode, arity, dst_index_array,
    args_index_matrix)`` where the matrix is ``(ops_in_group, arity)``.
    Groups at the same level never read each other's outputs (an op's
    operands live at strictly lower levels), so any order within a
    level is valid; sorting the keys keeps it deterministic.
    """

    __slots__ = ("_base", "_roots", "_steps", "num_ops")

    def __init__(self, programs: list[KernelProgram]) -> None:
        offsets: list[int] = []
        total = 0
        for program in programs:
            offsets.append(total)
            total += len(program.base)
        base = np.empty(total, dtype=np.float64)
        for program, offset in zip(programs, offsets):
            base[offset : offset + len(program.base)] = np.frombuffer(
                program.base, dtype=np.float64
            )
        groups: dict[tuple[int, int, int], tuple[list[int], list[list[int]]]] = {}
        num_ops = 0
        for program, offset in zip(programs, offsets):
            bounds = program.level_offsets
            arg_offsets = program.arg_offsets
            args = program.args
            num_ops += program.num_ops
            for level in range(len(bounds) - 1):
                for i in range(bounds[level], bounds[level + 1]):
                    start = arg_offsets[i]
                    end = arg_offsets[i + 1]
                    key = (level, program.opcodes[i], end - start)
                    entry = groups.get(key)
                    if entry is None:
                        entry = ([], [])
                        groups[key] = entry
                    entry[0].append(offset + program.dsts[i])
                    entry[1].append([offset + args[j] for j in range(start, end)])
        steps: list[tuple[int, int, Any, Any]] = []
        for key in sorted(groups):
            _level, opcode, arity = key
            dst_rows, arg_rows = groups[key]
            steps.append(
                (
                    opcode,
                    arity,
                    np.asarray(dst_rows, dtype=np.intp),
                    np.asarray(arg_rows, dtype=np.intp),
                )
            )
        self._base = base
        self._roots = np.asarray(
            [offset + program.root for program, offset in zip(programs, offsets)],
            dtype=np.intp,
        )
        self._steps = steps
        self.num_ops = num_ops

    def run(self) -> list[float]:
        """Execute the batch; returns root values in query order."""
        slots = self._base.copy()
        for opcode, arity, dst_index, arg_index in self._steps:
            if opcode == OP_RATIO:
                denominator = slots[arg_index[:, 2]]
                result = np.zeros(len(dst_index), dtype=np.float64)
                np.divide(
                    slots[arg_index[:, 0]] * slots[arg_index[:, 1]],
                    denominator,
                    out=result,
                    where=np.logical_not(denominator <= 0.0),
                )
                slots[dst_index] = result
            elif opcode == OP_AVG:
                total = np.zeros(len(dst_index), dtype=np.float64)
                for column in range(arity):
                    total += slots[arg_index[:, column]]
                slots[dst_index] = total / arity
            elif opcode == OP_MUL:
                slots[dst_index] = slots[arg_index[:, 0]] * slots[arg_index[:, 1]]
            else:
                slots[dst_index] = slots[arg_index[:, 0]] / slots[arg_index[:, 1]]
        return [float(value) for value in slots[self._roots]]


def prepare_batch(programs: list[KernelProgram]) -> PreparedBatch:
    """Build the concatenated, level-grouped index arrays for a batch."""
    return PreparedBatch(programs)
