"""Exporters: metrics registry → JSON dict / Prometheus text exposition.

Two serialisations of the same registry:

* :func:`registry_to_dict` — a plain-data snapshot (``json.dumps``-able
  as-is) used by ``--metrics-json`` and the benchmark harness;
* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / samples; histograms expand to cumulative
  ``_bucket{le=...}`` plus ``_sum`` and ``_count``), scrapeable by any
  Prometheus-compatible collector.

:func:`parse_prometheus_text` reads the exposition format back into
``{name: {(label_pairs): value}}``; it exists so the test suite can
assert the exporter round-trips, and doubles as a minimal scraper for
tooling that wants to diff two captures.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .quantiles import DEFAULT_QUANTILES, QuantileSketch
from .registry import Counter, Gauge, Histogram, MetricsRegistry, Timer

#: Sorted ``(label, value)`` pairs keying one parsed sample.
_LabelPairs = tuple[tuple[str, str], ...]

__all__ = [
    "registry_to_dict",
    "write_metrics_json",
    "to_prometheus_text",
    "parse_prometheus_text",
    "summarize_estimation",
]


def registry_to_dict(registry: MetricsRegistry) -> dict[str, dict[str, object]]:
    """Plain-data snapshot of every metric in the registry."""
    out: dict[str, dict[str, object]] = {}
    for metric in registry:
        entry: dict[str, object] = {"type": metric.kind, "help": metric.help}
        if isinstance(metric, (Counter, Gauge)):
            if metric.label_names:
                entry["labels"] = list(metric.label_names)
                entry["values"] = [
                    {"labels": labels, "value": value}
                    for labels, value in metric.samples()
                ]
            else:
                entry["value"] = metric.value()
        elif isinstance(metric, Timer):
            entry.update(_histogram_dict(metric.histogram))
        elif isinstance(metric, Histogram):
            entry.update(_histogram_dict(metric))
        elif isinstance(metric, QuantileSketch):
            entry.update(_sketch_dict(metric))
        out[metric.name] = entry
    return out


def _histogram_dict(histogram: Histogram) -> dict[str, object]:
    return {
        "count": histogram.count,
        "sum": histogram.sum,
        "mean": histogram.mean,
        "min": histogram.min if histogram.count else None,
        "max": histogram.max if histogram.count else None,
        "buckets": [
            {"le": "+Inf" if math.isinf(bound) else bound, "count": cumulative}
            for bound, cumulative in histogram.cumulative()
        ],
    }


def _sketch_dict(sketch: QuantileSketch) -> dict[str, object]:
    return {
        "count": sketch.count,
        "sum": sketch.sum,
        "mean": sketch.mean,
        "min": sketch.min if sketch.count else None,
        "max": sketch.max if sketch.count else None,
        "alpha": sketch.alpha,
        "quantiles": {
            str(q): value for q, value in sketch.quantiles().items()
        },
    }


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(registry_to_dict(registry), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        if isinstance(metric, Timer):
            kind = "histogram"
        elif isinstance(metric, QuantileSketch):
            kind = "summary"
        else:
            kind = metric.kind
        lines.append(f"# TYPE {metric.name} {kind}")
        if isinstance(metric, (Counter, Gauge)):
            samples = list(metric.samples())
            if not samples and not metric.label_names:
                # Unlabelled metric with no writes yet: expose its zero.
                samples = [({}, metric.value())]
            for labels, value in samples:
                lines.append(f"{metric.name}{_label_text(labels)} {_num(value)}")
        elif isinstance(metric, QuantileSketch):
            for q in DEFAULT_QUANTILES:
                lines.append(
                    f'{metric.name}{{quantile="{_num(q)}"}} '
                    f"{_num(metric.quantile(q))}"
                )
            lines.append(f"{metric.name}_sum {_num(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
        else:
            histogram = (
                metric.histogram
                if isinstance(metric, Timer)
                else metric
            )
            assert isinstance(histogram, Histogram)
            for bound, cumulative in histogram.cumulative():
                le = "+Inf" if math.isinf(bound) else _num(bound)
                lines.append(
                    f'{metric.name}_bucket{{le="{le}"}} {cumulative}'
                )
            lines.append(f"{metric.name}_sum {_num(histogram.sum)}")
            lines.append(f"{metric.name}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15 and not math.isinf(value):
        return str(int(value))
    return repr(value)


def parse_prometheus_text(text: str) -> dict[str, dict[_LabelPairs, float]]:
    """Parse exposition text back to ``{name: {label_pairs: value}}``.

    ``label_pairs`` is a sorted tuple of ``(label, value)`` pairs — the
    empty tuple for unlabelled samples.  Histogram expansions come back
    under their expanded names (``x_bucket``, ``x_sum``, ``x_count``).
    """
    out: dict[str, dict[_LabelPairs, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, value_text = line.rsplit(" ", 1)
        labels: _LabelPairs
        if "{" in body:
            name, label_text = body.split("{", 1)
            labels = _parse_labels(label_text.rstrip("}"))
        else:
            name, labels = body, ()
        value = float(value_text)
        out.setdefault(name, {})[labels] = value
    return out


def _parse_labels(text: str) -> _LabelPairs:
    pairs: list[tuple[str, str]] = []
    for chunk in _split_label_chunks(text):
        name, raw = chunk.split("=", 1)
        raw = raw.strip()[1:-1]  # strip quotes
        value = (
            raw.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        )
        pairs.append((name.strip(), value))
    return tuple(sorted(pairs))


def _split_label_chunks(text: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    chunks: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in text:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            chunks.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        chunks.append("".join(current))
    return [c for c in chunks if c.strip()]


# ----------------------------------------------------------------------
# Derived estimation statistics (benchmark harness integration)
# ----------------------------------------------------------------------


def summarize_estimation(registry: MetricsRegistry) -> dict[str, float]:
    """Distil one capture window into the headline estimation numbers.

    Returns a flat dict with the quantities the benchmarks report next
    to accuracy: lattice hit/miss split, hit rate, memoisation reuse,
    decomposition effort, recursion depth, and wall time.  Missing
    metrics (an estimator that never decomposes, say) read as zero.
    """
    lookups = registry.get("lattice_lookups_total")
    outcome: dict[str, float] = {}
    if isinstance(lookups, Counter):
        outcome = {labels["outcome"]: value for labels, value in lookups.samples()}
    hits = outcome.get("hit", 0)
    total_lookups = sum(outcome.values())

    memo = registry.get("memo_lookups_total")
    memo_hits = memo_total = 0.0
    if isinstance(memo, Counter):
        memo_by = {labels["outcome"]: value for labels, value in memo.samples()}
        memo_hits = memo_by.get("hit", 0)
        memo_total = sum(memo_by.values())

    depth = registry.get("recursion_depth")
    timer = registry.get("estimate_seconds")
    steps = registry.get("decompose_steps_total")
    latency = registry.get("estimate_latency_seconds")
    p50 = p90 = p99 = 0.0
    if isinstance(latency, QuantileSketch) and latency.count:
        p50 = latency.quantile(0.5)
        p90 = latency.quantile(0.9)
        p99 = latency.quantile(0.99)
    return {
        "lattice_lookups": total_lookups,
        "lattice_hits": hits,
        "lattice_complete_zeros": outcome.get("complete_zero", 0),
        "lattice_pruned_misses": outcome.get("pruned_miss", 0),
        "lattice_hit_rate": hits / total_lookups if total_lookups else 0.0,
        "memo_hits": memo_hits,
        "memo_hit_rate": memo_hits / memo_total if memo_total else 0.0,
        "decompose_steps": steps.total if isinstance(steps, Counter) else 0,
        "mean_recursion_depth": depth.mean if isinstance(depth, Histogram) else 0.0,
        "max_recursion_depth": (
            depth.max if isinstance(depth, Histogram) and depth.count else 0.0
        ),
        "estimate_calls": timer.calls if isinstance(timer, Timer) else 0,
        "estimate_seconds": (
            timer.total_seconds if isinstance(timer, Timer) else 0.0
        ),
        "estimate_latency_p50": p50,
        "estimate_latency_p90": p90,
        "estimate_latency_p99": p99,
    }
