"""Observability runtime: the switch the instrumented hot paths check.

Instrumentation across the TreeLattice pipeline follows one pattern::

    from .. import obs
    ...
    if obs.enabled:
        obs.registry.counter("lattice_lookups_total", labels=("outcome",)).inc(
            outcome="hit"
        )
        obs.event("lattice_lookup", outcome="hit", size=size)

``obs.enabled`` is a module-level boolean, so a disabled pipeline pays a
single attribute read plus a falsy branch per instrumentation point and
allocates nothing (benchmarked in ``benchmarks/bench_obs_overhead.py``;
the enabled/disabled estimate-identity property is tested in
``tests/test_obs.py``).

State is process-global by design — the estimators have no request
context to thread a registry through, and the CLI / benchmark harness
capture windows are naturally sequential.  :func:`observed` scopes a
capture: it enables observability with a fresh registry (and optional
tracer), yields them, and restores the previous state on exit, so
nested captures and library callers cannot clobber each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .export import (
    parse_prometheus_text,
    registry_to_dict,
    summarize_estimation,
    to_prometheus_text,
    write_metrics_json,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .trace import TraceRecorder

__all__ = [
    "enabled",
    "registry",
    "tracer",
    "enable",
    "disable",
    "event",
    "observed",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "TraceRecorder",
    "registry_to_dict",
    "write_metrics_json",
    "to_prometheus_text",
    "parse_prometheus_text",
    "summarize_estimation",
]

#: Master switch read by every instrumented call site.  Mutate only via
#: :func:`enable` / :func:`disable` / :func:`observed`.
enabled: bool = False

#: The active registry.  Rebound (not mutated) by :func:`observed`, so
#: call sites must read it through the module (``obs.registry``).
registry: MetricsRegistry = MetricsRegistry()

#: The active trace recorder, or ``None`` when tracing is off.
tracer: TraceRecorder | None = None


def enable(*, trace: bool = False) -> MetricsRegistry:
    """Turn instrumentation on; optionally start a trace recorder."""
    global enabled, tracer
    enabled = True
    if trace and tracer is None:
        tracer = TraceRecorder()
    return registry


def disable() -> None:
    """Turn instrumentation off (the registry keeps its contents)."""
    global enabled, tracer
    enabled = False
    tracer = None


def event(name: str, **fields: object) -> None:
    """Record a trace event when a recorder is active; no-op otherwise."""
    if tracer is not None:
        tracer.record(name, **fields)


@contextmanager
def observed(
    *, trace: bool = False
) -> Iterator[tuple[MetricsRegistry, TraceRecorder | None]]:
    """Scoped capture window: fresh registry (and tracer), state restored.

    Yields ``(registry, tracer)``; ``tracer`` is ``None`` unless
    ``trace=True``.  On exit the previous enabled/registry/tracer state
    comes back, so captures nest and never leak into library callers.
    """
    global enabled, registry, tracer
    previous = (enabled, registry, tracer)
    registry = MetricsRegistry()
    tracer = TraceRecorder() if trace else None
    enabled = True
    try:
        yield registry, tracer
    finally:
        enabled, registry, tracer = previous
