"""Observability runtime: the switch the instrumented hot paths check.

Instrumentation across the TreeLattice pipeline follows one pattern::

    from .. import obs
    ...
    if obs.enabled:
        obs.registry.counter("lattice_lookups_total", labels=("outcome",)).inc(
            outcome="hit"
        )
        obs.event("lattice_lookup", outcome="hit", size=size)

``obs.enabled`` is a module-level boolean, so a disabled pipeline pays a
single attribute read plus a falsy branch per instrumentation point and
allocates nothing (benchmarked in ``benchmarks/bench_obs_overhead.py``;
the enabled/disabled estimate-identity property is tested in
``tests/test_obs.py``).

Three sinks hang off the switch:

* :data:`registry` — aggregated metrics (always active while enabled);
* :data:`tracer` — the flat structured-event recorder (opt-in);
* :data:`span_tracer` — the hierarchical span recorder behind the
  per-estimate flight recorder (opt-in, sampled; see
  :mod:`repro.obs.spans`).  Call sites use :func:`span` /
  :func:`span_point`, which are no-ops when no tracer is installed and
  suppressed wholesale when a root span loses the sampling draw.

State is process-global by design — the estimators have no request
context to thread a registry through, and the CLI / benchmark harness
capture windows are naturally sequential.  :func:`observed` scopes a
metrics capture; :func:`flight_recorder` scopes a full capture with
spans.  Both swap in fresh sinks and restore the previous state on
exit, so nested captures and library callers cannot clobber each other.

For process-pool fan-out, :func:`telemetry_snapshot` pickles the shape
of the active window, :func:`worker_window` reproduces it inside a
worker, and :func:`absorb_worker_telemetry` merges the returned sinks
into the parent — see :mod:`repro.parallel.batch`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .export import (
    parse_prometheus_text,
    registry_to_dict,
    summarize_estimation,
    to_prometheus_text,
    write_metrics_json,
)
from .quantiles import QuantileSketch
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .spans import (
    DEFAULT_SPAN_CAPACITY,
    NO_SPAN,
    Span,
    SpanHandle,
    SpanTracer,
    spans_to_chrome_trace,
)
from .trace import TraceRecorder

__all__ = [
    "enabled",
    "registry",
    "tracer",
    "span_tracer",
    "enable",
    "disable",
    "event",
    "span",
    "span_point",
    "span_recording",
    "observed",
    "flight_recorder",
    "FlightRecording",
    "TelemetrySnapshot",
    "WorkerTelemetry",
    "telemetry_snapshot",
    "worker_window",
    "absorb_worker_telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "QuantileSketch",
    "TraceRecorder",
    "Span",
    "SpanHandle",
    "SpanTracer",
    "spans_to_chrome_trace",
    "registry_to_dict",
    "write_metrics_json",
    "to_prometheus_text",
    "parse_prometheus_text",
    "summarize_estimation",
]

#: Master switch read by every instrumented call site.  Mutate only via
#: :func:`enable` / :func:`disable` / :func:`observed` /
#: :func:`flight_recorder`.
enabled: bool = False

#: The active registry.  Rebound (not mutated) by :func:`observed`, so
#: call sites must read it through the module (``obs.registry``).
registry: MetricsRegistry = MetricsRegistry()

#: The active trace recorder, or ``None`` when tracing is off.
tracer: TraceRecorder | None = None

#: The active span tracer, or ``None`` when the flight recorder is off.
span_tracer: SpanTracer | None = None


def enable(
    *,
    trace: bool = False,
    spans: bool = False,
    span_rate: float = 1.0,
    span_seed: int = 0,
) -> MetricsRegistry:
    """Turn instrumentation on; optionally start trace/span recorders."""
    global enabled, tracer, span_tracer
    enabled = True
    if trace and tracer is None:
        tracer = TraceRecorder(registry=registry)
    if spans and span_tracer is None:
        span_tracer = SpanTracer(rate=span_rate, seed=span_seed)
    return registry


def disable() -> None:
    """Turn instrumentation off (the registry keeps its contents)."""
    global enabled, tracer, span_tracer
    enabled = False
    tracer = None
    span_tracer = None


def event(name: str, **fields: object) -> None:
    """Record a trace event when a recorder is active; no-op otherwise."""
    if tracer is not None:
        tracer.record(name, **fields)


def span(name: str, **attrs: object) -> SpanHandle:
    """Open a hierarchical span; returns a no-op handle when spans are off.

    Call sites guard with ``obs.enabled`` like every other recording
    call (the ``unguarded-obs`` lint rule enforces it), so the disabled
    pipeline never reaches this function.
    """
    current = span_tracer
    if current is None:
        return NO_SPAN
    return current.span(name, **attrs)


def span_point(name: str, **attrs: object) -> None:
    """Record an instant span under the open span; no-op when spans are off."""
    current = span_tracer
    if current is not None:
        current.point(name, **attrs)


def span_recording() -> bool:
    """True while inside a sampled span — gates optional deep attribution.

    Hot paths that would emit many points per estimate (compiled-plan
    replay) check this once and skip the traced variant entirely when
    the estimate's root span was sampled out.
    """
    current = span_tracer
    return current is not None and current.recording


@contextmanager
def observed(
    *, trace: bool = False
) -> Iterator[tuple[MetricsRegistry, TraceRecorder | None]]:
    """Scoped capture window: fresh registry (and tracer), state restored.

    Yields ``(registry, tracer)``; ``tracer`` is ``None`` unless
    ``trace=True``.  On exit the previous enabled/registry/tracer state
    comes back, so captures nest and never leak into library callers.
    Span tracing is suspended for the window (use
    :func:`flight_recorder` to capture spans).
    """
    global enabled, registry, tracer, span_tracer
    previous = (enabled, registry, tracer, span_tracer)
    registry = MetricsRegistry()
    tracer = TraceRecorder(registry=registry) if trace else None
    span_tracer = None
    enabled = True
    try:
        yield registry, tracer
    finally:
        enabled, registry, tracer, span_tracer = previous


@dataclass
class FlightRecording:
    """What a :func:`flight_recorder` window captured."""

    registry: MetricsRegistry
    spans: SpanTracer
    trace: TraceRecorder | None


@contextmanager
def flight_recorder(
    rate: float = 1.0,
    *,
    seed: int = 0,
    capacity: int = DEFAULT_SPAN_CAPACITY,
    trace: bool = False,
) -> Iterator[FlightRecording]:
    """Scoped full capture: metrics + sampled hierarchical spans.

    ``rate`` is the head-based sampling rate for root spans (1.0 keeps
    everything — right for explaining one query; production-style
    monitoring wants 0.01-ish).  Restores the previous observability
    state on exit like :func:`observed`.
    """
    global enabled, registry, tracer, span_tracer
    previous = (enabled, registry, tracer, span_tracer)
    registry = MetricsRegistry()
    tracer = TraceRecorder(registry=registry) if trace else None
    span_tracer = SpanTracer(rate=rate, seed=seed, capacity=capacity)
    enabled = True
    try:
        yield FlightRecording(registry, span_tracer, tracer)
    finally:
        enabled, registry, tracer, span_tracer = previous


# ----------------------------------------------------------------------
# Worker fan-out: snapshot the window shape, reproduce it, merge back
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Picklable shape of the active capture window (no contents).

    Shipped to worker processes so they can open an equivalent window
    locally; the actual registries/tracers never cross the boundary
    downstream — only the worker's results come back.
    """

    trace: bool
    trace_capacity: int
    spans: bool
    span_rate: float
    span_seed: int
    span_capacity: int


@dataclass
class WorkerTelemetry:
    """What one worker recorded; merged into the parent on return."""

    registry: MetricsRegistry
    trace: TraceRecorder | None
    spans: SpanTracer | None


def telemetry_snapshot() -> TelemetrySnapshot | None:
    """Describe the active window for workers; ``None`` when disabled."""
    if not enabled:
        return None
    current_spans = span_tracer
    current_trace = tracer
    return TelemetrySnapshot(
        trace=current_trace is not None,
        trace_capacity=(
            current_trace.capacity if current_trace is not None else 0
        ),
        spans=current_spans is not None,
        span_rate=current_spans.rate if current_spans is not None else 1.0,
        span_seed=current_spans.seed if current_spans is not None else 0,
        span_capacity=(
            current_spans.capacity
            if current_spans is not None
            else DEFAULT_SPAN_CAPACITY
        ),
    )


@contextmanager
def worker_window(snapshot: TelemetrySnapshot) -> Iterator[WorkerTelemetry]:
    """Open a capture window in a worker matching the parent's snapshot.

    Yields the :class:`WorkerTelemetry` whose sinks the scoped code
    records into; the caller returns it (pickled) to the parent, which
    folds it in with :func:`absorb_worker_telemetry`.
    """
    global enabled, registry, tracer, span_tracer
    previous = (enabled, registry, tracer, span_tracer)
    registry = MetricsRegistry()
    tracer = (
        TraceRecorder(capacity=snapshot.trace_capacity, registry=registry)
        if snapshot.trace
        else None
    )
    span_tracer = (
        SpanTracer(
            rate=snapshot.span_rate,
            seed=snapshot.span_seed,
            capacity=snapshot.span_capacity,
        )
        if snapshot.spans
        else None
    )
    enabled = True
    telemetry = WorkerTelemetry(registry, tracer, span_tracer)
    try:
        yield telemetry
    finally:
        enabled, registry, tracer, span_tracer = previous


def absorb_worker_telemetry(telemetry: WorkerTelemetry) -> None:
    """Merge a worker's returned telemetry into the active window."""
    if not enabled:
        return
    registry.merge(telemetry.registry)
    if tracer is not None and telemetry.trace is not None:
        tracer.merge(telemetry.trace)
    if span_tracer is not None and telemetry.spans is not None:
        span_tracer.merge(telemetry.spans)
