"""Mergeable log-bucketed quantile sketch (DDSketch-style).

Histograms with fixed boundaries (``repro.obs.registry.Histogram``)
answer "how many observations fell under X" but cannot answer "what is
the p99" with bounded error over an unknown range.  The serving roadmap
item needs exactly that — live latency and q-error quantiles — so this
module adds the standard log-bucketed sketch:

* observations are mapped to geometric buckets ``ceil(log_gamma(x))``
  with ``gamma = (1 + alpha) / (1 - alpha)``, giving every quantile a
  *relative* error bound of ``alpha`` regardless of scale;
* buckets are a sparse ``dict[int, int]``, so memory is proportional to
  the number of distinct magnitudes seen (tens of buckets for latency
  data), not the observation count;
* two sketches with the same ``alpha`` merge by summing bucket counts,
  which is what lets worker processes ship theirs back to the parent
  (see :meth:`repro.obs.registry.MetricsRegistry.merge`).

Zero and near-zero observations (anything below :attr:`QuantileSketch.
min_trackable`) land in a dedicated zero bucket; negative observations
are rejected, matching the latency/q-error use cases (both are >= 0 by
construction, q-error >= 1).
"""

from __future__ import annotations

import math
from typing import Iterator

from .registry import _Metric

__all__ = ["QuantileSketch", "DEFAULT_ALPHA", "DEFAULT_QUANTILES"]

#: Default relative-accuracy bound: quantile answers are within 1%.
DEFAULT_ALPHA = 0.01

#: The quantiles exporters report by default.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class QuantileSketch(_Metric):
    """Streaming quantiles with bounded relative error, mergeable."""

    kind = "quantile"
    __slots__ = (
        "alpha",
        "count",
        "sum",
        "min",
        "max",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
    )

    #: Observations below this magnitude collapse into the zero bucket.
    min_trackable = 1e-12

    def __init__(self, name: str, help: str = "", alpha: float = DEFAULT_ALPHA) -> None:
        super().__init__(name, help)
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        if value < 0.0:
            raise ValueError(f"{self.name}: quantile sketches track values >= 0")
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.min_trackable:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (within ``alpha`` relative error)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        if rank >= self.count - 1:
            # The top rank is the maximum, which is tracked exactly.
            return self.max
        seen = float(self._zero_count)
        if rank < seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                # Bucket i covers (gamma^(i-1), gamma^i]; report the
                # midpoint, which is what bounds the relative error.
                return (
                    2.0 * self._gamma ** index / (self._gamma + 1.0)
                )
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantiles(
        self, qs: tuple[float, ...] = DEFAULT_QUANTILES
    ) -> dict[float, float]:
        """Several quantiles at once (the exporters' helper)."""
        return {q: self.quantile(q) for q in qs}

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in; requires an identical ``alpha``."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"{self.name}: cannot merge sketches with alpha "
                f"{self.alpha} and {other.alpha}"
            )
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self._zero_count += other._zero_count
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count

    def bucket_items(self) -> Iterator[tuple[int, int]]:
        """Sparse ``(bucket_index, count)`` pairs, ascending."""
        return iter(sorted(self._buckets.items()))

    def __repr__(self) -> str:
        return (
            f"QuantileSketch({self.name!r}, count={self.count}, "
            f"alpha={self.alpha})"
        )
