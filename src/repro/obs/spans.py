"""Hierarchical spans: the flight recorder's per-estimate timeline.

Where the metrics registry aggregates and the :class:`~repro.obs.trace.
TraceRecorder` keeps a flat event sequence, the span tracer keeps the
*shape* of one execution: every estimate opens a root span, every
compiled-plan step / decomposition node / summary lookup nests inside
it, and each completed span carries its span/parent ids, wall and CPU
time, and structured attributes.  That is exactly the per-step
attribution the ROADMAP's serving and routing items need ("which
sub-patterns did the summary answer directly, which were decomposed,
and what did each step cost").

Design constraints, in order:

* **Free when off.**  ``repro.obs.span(...)`` call sites are guarded by
  ``obs.enabled`` like every other instrumentation point (enforced by
  the ``unguarded-obs`` lint rule), so a disabled pipeline allocates
  nothing span-related.
* **Cheap when sampled out.**  Sampling is *head-based* and
  deterministic: the decision is made once per root span from a counter
  and a seed (no RNG state, reproducible across runs), and a sampled-out
  root suppresses its whole subtree through one shared, allocation-free
  context object.
* **Bounded.**  Completed spans land in a ring buffer (default
  :data:`DEFAULT_SPAN_CAPACITY`); overflow drops the *oldest* spans and
  counts them in :attr:`SpanTracer.dropped`.
* **Mergeable.**  Tracers are plain picklable values; worker processes
  return theirs and :meth:`SpanTracer.merge` folds them into the parent
  with ids remapped and a fresh ``track`` lane per worker, so parallel
  runs lose no telemetry (see :mod:`repro.parallel.batch`).

The Chrome-trace exporter (:meth:`SpanTracer.to_chrome_trace`) renders
the buffer as the Trace Event JSON array that ``chrome://tracing`` and
Perfetto load directly.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "DEFAULT_SPAN_CAPACITY",
    "Span",
    "SpanHandle",
    "SpanTracer",
    "NO_SPAN",
    "spans_to_chrome_trace",
]

#: Default ring-buffer capacity: completed spans kept per tracer.
DEFAULT_SPAN_CAPACITY = 16384

#: Multiplier folding the seed into the sampling phase (golden-ratio
#: conjugate: consecutive seeds land far apart in [0, 1)).
_PHASE = 0.6180339887498949


class SpanHandle:
    """No-op base of everything :func:`repro.obs.span` can return.

    Call sites only ever ``with obs.span(...) as span:`` and
    ``span.set(...)``; this base makes both free when the tracer is
    absent (:data:`NO_SPAN`) or the root was sampled out
    (:class:`_SuppressedSpan`).
    """

    __slots__ = ()

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (ignored off the record path)."""
        return None


#: The shared do-nothing handle returned when no span tracer is active.
NO_SPAN = SpanHandle()


class _SuppressedSpan(SpanHandle):
    """Shared handle for a sampled-out subtree (one per tracer).

    Entering it bumps the tracer's suppression depth so descendant
    ``span()`` calls short-circuit without making their own sampling
    decision; exiting unwinds it.  Re-entrant by construction — it only
    counts — so one instance serves arbitrarily deep subtrees with zero
    per-span allocation.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "SpanTracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> "_SuppressedSpan":
        self._tracer._suppressed += 1
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._suppressed -= 1


class Span(SpanHandle):
    """One recorded region: ids, clocks, and structured attributes.

    ``wall_ms``/``cpu_ms`` are filled on exit; *point* spans (zero
    duration, recorded via :meth:`SpanTracer.point`) have both at 0.0
    and ``point`` True.  ``track`` is the lane the span renders on in
    the Chrome trace — 0 for spans recorded locally, a fresh lane per
    merged worker tracer.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "ts",
        "wall_ms",
        "cpu_ms",
        "track",
        "point",
        "attrs",
        "_tracer",
        "_wall0",
        "_cpu0",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.ts = 0.0
        self.wall_ms = 0.0
        self.cpu_ms = 0.0
        self.track = 0
        self.point = False
        self.attrs = attrs
        self._tracer = tracer
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs: object) -> None:
        """Merge attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._stack.append(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.ts = self._wall0 - tracer._epoch
        return self

    def __exit__(self, *exc: object) -> None:
        self.cpu_ms = (time.process_time() - self._cpu0) * 1000.0
        self.wall_ms = (time.perf_counter() - self._wall0) * 1000.0
        tracer = self._tracer
        tracer._stack.pop()
        tracer._append(self)

    def __getstate__(
        self,
    ) -> tuple[int, int | None, str, float, float, float, int, bool, dict[str, object]]:
        # The tracer back-reference is only needed while the span is
        # open; completed spans pickle as plain values.
        return (
            self.span_id,
            self.parent_id,
            self.name,
            self.ts,
            self.wall_ms,
            self.cpu_ms,
            self.track,
            self.point,
            self.attrs,
        )

    def __setstate__(
        self,
        state: tuple[
            int, int | None, str, float, float, float, int, bool, dict[str, object]
        ],
    ) -> None:
        (
            self.span_id,
            self.parent_id,
            self.name,
            self.ts,
            self.wall_ms,
            self.cpu_ms,
            self.track,
            self.point,
            self.attrs,
        ) = state
        self._tracer = None  # type: ignore[assignment]
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __repr__(self) -> str:
        kind = "point" if self.point else f"{self.wall_ms:.3f}ms"
        return f"Span({self.name!r}, id={self.span_id}, {kind})"


class SpanTracer:
    """Bounded, sampled, mergeable recorder of hierarchical spans.

    Parameters
    ----------
    rate:
        Head-based sampling rate in ``[0, 1]``: the fraction of *root*
        spans recorded.  The decision is deterministic in
        ``(seed, root index)`` — no RNG — and covers the whole subtree.
    seed:
        Phase offset for the sampling sequence; the same seed replays
        the same keep/drop pattern.
    capacity:
        Ring-buffer size for completed spans; the oldest spans are
        dropped (and counted) when it overflows.
    """

    def __init__(
        self,
        *,
        rate: float = 1.0,
        seed: int = 0,
        capacity: int = DEFAULT_SPAN_CAPACITY,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        self.rate = rate
        self.seed = seed
        self.capacity = capacity
        self.dropped = 0
        #: Root spans seen / actually recorded (sampling numerator).
        self.roots_started = 0
        self.roots_sampled = 0
        self._phase = (seed * _PHASE) % 1.0
        self._buffer: list[Span] = []
        self._head = 0
        self._stack: list[Span] = []
        self._suppressed = 0
        self._next_id = 0
        self._tracks = 0
        self._suppressor = _SuppressedSpan(self)
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: object) -> SpanHandle:
        """Open a span; use as a context manager.

        Returns the shared suppression handle when inside a sampled-out
        subtree (or when this root loses the sampling draw), so the
        caller never branches on sampling itself.
        """
        if self._suppressed:
            return self._suppressor
        if not self._stack:
            self.roots_started += 1
            if not self._sample(self.roots_started - 1):
                return self._suppressor
            self.roots_sampled += 1
        span = Span(self, self._next_id, self._parent_id(), name, attrs)
        self._next_id += 1
        return span

    def point(self, name: str, **attrs: object) -> None:
        """Record an instantaneous span under the currently open span.

        Points outside any sampled open span are discarded — they would
        have no parent to attribute them to.  Traced plan replay emits
        one point per op, so this path is hand-inlined (no
        ``_parent_id``/``_append`` calls) to keep per-op cost down.
        """
        stack = self._stack
        if self._suppressed or not stack:
            return
        span = Span(self, self._next_id, stack[-1].span_id, name, attrs)
        self._next_id += 1
        span.ts = time.perf_counter() - self._epoch
        span.point = True
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(span)
        else:
            buffer[self._head] = span
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    @property
    def recording(self) -> bool:
        """True while inside a sampled open span (plan replay hooks ask)."""
        return not self._suppressed and bool(self._stack)

    def _parent_id(self) -> int | None:
        return self._stack[-1].span_id if self._stack else None

    def _sample(self, index: int) -> bool:
        """Deterministic head-based draw for root number ``index``."""
        rate = self.rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        phase = self._phase
        return math.floor((index + 1) * rate + phase) > math.floor(
            index * rate + phase
        )

    def _append(self, span: Span) -> None:
        if len(self._buffer) < self.capacity:
            self._buffer.append(span)
            return
        self._buffer[self._head] = span
        self._head = (self._head + 1) % self.capacity
        self.dropped += 1

    # -- views ---------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Completed spans, oldest first (ring order unrolled)."""
        return self._buffer[self._head :] + self._buffer[: self._head]

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    # -- merging -------------------------------------------------------

    def merge(self, other: "SpanTracer") -> None:
        """Fold a worker tracer's spans into this one.

        Incoming span/parent ids are remapped past this tracer's id
        space and every merged batch lands on a fresh ``track`` lane, so
        parent links stay acyclic and per-worker timelines stay visually
        separate in the Chrome trace.  Timestamps remain relative to the
        worker's own epoch (documented in ``docs/observability.md``).
        """
        offset = self._next_id
        self._tracks += 1
        track = self._tracks
        highest = -1
        for span in other.spans:
            span.span_id += offset
            if span.parent_id is not None:
                span.parent_id += offset
            span.track = track
            if span.span_id > highest:
                highest = span.span_id
            self._append(span)
        self._next_id = max(self._next_id, highest + 1)
        self.dropped += other.dropped
        self.roots_started += other.roots_started
        self.roots_sampled += other.roots_sampled

    # -- export --------------------------------------------------------

    def to_chrome_trace(self) -> list[dict[str, object]]:
        return spans_to_chrome_trace(self.spans)

    def write_chrome_trace(self, path: str | Path) -> None:
        """Write the Trace Event JSON array ``chrome://tracing`` loads."""
        Path(path).write_text(
            json.dumps(self.to_chrome_trace(), sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __getstate__(self) -> dict[str, object]:
        state = self.__dict__.copy()
        # The suppressor holds a back-reference; rebuild it on unpickle.
        del state["_suppressor"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._suppressor = _SuppressedSpan(self)

    def __repr__(self) -> str:
        return (
            f"SpanTracer(spans={len(self._buffer)}, rate={self.rate}, "
            f"dropped={self.dropped})"
        )


def spans_to_chrome_trace(spans: Sequence[Span]) -> list[dict[str, object]]:
    """Render spans as Chrome Trace Event objects (the JSON array format).

    Duration spans become complete (``"ph": "X"``) events, points become
    thread-scoped instant (``"ph": "i"``) events; ``ts``/``dur`` are in
    microseconds per the format.  The resulting list round-trips through
    ``json.dumps`` and loads in ``chrome://tracing`` / Perfetto.
    """
    events: list[dict[str, object]] = []
    for span in sorted(spans, key=lambda s: (s.track, s.ts, s.span_id)):
        event: dict[str, object] = {
            "name": span.name,
            "cat": "repro",
            "pid": 0,
            "tid": span.track,
            "ts": round(span.ts * 1e6, 3),
            "args": dict(span.attrs, span_id=span.span_id, parent_id=span.parent_id),
        }
        if span.point:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(span.wall_ms * 1000.0, 3)
            event["args"]["cpu_ms"] = round(span.cpu_ms, 6)  # type: ignore[index]
        events.append(event)
    return events
