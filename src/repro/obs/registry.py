"""Dependency-free metrics primitives: counters, gauges, histograms, timers.

The registry is deliberately tiny — a dict of named metrics with
get-or-create accessors — because it sits on the estimator hot paths.
Instrumented call sites guard every touch with the module-level
``repro.obs.enabled`` flag, so when observability is off the estimators
pay one boolean check and allocate nothing.

Metric families follow the Prometheus data model:

* :class:`Counter` — monotonically increasing totals, optionally split
  by a fixed tuple of label names (``lattice_lookups_total{outcome=...}``);
* :class:`Gauge` — last-written values (``online_bytes``);
* :class:`Histogram` — observations bucketed by *fixed* upper-bound
  boundaries chosen at creation (``recursion_depth``), plus running
  count/sum/min/max;
* :class:`Timer` — a histogram of elapsed seconds fed by a re-entrant
  ``with timer.time():`` context manager (nesting records each frame's
  own elapsed time independently);
* :class:`~repro.obs.quantiles.QuantileSketch` — streaming quantiles
  with bounded relative error (defined in :mod:`repro.obs.quantiles`,
  registered through :meth:`MetricsRegistry.quantile`).

Every family is plain picklable data and supports ``merge``: worker
processes return their registries and the parent folds them in with
:meth:`MetricsRegistry.merge` (counters add, gauges take the incoming
value, histograms/timers add matching buckets, sketches merge), which is
how parallel runs keep their telemetry (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterator, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .quantiles import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
]

#: Upper bounds (seconds) for timer histograms: 10µs .. 30s.
DEFAULT_TIME_BUCKETS = (
    0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01,
    0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Upper bounds for generic count-like histograms (depths, fan-outs, sizes).
DEFAULT_COUNT_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128)

_NO_LABELS: tuple[str, ...] = ()

_M = TypeVar("_M", bound="_Metric")


class _Metric:
    """Shared naming/label plumbing of all metric families."""

    kind = "metric"
    __slots__ = ("name", "help", "label_names")

    def __init__(
        self, name: str, help: str = "", label_names: tuple[str, ...] = _NO_LABELS
    ) -> None:
        if not name or any(ch.isspace() for ch in name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)


class Counter(_Metric):
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"
    __slots__ = ("_values",)

    def __init__(
        self, name: str, help: str = "", label_names: tuple[str, ...] = _NO_LABELS
    ) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    @property
    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def samples(self) -> Iterator[tuple[dict[str, str], float]]:
        for key, value in sorted(self._values.items()):
            yield dict(zip(self.label_names, key)), value

    def merge(self, other: "Counter") -> None:
        """Add another counter's per-label totals into this one."""
        if other.label_names != self.label_names:
            raise ValueError(f"{self.name}: label mismatch on merge")
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0) + value


class Gauge(_Metric):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("_values",)

    def __init__(
        self, name: str, help: str = "", label_names: tuple[str, ...] = _NO_LABELS
    ) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> Iterator[tuple[dict[str, str], float]]:
        for key, value in sorted(self._values.items()):
            yield dict(zip(self.label_names, key)), value

    def merge(self, other: "Gauge") -> None:
        """Adopt another gauge's values (the incoming write wins)."""
        if other.label_names != self.label_names:
            raise ValueError(f"{self.name}: label mismatch on merge")
        self._values.update(other._values)


class Histogram(_Metric):
    """Observations bucketed by fixed, sorted upper-bound boundaries.

    ``bucket_counts[i]`` counts observations ``<= boundaries[i]`` and not
    in any earlier bucket; the implicit final bucket catches the rest
    (the Prometheus ``+Inf`` bucket).
    """

    kind = "histogram"
    __slots__ = ("boundaries", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        help: str = "",
        boundaries: tuple[float, ...] = DEFAULT_COUNT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("boundaries must be non-empty, sorted, distinct")
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.boundaries, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def merge(self, other: "Histogram") -> None:
        """Add another histogram's buckets; boundaries must match."""
        if other.boundaries != self.boundaries:
            raise ValueError(f"{self.name}: boundary mismatch on merge")
        for i, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[i] += bucket
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max


class Timer(_Metric):
    """A histogram of elapsed wall-clock seconds.

    ``with timer.time(): ...`` measures one frame; each ``time()`` call
    returns a fresh context object, so nested and concurrent frames each
    record their own duration.
    """

    kind = "timer"
    __slots__ = ("histogram",)

    def __init__(
        self,
        name: str,
        help: str = "",
        boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.histogram = Histogram(name, help, boundaries=boundaries)

    def time(self) -> "_TimerFrame":
        return _TimerFrame(self)

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    @property
    def calls(self) -> int:
        return self.histogram.count

    @property
    def total_seconds(self) -> float:
        return self.histogram.sum

    def merge(self, other: "Timer") -> None:
        """Merge the backing histograms; boundaries must match."""
        self.histogram.merge(other.histogram)


class _TimerFrame:
    """One timed region; safe to nest because state lives per-frame."""

    __slots__ = ("_timer", "_start", "elapsed")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_TimerFrame":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._timer.observe(self.elapsed)


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    Accessors are idempotent: the first call fixes the metric's family,
    help string, labels and buckets; later calls with the same name
    return the existing instance (and raise if the family differs, which
    catches name collisions early).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- get-or-create -------------------------------------------------

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = _NO_LABELS
    ) -> Counter:
        return self._get_or_create(Counter, name, help, label_names=labels)

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = _NO_LABELS
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names=labels)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_COUNT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, boundaries=buckets)

    def timer(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> Timer:
        return self._get_or_create(Timer, name, help, boundaries=buckets)

    def quantile(
        self, name: str, help: str = "", alpha: float | None = None
    ) -> "QuantileSketch":
        # Imported here: quantiles.py needs _Metric from this module, so
        # a top-level import would be circular.
        from .quantiles import DEFAULT_ALPHA, QuantileSketch

        return self._get_or_create(
            QuantileSketch,
            name,
            help,
            alpha=DEFAULT_ALPHA if alpha is None else alpha,
        )

    def _get_or_create(self, cls: type[_M], name: str, help: str, **kwargs: Any) -> _M:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    # -- introspection -------------------------------------------------

    def get(self, name: str) -> "_Metric | None":
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterator["_Metric"]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def clear(self) -> None:
        """Drop every metric (a fresh start for a new capture window)."""
        self._metrics.clear()

    # -- merging -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (typically a worker's) into this one.

        Metrics present only in ``other`` are adopted as-is; metrics
        present in both merge family-wise (counters/histograms/timers
        add, gauges take the incoming value, quantile sketches combine
        buckets).  A name registered under two different families is an
        instrumentation bug and raises.
        """
        for name, metric in other._metrics.items():
            existing = self._metrics.get(name)
            if existing is None:
                self._metrics[name] = metric
                continue
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {name!r} registered as {existing.kind} here "
                    f"but {metric.kind} in the merged registry"
                )
            existing.merge(metric)  # type: ignore[attr-defined]
