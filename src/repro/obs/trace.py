"""Structured estimation traces: span-like events in arrival order.

Where the metrics registry aggregates, the trace recorder keeps the
*sequence*: every instrumented decision (a lattice lookup and its
outcome, a decomposition step, a pruning verdict) appends one flat
``dict`` event.  Events are machine-readable by construction — each
carries a monotonically increasing ``seq``, a wall-clock offset ``ts``
in seconds since the recorder started, the current span ``depth``, the
``event`` name, and the call site's keyword fields.

:meth:`TraceRecorder.span` wraps a region: it raises the depth for
nested events and emits one closing event with the region's
``duration_ms``.  The JSONL serialisation (one event per line) is the
on-disk format consumed by ``repro estimate --trace PATH``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """An append-only recorder of structured trace events."""

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []
        self._start = time.perf_counter()
        self._depth = 0
        self._seq = 0

    def record(self, event: str, **fields: object) -> dict[str, object]:
        """Append one event; returns the stored dict (already sequenced)."""
        entry: dict[str, object] = {
            "seq": self._seq,
            "ts": round(time.perf_counter() - self._start, 9),
            "depth": self._depth,
            "event": event,
        }
        entry.update(fields)
        self._seq += 1
        self.events.append(entry)
        return entry

    def span(self, event: str, **fields: object) -> "_Span":
        """Context manager: nested events gain depth, exit emits the span."""
        return _Span(self, event, fields)

    # -- views ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def by_event(self, name: str) -> list[dict[str, object]]:
        return [e for e in self.events if e["event"] == name]

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.to_jsonl() + "\n", encoding="utf-8")


class _Span:
    __slots__ = ("_recorder", "_event", "_fields", "_start")

    def __init__(
        self, recorder: TraceRecorder, event: str, fields: dict[str, object]
    ) -> None:
        self._recorder = recorder
        self._event = event
        self._fields = fields
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        self._recorder._depth += 1
        return self

    def __exit__(self, *exc: object) -> None:
        recorder = self._recorder
        recorder._depth -= 1
        elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        recorder.record(self._event, duration_ms=round(elapsed_ms, 6), **self._fields)
