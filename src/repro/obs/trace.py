"""Structured estimation traces: span-like events in arrival order.

Where the metrics registry aggregates, the trace recorder keeps the
*sequence*: every instrumented decision (a lattice lookup and its
outcome, a decomposition step, a pruning verdict) appends one flat
``dict`` event.  Events are machine-readable by construction — each
carries a monotonically increasing ``seq``, a wall-clock offset ``ts``
in seconds since the recorder started, the current span ``depth``, the
``event`` name, and the call site's keyword fields.

Storage is a bounded ring (default :data:`DEFAULT_TRACE_CAPACITY`
events): long captures keep the most recent window instead of growing
without limit, and the overflow count is exposed both as
:attr:`TraceRecorder.dropped` and — when the recorder was built with a
registry, as the capture windows in :mod:`repro.obs` do — as the
``trace_events_dropped_total`` counter.

:meth:`TraceRecorder.span` wraps a region: it raises the depth for
nested events and emits one closing event with the region's
``duration_ms``.  The JSONL serialisation (one event per line) is the
on-disk format consumed by ``repro estimate --trace PATH``.  For
hierarchical spans with ids and CPU time, see :mod:`repro.obs.spans`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .registry import MetricsRegistry

__all__ = ["TraceRecorder", "DEFAULT_TRACE_CAPACITY"]

#: Default ring capacity (~64k events), per the flight-recorder budget.
DEFAULT_TRACE_CAPACITY = 65536


class TraceRecorder:
    """A bounded recorder of structured trace events (drop-oldest ring)."""

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._buffer: list[dict[str, object]] = []
        self._head = 0
        self._registry = registry
        self._start = time.perf_counter()
        self._depth = 0
        self._seq = 0

    def record(self, event: str, **fields: object) -> dict[str, object]:
        """Append one event; returns the stored dict (already sequenced)."""
        entry: dict[str, object] = {
            "seq": self._seq,
            "ts": round(time.perf_counter() - self._start, 9),
            "depth": self._depth,
            "event": event,
        }
        entry.update(fields)
        self._seq += 1
        if len(self._buffer) < self.capacity:
            self._buffer.append(entry)
        else:
            self._buffer[self._head] = entry
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1
            if self._registry is not None:
                self._registry.counter(
                    "trace_events_dropped_total",
                    "Trace events evicted from the bounded ring buffer.",
                ).inc()
        return entry

    def span(self, event: str, **fields: object) -> "_Span":
        """Context manager: nested events gain depth, exit emits the span."""
        return _Span(self, event, fields)

    # -- views ---------------------------------------------------------

    @property
    def events(self) -> list[dict[str, object]]:
        """Retained events, oldest first (ring order unrolled)."""
        return self._buffer[self._head :] + self._buffer[: self._head]

    def __len__(self) -> int:
        return len(self._buffer)

    def by_event(self, name: str) -> list[dict[str, object]]:
        return [e for e in self.events if e["event"] == name]

    def merge(self, other: "TraceRecorder") -> None:
        """Append a worker recorder's events (re-sequenced, depth kept).

        Worker timestamps stay relative to the worker's own start; the
        merged stream is ordered by arrival at the parent, which is the
        deterministic submission order used by :mod:`repro.parallel`.
        """
        for entry in other.events:
            entry = dict(entry)
            entry["seq"] = self._seq
            self._seq += 1
            if len(self._buffer) < self.capacity:
                self._buffer.append(entry)
            else:
                self._buffer[self._head] = entry
                self._head = (self._head + 1) % self.capacity
                self.dropped += 1
        self.dropped += other.dropped

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.to_jsonl() + "\n", encoding="utf-8")

    def __getstate__(self) -> dict[str, object]:
        # Registries don't cross process boundaries through the
        # recorder; workers carry their own and merge explicitly.
        state = self.__dict__.copy()
        state["_registry"] = None
        return state


class _Span:
    __slots__ = ("_recorder", "_event", "_fields", "_start")

    def __init__(
        self, recorder: TraceRecorder, event: str, fields: dict[str, object]
    ) -> None:
        self._recorder = recorder
        self._event = event
        self._fields = fields
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        self._recorder._depth += 1
        return self

    def __exit__(self, *exc: object) -> None:
        recorder = self._recorder
        recorder._depth -= 1
        elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        recorder.record(self._event, duration_ms=round(elapsed_ms, 6), **self._fields)
