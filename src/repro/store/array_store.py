"""Interned-array store backend: dense ids indexing a count vector.

Patterns are interned through a :class:`~repro.trees.canonical.
PatternInterner` — every canon becomes a dense integer id in insertion
order — and counts live in a single ``array('q')`` indexed by id.  The
per-pattern cost collapses from nested Python tuples to a packed
4-bytes-per-node code plus one 8-byte count slot, the same compact-
encoding move native XML stores make for their path/label tables.

The backend is picklable (workers receive estimators holding summaries)
and has a versioned on-disk payload (:meth:`ArrayStore.to_payload` /
:meth:`ArrayStore.from_payload`) that records the writer's byte order so
summaries survive cross-endian moves.  Version 2 payloads carry a CRC32
over the label/code/count streams; loads verify it before trusting a
single byte and raise the typed
:class:`~repro.store.errors.StorePayloadError` taxonomy instead of
ad-hoc ``ValueError``/pickle errors.  Version 1 payloads (no checksum)
remain readable.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterator, Sequence

from .. import obs
from ..resilience import corrupt_bytes
from ..trees.canonical import Canon, PatternInterner
from .base import SummaryStore
from .errors import TruncatedPayload, UnsupportedVersion
from .integrity import payload_checksum, verify_checksum

__all__ = ["ArrayStore"]

#: Version stamp embedded in every persisted payload.  Version 2 added
#: the ``crc32`` integrity field; version 1 is still readable.
PAYLOAD_VERSION = 2

#: Fault-injection site for the count vector's bytes (chaos tests flip
#: one byte here and assert the load dies with ``ChecksumMismatch``).
_CORRUPTION_SITE = "store.array_payload"

_COUNT_TYPECODE = "q"
_CODE_TYPECODE = "H"


def _swapped_code(code: bytes) -> bytes:
    buffer = array(_CODE_TYPECODE)
    buffer.frombytes(code)
    buffer.byteswap()
    return buffer.tobytes()


class ArrayStore(SummaryStore):
    """Counts in a flat array, addressed by interned pattern ids."""

    backend = "array"

    __slots__ = ("_interner", "_counts")

    def __init__(self) -> None:
        self._interner = PatternInterner()
        self._counts = array(_COUNT_TYPECODE)

    # Invariant: ids are assigned by ``add`` only, so the interner and
    # the count vector stay the same length and id ``i`` owns slot ``i``.

    def add(self, key: Canon, count: int) -> None:
        pattern_id = self._interner.intern(key)
        if pattern_id == len(self._counts):
            self._counts.append(count)
        else:
            self._counts[pattern_id] = count

    def get(self, key: Canon) -> int | None:
        pattern_id = self._interner.id_of(key)
        if obs.enabled:
            obs.registry.counter(
                "store_lookups_total",
                "Store-backend key probes by backend and outcome.",
                labels=("backend", "outcome"),
            ).inc(
                backend="array",
                outcome="miss" if pattern_id is None else "hit",
            )
        if pattern_id is None:
            return None
        return self._counts[pattern_id]

    def __contains__(self, key: Canon) -> bool:
        return self._interner.id_of(key) is not None

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[tuple[Canon, int]]:
        interner = self._interner
        for pattern_id, count in enumerate(self._counts):
            yield interner.canon_of(pattern_id), count

    # -- id-level access ------------------------------------------------

    @property
    def interner(self) -> PatternInterner:
        """The pattern interner backing this store (read-only use)."""
        return self._interner

    def id_of(self, key: Canon) -> int | None:
        """Dense id of ``key``, or ``None`` when not stored."""
        return self._interner.id_of(key)

    def count_by_id(self, pattern_id: int) -> int:
        """Count stored under a dense id (raises ``IndexError`` if unknown)."""
        return self._counts[pattern_id]

    def gather_counts(
        self, pattern_ids: "Sequence[int]", *, missing: int | None = None
    ) -> "array[int]":
        """Bulk id -> count gather: one ``array('q')`` per input order.

        The column-at-a-time counterpart of :meth:`count_by_id` for the
        kernel layer and serving callers: hand it a batch of dense ids
        and get the packed count column back (``'q'`` slots, so counts
        beyond 2**31 survive unclipped).  An unknown or negative id
        raises :class:`KeyError` naming the offending id — never a
        silent wrap-around read — unless ``missing`` supplies a
        substitute count for unknown ids.
        """
        counts = self._counts
        limit = len(counts)
        out = array(_COUNT_TYPECODE)
        if missing is None:
            for pattern_id in pattern_ids:
                if not 0 <= pattern_id < limit:
                    raise KeyError(
                        f"pattern id {pattern_id} not in store "
                        f"(holds ids 0..{limit - 1})"
                    )
                out.append(counts[pattern_id])
        else:
            for pattern_id in pattern_ids:
                if 0 <= pattern_id < limit:
                    out.append(counts[pattern_id])
                else:
                    out.append(missing)
        if obs.enabled:
            obs.registry.counter(
                "store_gather_ids_total",
                "Dense ids resolved through bulk count gathers.",
                labels=("backend",),
            ).inc(len(out), backend="array")
        return out

    # -- accounting -----------------------------------------------------

    def byte_size(self) -> int:
        """Actual footprint: the count vector plus the intern tables."""
        return sys.getsizeof(self._counts) + self._interner.byte_size()

    # -- merging --------------------------------------------------------

    def merge(self, other: SummaryStore) -> "ArrayStore":
        """Monoid combine by interner-id remap + count add.

        ``other``'s label table is interned into a copy of ``self``'s
        (building an old-id -> new-id map), every foreign pattern code
        has its label slots rewritten through that map, and the
        translated codes are interned — shared patterns land on
        ``self``'s dense ids and add their counts; new patterns take the
        next free ids in ``other``'s order.  Neither operand is touched,
        and merging with the empty store on either side reproduces this
        store's tables and payload byte for byte.
        """
        self._merge_handshake(other)
        assert isinstance(other, ArrayStore)
        labels, codes = self._interner.tables()
        merged = ArrayStore()
        merged._interner = PatternInterner.from_tables(labels, codes)
        merged._counts = array(_COUNT_TYPECODE, self._counts)
        other_labels, other_codes = other._interner.tables()
        label_map = [
            merged._interner.intern_label(label) for label in other_labels
        ]
        identity = all(new == old for old, new in enumerate(label_map))
        counts = merged._counts
        for other_id, code in enumerate(other_codes):
            if not identity:
                code = PatternInterner.translate_code(code, label_map)
            pattern_id = merged._interner.intern_code(code)
            if pattern_id == len(counts):
                counts.append(other._counts[other_id])
            else:
                counts[pattern_id] += other._counts[other_id]
        if obs.enabled:
            obs.registry.counter(
                "store_merges_total",
                "Monoid store merges by backend.",
                labels=("backend",),
            ).inc(backend="array")
        return merged

    # -- pickling and persistence --------------------------------------

    def __getstate__(self) -> tuple[PatternInterner, array[int]]:
        return (self._interner, self._counts)

    def __setstate__(self, state: tuple[PatternInterner, array[int]]) -> None:
        self._interner, self._counts = state

    def to_payload(self) -> dict[str, object]:
        """Versioned, endianness-tagged, checksummed persistence payload."""
        labels, codes = self._interner.tables()
        counts = self._counts.tobytes()
        return {
            "payload_version": PAYLOAD_VERSION,
            "byteorder": sys.byteorder,
            "labels": labels,
            "codes": codes,
            "counts": counts,
            "crc32": payload_checksum(
                _checksum_parts(sys.byteorder, labels, codes, counts)
            ),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "ArrayStore":
        """Rebuild a store from :meth:`to_payload` output.

        Raises the typed taxonomy on anything suspect:
        :class:`~repro.store.errors.UnsupportedVersion` for unknown
        payload versions, :class:`~repro.store.errors.TruncatedPayload`
        for missing/short fields, and :class:`~repro.store.errors.
        ChecksumMismatch` when a version-2 payload's CRC32 disagrees
        with its contents (verified against the writer's byte stream,
        before any byteswap).
        """
        version = payload.get("payload_version")
        if not isinstance(version, int) or not 1 <= version <= PAYLOAD_VERSION:
            raise UnsupportedVersion(
                f"unsupported ArrayStore payload version {version!r} "
                f"(this build reads versions 1..{PAYLOAD_VERSION})"
            )
        try:
            byteorder = payload["byteorder"]
            labels = list(payload["labels"])  # type: ignore[call-overload]
            codes = list(payload["codes"])  # type: ignore[call-overload]
            counts_bytes = payload["counts"]
        except KeyError as exc:
            raise TruncatedPayload(
                f"ArrayStore payload is missing field {exc.args[0]!r}"
            ) from None
        if not isinstance(counts_bytes, bytes):
            raise TruncatedPayload(
                "ArrayStore payload field 'counts' is not a byte string"
            )
        counts_bytes = corrupt_bytes(_CORRUPTION_SITE, counts_bytes)
        if version >= 2:
            verify_checksum(
                _checksum_parts(str(byteorder), labels, codes, counts_bytes),
                payload.get("crc32"),
                "ArrayStore",
            )
        counts = array(_COUNT_TYPECODE)
        if len(counts_bytes) % counts.itemsize:
            raise TruncatedPayload(
                f"ArrayStore count vector is truncated: {len(counts_bytes)} "
                f"bytes is not a multiple of {counts.itemsize}"
            )
        counts.frombytes(counts_bytes)
        if byteorder != sys.byteorder:
            codes = [_swapped_code(code) for code in codes]
            counts.byteswap()
        store = cls()
        store._interner = PatternInterner.from_tables(labels, codes)
        store._counts = counts
        return store


def _checksum_parts(
    byteorder: str, labels: Sequence[str], codes: Sequence[bytes], counts: bytes
) -> list[bytes | str]:
    """Canonical checksum stream: field lengths disambiguate the tables."""
    return [byteorder, str(len(labels)), *labels, *codes, counts]
