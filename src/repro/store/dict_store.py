"""Hash-table store backend: ``dict[Canon, int]`` (the paper's §4.2 pick).

This is the representation the project has always used, factored behind
the :class:`~repro.store.base.SummaryStore` protocol.  It stays the
default because it has zero translation cost on lookups — the canon
tuple *is* the key — at the price of Python tuple/str object overhead
per stored pattern, which :meth:`DictStore.byte_size` now reports
honestly instead of assuming an 8-byte-per-count C layout.
"""

from __future__ import annotations

import sys
from typing import Iterator

from .. import obs
from ..resilience import corrupt_bytes
from ..trees.canonical import Canon, decode_canon, encode_canon
from .base import SummaryStore
from .errors import TruncatedPayload, UnsupportedVersion
from .integrity import payload_checksum, verify_checksum

__all__ = ["DictStore", "load_shard_payload"]

#: Version stamp embedded in persisted payloads.  The dict backend
#: gained payloads in the checksummed era, so 2 is its first version
#: (matching the array backend's numbering).
PAYLOAD_VERSION = 2

#: Fault-injection site for the encoded entry stream.
_CORRUPTION_SITE = "store.dict_payload"

#: Fault-injection site for worker-shipped shard payloads.  The parent
#: re-verifies every payload a shard-mining worker returns through this
#: site; chaos specs target it as ``corrupt@store.load`` and the CI
#: chaos job's ``merge`` leg asserts the typed ``ChecksumMismatch``.
TRANSPORT_SITE = "store.load"


def _deep_canon_bytes(key: Canon, seen: set[int]) -> int:
    """Footprint of one canon tuple, skipping objects already counted.

    Canon nodes are nested tuples over label strings; label strings are
    typically shared across many patterns of one document, so dedup by
    object identity keeps the figure honest.
    """
    total = 0
    stack: list[object] = [key]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, tuple):
            stack.extend(obj)
    return total


class DictStore(SummaryStore):
    """Insertion-ordered hash table over canonical tuple keys."""

    backend = "dict"

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[Canon, int] = {}

    def add(self, key: Canon, count: int) -> None:
        self._counts[key] = count

    def get(self, key: Canon) -> int | None:
        found = self._counts.get(key)
        if obs.enabled:
            obs.registry.counter(
                "store_lookups_total",
                "Store-backend key probes by backend and outcome.",
                labels=("backend", "outcome"),
            ).inc(backend="dict", outcome="hit" if found is not None else "miss")
        return found

    def __contains__(self, key: Canon) -> bool:
        return key in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[tuple[Canon, int]]:
        return iter(self._counts.items())

    def byte_size(self) -> int:
        """Actual footprint: the table plus every key tuple and count."""
        seen: set[int] = set()
        total = sys.getsizeof(self._counts)
        for key, count in self._counts.items():
            total += _deep_canon_bytes(key, seen)
            total += sys.getsizeof(count)
        return total

    def merge(self, other: SummaryStore) -> "DictStore":
        """Monoid combine: counts add, neither operand is touched.

        ``self``'s keys keep their insertion order; keys only ``other``
        holds follow in ``other``'s order, so merging with the empty
        store on either side reproduces this store byte for byte.
        """
        self._merge_handshake(other)
        assert isinstance(other, DictStore)
        merged = DictStore()
        counts = dict(self._counts)
        for key, count in other._counts.items():
            counts[key] = counts.get(key, 0) + count
        merged._counts = counts
        if obs.enabled:
            obs.registry.counter(
                "store_merges_total",
                "Monoid store merges by backend.",
                labels=("backend",),
            ).inc(backend="dict")
        return merged

    def __getstate__(self) -> dict[Canon, int]:
        return self._counts

    def __setstate__(self, state: dict[Canon, int]) -> None:
        self._counts = state

    # -- persistence ----------------------------------------------------

    def to_payload(self) -> dict[str, object]:
        """Versioned, checksummed payload (sharding/embedding callers).

        Entries are encoded in insertion order as ``count\\tkey`` lines,
        so a round trip reproduces the store bit-identically — count
        values *and* dict order.
        """
        data = "\n".join(
            f"{count}\t{encode_canon(key)}"
            for key, count in self._counts.items()
        ).encode("utf-8")
        return {
            "payload_version": PAYLOAD_VERSION,
            "data": data,
            "crc32": payload_checksum([data]),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "DictStore":
        """Rebuild a store from :meth:`to_payload` output.

        Raises :class:`~repro.store.errors.UnsupportedVersion`,
        :class:`~repro.store.errors.TruncatedPayload`, or
        :class:`~repro.store.errors.ChecksumMismatch` — never a bare
        ``ValueError`` or a decode crash.
        """
        version = payload.get("payload_version")
        if version != PAYLOAD_VERSION:
            raise UnsupportedVersion(
                f"unsupported DictStore payload version {version!r} "
                f"(this build reads version {PAYLOAD_VERSION})"
            )
        data = payload.get("data")
        if not isinstance(data, bytes):
            raise TruncatedPayload(
                "DictStore payload is missing its 'data' byte string"
            )
        data = corrupt_bytes(_CORRUPTION_SITE, data)
        verify_checksum([data], payload.get("crc32"), "DictStore")
        store = cls()
        if not data:
            return store
        try:
            for line in data.decode("utf-8").split("\n"):
                count_str, key = line.split("\t", 1)
                store.add(decode_canon(key), int(count_str))
        except (ValueError, KeyError, IndexError) as exc:
            raise TruncatedPayload(
                f"DictStore payload entry stream is malformed: {exc}"
            ) from exc
        return store


def load_shard_payload(payload: dict[str, object]) -> DictStore:
    """Rebuild a worker-shipped shard store, re-verifying its CRC32.

    Shard-mining workers return their per-shard counts as
    :meth:`DictStore.to_payload` dicts; the parent rebuilds each one
    through this function so bytes corrupted in flight (or by a chaos
    plan targeting ``store.load``) die with a typed
    :class:`~repro.store.errors.ChecksumMismatch` instead of merging
    garbage into the summary.
    """
    data = payload.get("data")
    if isinstance(data, bytes):
        payload = dict(payload)
        payload["data"] = corrupt_bytes(TRANSPORT_SITE, data)
    return DictStore.from_payload(payload)
