"""Hash-table store backend: ``dict[Canon, int]`` (the paper's §4.2 pick).

This is the representation the project has always used, factored behind
the :class:`~repro.store.base.SummaryStore` protocol.  It stays the
default because it has zero translation cost on lookups — the canon
tuple *is* the key — at the price of Python tuple/str object overhead
per stored pattern, which :meth:`DictStore.byte_size` now reports
honestly instead of assuming an 8-byte-per-count C layout.
"""

from __future__ import annotations

import sys
from typing import Iterator

from .. import obs
from ..trees.canonical import Canon
from .base import SummaryStore

__all__ = ["DictStore"]


def _deep_canon_bytes(key: Canon, seen: set[int]) -> int:
    """Footprint of one canon tuple, skipping objects already counted.

    Canon nodes are nested tuples over label strings; label strings are
    typically shared across many patterns of one document, so dedup by
    object identity keeps the figure honest.
    """
    total = 0
    stack: list[object] = [key]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, tuple):
            stack.extend(obj)
    return total


class DictStore(SummaryStore):
    """Insertion-ordered hash table over canonical tuple keys."""

    backend = "dict"

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[Canon, int] = {}

    def add(self, key: Canon, count: int) -> None:
        self._counts[key] = count

    def get(self, key: Canon) -> int | None:
        found = self._counts.get(key)
        if obs.enabled:
            obs.registry.counter(
                "store_lookups_total",
                "Store-backend key probes by backend and outcome.",
                labels=("backend", "outcome"),
            ).inc(backend="dict", outcome="hit" if found is not None else "miss")
        return found

    def __contains__(self, key: Canon) -> bool:
        return key in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[tuple[Canon, int]]:
        return iter(self._counts.items())

    def byte_size(self) -> int:
        """Actual footprint: the table plus every key tuple and count."""
        seen: set[int] = set()
        total = sys.getsizeof(self._counts)
        for key, count in self._counts.items():
            total += _deep_canon_bytes(key, seen)
            total += sys.getsizeof(count)
        return total

    def __getstate__(self) -> dict[Canon, int]:
        return self._counts

    def __setstate__(self, state: dict[Canon, int]) -> None:
        self._counts = state
