"""Payload checksumming shared by the store backends.

Both backends embed a CRC32 over a canonical, length-prefixed
serialisation of their payload fields (version 2 payloads onward).
Length prefixes make the stream unambiguous — ``["ab", "c"]`` and
``["a", "bc"]`` checksum differently — and the canonical byte layout
is platform-independent except where a field *is* raw native bytes
(the array backend's count vector), in which case the checksum covers
the bytes as written and is verified *before* any byteswap, so
cross-endian loads still validate against the writer's stream.
"""

from __future__ import annotations

import zlib
from typing import Iterable

__all__ = ["payload_checksum", "verify_checksum"]

_LENGTH_BYTES = 4


def payload_checksum(parts: Iterable[bytes | str]) -> int:
    """CRC32 over the length-prefixed concatenation of ``parts``."""
    crc = 0
    for part in parts:
        data = part.encode("utf-8") if isinstance(part, str) else part
        crc = zlib.crc32(len(data).to_bytes(_LENGTH_BYTES, "little"), crc)
        crc = zlib.crc32(data, crc)
    return crc & 0xFFFFFFFF


def verify_checksum(
    parts: Iterable[bytes | str], stored: object, what: str
) -> None:
    """Raise :class:`ChecksumMismatch` unless ``stored`` matches ``parts``.

    ``stored`` is whatever the payload carried — anything that is not
    the expected integer is treated as a mismatch, not a crash.
    """
    from .errors import ChecksumMismatch

    actual = payload_checksum(parts)
    if not isinstance(stored, int) or stored != actual:
        shown = f"{stored:#010x}" if isinstance(stored, int) else repr(stored)
        raise ChecksumMismatch(
            f"{what} payload checksum mismatch: stored {shown}, "
            f"computed {actual:#010x} — the file is corrupt or was "
            "modified after writing"
        )
