"""Pluggable summary-count storage (trees → **store** → core layering).

See ``docs/architecture.md`` for where this layer sits.  The package
exposes the :class:`SummaryStore` protocol, its two backends, and a
small registry used by :class:`~repro.core.lattice.LatticeSummary` and
the CLI's ``--store {dict,array}`` flag.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..trees.canonical import Canon
from .array_store import ArrayStore
from .base import SummaryStore
from .dict_store import DictStore, load_shard_payload
from .errors import (
    ChecksumMismatch,
    MergeError,
    StoreError,
    StorePayloadError,
    TruncatedPayload,
    UnknownBackendError,
    UnsupportedVersion,
)

__all__ = [
    "SummaryStore",
    "DictStore",
    "ArrayStore",
    "STORE_BACKENDS",
    "make_store",
    "coerce_store",
    "load_shard_payload",
    "StoreError",
    "StorePayloadError",
    "TruncatedPayload",
    "ChecksumMismatch",
    "UnsupportedVersion",
    "UnknownBackendError",
    "MergeError",
]

#: Backend-name -> store class registry (CLI choices mirror the keys).
STORE_BACKENDS: dict[str, type[SummaryStore]] = {
    DictStore.backend: DictStore,
    ArrayStore.backend: ArrayStore,
}


def make_store(backend: str) -> SummaryStore:
    """Instantiate an empty store for ``backend`` (``"dict"``/``"array"``)."""
    try:
        store_cls = STORE_BACKENDS[backend]
    except KeyError:
        raise UnknownBackendError(
            f"unknown summary store backend {backend!r}; "
            f"choose from {sorted(STORE_BACKENDS)}"
        ) from None
    return store_cls()


def coerce_store(
    counts: SummaryStore | Mapping[Canon, int] | Iterable[tuple[Canon, int]],
    backend: str | None = None,
) -> SummaryStore:
    """Normalise counts into a store.

    A :class:`SummaryStore` passes through unchanged when its backend
    matches (or no backend was requested); anything else is streamed,
    in order, into a fresh store of the requested backend (default
    ``"dict"``).
    """
    if isinstance(counts, SummaryStore):
        if backend is None or counts.backend == backend:
            return counts
        target = make_store(backend)
        for key, count in counts.items():
            target.add(key, count)
        return target
    store = make_store(backend if backend is not None else DictStore.backend)
    pairs = counts.items() if isinstance(counts, Mapping) else counts
    for key, count in pairs:
        store.add(key, count)
    return store
