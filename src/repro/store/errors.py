"""Typed error taxonomy for store payloads and backend selection.

Every class derives from :class:`ValueError` so pre-existing callers
(``except ValueError`` around :meth:`~repro.core.lattice.LatticeSummary.
load`, the CLI's usage-error funnel) keep working, while new callers
can distinguish *what* went wrong:

* :class:`TruncatedPayload` — bytes missing, container unreadable, or a
  required field absent (short writes, partial downloads);
* :class:`ChecksumMismatch` — the payload decoded but its CRC32 does
  not match (bit rot, torn writes, deliberate corruption);
* :class:`UnsupportedVersion` — a payload from a newer (or unknown)
  format this build cannot read;
* :class:`UnknownBackendError` — a backend name outside the registry;
* :class:`MergeError` — two stores (or summaries) whose compatibility
  handshake failed were asked to :meth:`~repro.store.base.SummaryStore.
  merge`.
"""

from __future__ import annotations

__all__ = [
    "StoreError",
    "StorePayloadError",
    "TruncatedPayload",
    "ChecksumMismatch",
    "UnsupportedVersion",
    "UnknownBackendError",
    "MergeError",
]


class StoreError(ValueError):
    """Root of the store error taxonomy (a :class:`ValueError`)."""


class StorePayloadError(StoreError):
    """A persisted store payload could not be decoded."""


class TruncatedPayload(StorePayloadError):
    """The payload is structurally incomplete (missing bytes or fields)."""


class ChecksumMismatch(StorePayloadError):
    """The payload's recorded checksum does not match its contents."""


class UnsupportedVersion(StorePayloadError):
    """The payload's format version is not readable by this build."""


class UnknownBackendError(StoreError):
    """A store backend name outside the registry was requested."""


class MergeError(StoreError):
    """Two stores or summaries failed the merge compatibility handshake.

    Raised before any counting work happens: mismatched backends (merge
    never silently converts representations — callers pick a backend
    with :func:`~repro.store.coerce_store` first), non-store operands,
    or, at the :class:`~repro.core.lattice.LatticeSummary` level,
    summaries built at different lattice levels.
    """
