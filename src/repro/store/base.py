"""The summary-store protocol: pluggable count storage for the lattice.

The paper's §4.2 storage discussion settles on a hash table keyed by
canonical encodings.  :class:`SummaryStore` abstracts that choice so the
:class:`~repro.core.lattice.LatticeSummary` facade can sit on either of
two representations with identical semantics:

* :class:`~repro.store.dict_store.DictStore` — today's
  ``dict[Canon, int]``, insertion-ordered, the default;
* :class:`~repro.store.array_store.ArrayStore` — interned dense ids
  indexing an ``array``-backed count vector, compact and picklable.

Both backends answer ``get``/``__contains__``/``items`` identically —
bit-identical estimates are an acceptance gate, not an aspiration — and
``items()`` iterates in insertion order on both, which is what keeps
serial and parallel mining output comparable byte for byte.

Stores form a **commutative monoid** under :meth:`SummaryStore.merge`:
counts add, the empty store is the identity, and the operation is pure
(neither operand is touched).  Commutativity and associativity hold on
the count *mapping*; the result's insertion order is deterministic but
argument-sensitive — ``self``'s keys first in ``self``'s order, then
``other``'s new keys in ``other``'s order — which makes both
``merge(a, empty)`` and ``merge(empty, a)`` reproduce ``a`` byte for
byte.  Sharded mining, streaming deltas, and the ``repro merge`` CLI
are all built on this one operation.

Store internals (``_counts`` and friends) are private to this package;
the ``store-internals`` lint rule rejects direct access from anywhere
else in the tree.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Iterable, Iterator, Mapping, TypeVar

from ..trees.canonical import Canon
from .errors import MergeError

__all__ = ["SummaryStore"]

_S = TypeVar("_S", bound="SummaryStore")


class SummaryStore(ABC):
    """Abstract pattern-count storage keyed by canonical encodings.

    Implementations must preserve **insertion order** in :meth:`items`
    (mining feeds patterns in deterministic order and the parallel
    subsystem's bit-identity contract compares that order) and must
    treat ``get`` misses as ``None`` — zero-vs-unknown semantics live in
    the :class:`~repro.core.lattice.LatticeSummary` facade, not here.
    """

    #: Registry name of the backend (``"dict"`` / ``"array"``).
    backend: ClassVar[str] = ""

    @abstractmethod
    def add(self, key: Canon, count: int) -> None:
        """Insert or overwrite the count stored for ``key``."""

    @abstractmethod
    def get(self, key: Canon) -> int | None:
        """Stored count of ``key``, or ``None`` when absent."""

    @abstractmethod
    def __contains__(self, key: Canon) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def items(self) -> Iterator[tuple[Canon, int]]:
        """All ``(canon, count)`` pairs in insertion order."""

    @abstractmethod
    def byte_size(self) -> int:
        """Actual in-memory footprint of the backend, in bytes."""

    @abstractmethod
    def merge(self: _S, other: "SummaryStore") -> _S:
        """Pure monoid combine: a **new** store with counts added.

        Laws every backend upholds (property-tested in
        ``tests/test_store_merge.py``):

        * *commutative* and *associative* on the count mapping;
        * the empty store is the *identity* — ``a.merge(empty)`` and
          ``empty.merge(a)`` both reproduce ``a`` byte for byte
          (payloads included);
        * *pure* — neither operand is mutated (the ``store-merge-purity``
          lint rule machine-checks the implementations).

        Result order: ``self``'s keys in ``self``'s insertion order,
        then ``other``'s unseen keys in ``other``'s order.  Raises
        :class:`~repro.store.errors.MergeError` when the compatibility
        handshake fails (non-store operand or backend mismatch).
        """

    def _merge_handshake(self, other: "SummaryStore") -> None:
        """Shared compatibility check run before any merge work.

        Backends must match exactly: merging never converts
        representations behind the caller's back (use
        :func:`~repro.store.coerce_store` to pick one first), and a
        subclass with different storage parameters must override this
        to extend the handshake.
        """
        if not isinstance(other, SummaryStore):
            raise MergeError(
                f"cannot merge a summary store with {type(other).__name__!r}"
            )
        if other.backend != self.backend or type(other) is not type(self):
            raise MergeError(
                f"cannot merge {self.backend!r} store with "
                f"{other.backend!r} store; convert one side with "
                "coerce_store(...) first"
            )

    @classmethod
    def from_counts(
        cls: type[_S],
        counts: Mapping[Canon, int] | Iterable[tuple[Canon, int]],
    ) -> _S:
        """Build a store of this backend from ``(canon, count)`` pairs."""
        store = cls()
        pairs = counts.items() if isinstance(counts, Mapping) else counts
        for key, count in pairs:
            store.add(key, count)
        return store

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(patterns={len(self)}, "
            f"bytes={self.byte_size()})"
        )
