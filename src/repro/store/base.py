"""The summary-store protocol: pluggable count storage for the lattice.

The paper's §4.2 storage discussion settles on a hash table keyed by
canonical encodings.  :class:`SummaryStore` abstracts that choice so the
:class:`~repro.core.lattice.LatticeSummary` facade can sit on either of
two representations with identical semantics:

* :class:`~repro.store.dict_store.DictStore` — today's
  ``dict[Canon, int]``, insertion-ordered, the default;
* :class:`~repro.store.array_store.ArrayStore` — interned dense ids
  indexing an ``array``-backed count vector, compact and picklable.

Both backends answer ``get``/``__contains__``/``items`` identically —
bit-identical estimates are an acceptance gate, not an aspiration — and
``items()`` iterates in insertion order on both, which is what keeps
serial and parallel mining output comparable byte for byte.

Store internals (``_counts`` and friends) are private to this package;
the ``store-internals`` lint rule rejects direct access from anywhere
else in the tree.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Iterable, Iterator, Mapping, TypeVar

from ..trees.canonical import Canon

__all__ = ["SummaryStore"]

_S = TypeVar("_S", bound="SummaryStore")


class SummaryStore(ABC):
    """Abstract pattern-count storage keyed by canonical encodings.

    Implementations must preserve **insertion order** in :meth:`items`
    (mining feeds patterns in deterministic order and the parallel
    subsystem's bit-identity contract compares that order) and must
    treat ``get`` misses as ``None`` — zero-vs-unknown semantics live in
    the :class:`~repro.core.lattice.LatticeSummary` facade, not here.
    """

    #: Registry name of the backend (``"dict"`` / ``"array"``).
    backend: ClassVar[str] = ""

    @abstractmethod
    def add(self, key: Canon, count: int) -> None:
        """Insert or overwrite the count stored for ``key``."""

    @abstractmethod
    def get(self, key: Canon) -> int | None:
        """Stored count of ``key``, or ``None`` when absent."""

    @abstractmethod
    def __contains__(self, key: Canon) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def items(self) -> Iterator[tuple[Canon, int]]:
        """All ``(canon, count)`` pairs in insertion order."""

    @abstractmethod
    def byte_size(self) -> int:
        """Actual in-memory footprint of the backend, in bytes."""

    @classmethod
    def from_counts(
        cls: type[_S],
        counts: Mapping[Canon, int] | Iterable[tuple[Canon, int]],
    ) -> _S:
        """Build a store of this backend from ``(canon, count)`` pairs."""
        store = cls()
        pairs = counts.items() if isinstance(counts, Mapping) else counts
        for key, count in pairs:
            store.add(key, count)
        return store

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(patterns={len(self)}, "
            f"bytes={self.byte_size()})"
        )
