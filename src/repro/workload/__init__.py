"""Workload generation and estimator evaluation metrics."""

from .generator import QueryWorkload, negative_workload, positive_workloads
from .templates import (
    DATASET_TEMPLATES,
    dataset_queries,
    load_workload_file,
    save_workload_file,
)
from .metrics import (
    EstimatorEvaluation,
    absolute_relative_error,
    error_cdf,
    evaluate_estimator,
    sanity_bound,
)

__all__ = [
    "QueryWorkload",
    "negative_workload",
    "positive_workloads",
    "EstimatorEvaluation",
    "absolute_relative_error",
    "error_cdf",
    "evaluate_estimator",
    "sanity_bound",
    "DATASET_TEMPLATES",
    "dataset_queries",
    "load_workload_file",
    "save_workload_file",
]
