"""Named query templates for the stand-in corpora.

The generated workloads of :mod:`repro.workload.generator` sample
patterns mechanically; demos, docs and smoke tests want *recognisable*
queries instead ("people with an address and a credit card").  This
module carries a curated template set per dataset — the kind of
workload file a benchmark suite ships — plus a tiny text format so users
can keep their own workloads next to their documents:

    # one query per line; '#' comments; blank lines ignored
    /site/people/person[name][emailaddress]
    person[address/city][creditcard]

Templates are plain XPath-subset strings; :func:`load_templates`
resolves them to :class:`~repro.trees.twig.TwigQuery` objects.
"""

from __future__ import annotations

from pathlib import Path

from ..trees.twig import TwigQuery

__all__ = [
    "DATASET_TEMPLATES",
    "dataset_queries",
    "load_workload_file",
    "save_workload_file",
]

#: Curated twig templates per stand-in corpus (XPath subset).
DATASET_TEMPLATES: dict[str, list[str]] = {
    "nasa": [
        "/datasets/dataset/title",
        "dataset[title][author/lastName]",
        "dataset[author[lastName][firstName]]",
        "dataset[date/year][identifier]",
        "dataset[journal/author/lastName]",
        "dataset[tableHead/tableLink/url]",
        "dataset[history/revision][descriptions]",
        "datasets/dataset[keywords/keyword][abstract]",
    ],
    "imdb": [
        "/imdb/movie/title",
        "movie[title][year][director/name]",
        "movie[cast/actor[name][role]]",
        "movie[director][boxoffice][genre]",
        "movie[seasons/season/episode/title]",
        "movie[creator][network]",
        "movie[title][writer][rating]",
        "imdb/movie[cast/star][runtime]",
    ],
    "psd": [
        "/ProteinDatabase/ProteinEntry/header",
        "ProteinEntry[protein/name][organism/source]",
        "ProteinEntry[reference/refinfo/authors/author]",
        "ProteinEntry[feature/site[site-type][seq-spec]]",
        "ProteinEntry[classification/superfamily][genetics]",
        "ProteinEntry[summary[length][type]][sequence]",
        "reference[refinfo[citation][year]][accinfo]",
    ],
    "xmark": [
        "/site/people/person/name",
        "person[name][emailaddress][address/city]",
        "person[profile/interest][creditcard]",
        "open_auction[bidder[date][increase]][seller]",
        "open_auction[annotation/description/parlist/listitem]",
        "item[name][incategory][mailbox/mail/from]",
        "closed_auction[buyer][price][annotation]",
        "site/open_auctions/open_auction[interval[start][end]]",
    ],
    "treebank": [
        "/corpus/S/NP",
        "S[NP/DT][VP/VB]",
        "NP[DT][JJ][NN]",
        "VP[VB][NP[DT][NN]]",
        "S[NP][VP/VP/PP]",
        "SBAR[IN][S/VP]",
        "PP[IN][NP/NN]",
    ],
}


def dataset_queries(name: str) -> list[TwigQuery]:
    """The curated template queries of one dataset, parsed."""
    try:
        templates = DATASET_TEMPLATES[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_TEMPLATES))
        raise ValueError(f"no templates for dataset {name!r}; known: {known}")
    return [TwigQuery.parse(text) for text in templates]


def load_workload_file(path: str | Path) -> list[TwigQuery]:
    """Parse a workload file: one twig per line, ``#`` comments."""
    queries: list[TwigQuery] = []
    for line_number, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        try:
            queries.append(TwigQuery.parse(text))
        except Exception as exc:
            raise ValueError(f"{path}:{line_number}: {exc}") from exc
    return queries


def save_workload_file(
    queries: list[TwigQuery], path: str | Path, *, header: str | None = None
) -> None:
    """Write queries in the workload file format (canonical codec)."""
    from ..trees.canonical import encode_tree

    lines: list[str] = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.extend(encode_tree(query.tree) for query in queries)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
