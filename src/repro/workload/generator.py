"""Query workload generation (paper §5.1).

Positive workloads: enumerate the occurring subtree patterns of the
document level by level (the same lattice enumeration the summary uses),
sampling a level when it grows too large, then draw a fixed number of
queries per level.  Because the patterns come out of the miner their
true selectivities are known for free.

Negative workloads: perturb positive queries by replacing node labels at
random "in accordance with their frequency of occurrence" — frequent
labels are chosen as replacements more often, maximising the chance of a
plausible-looking but non-occurring twig — then keep only the queries
whose exact selectivity is zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..mining.freqt import mine_lattice
from ..trees.canonical import Canon, canon, canon_to_tree
from ..trees.labeled_tree import LabeledTree
from ..trees.matching import DocumentIndex, count_matches
from ..trees.twig import TwigQuery

__all__ = ["QueryWorkload", "positive_workloads", "negative_workload"]


@dataclass
class QueryWorkload:
    """A bag of twig queries of one size with their true selectivities."""

    size: int
    queries: list[TwigQuery]
    true_counts: list[int]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[tuple[TwigQuery, int]]:
        return iter(zip(self.queries, self.true_counts))

    def non_zero(self) -> int:
        """Number of queries with positive true selectivity."""
        return sum(1 for c in self.true_counts if c > 0)


def positive_workloads(
    document: LabeledTree | DocumentIndex,
    sizes: list[int] | range,
    per_level: int = 50,
    *,
    seed: int = 0,
    extend_cap: int = 2000,
) -> dict[int, QueryWorkload]:
    """Positive (non-zero selectivity) workloads, one per requested size.

    Parameters
    ----------
    document:
        The data tree the queries will run against.
    sizes:
        Query sizes (node counts) to generate, e.g. ``range(4, 9)`` for
        the paper's 4..8.
    per_level:
        Queries sampled per size (fewer if fewer patterns occur).
    extend_cap:
        Mining cap per level (paper: "we sample the patterns at a given
        level" when enumeration blows up).
    """
    sizes = sorted(set(sizes))
    if not sizes:
        raise ValueError("no query sizes requested")
    if sizes[0] < 1:
        raise ValueError("query sizes must be positive")
    index = document if isinstance(document, DocumentIndex) else DocumentIndex(document)
    mined = mine_lattice(index, sizes[-1], extend_cap=extend_cap, seed=seed)
    rng = random.Random(seed)
    workloads: dict[int, QueryWorkload] = {}
    for size in sizes:
        patterns = sorted(mined.patterns(size).items())
        if len(patterns) > per_level:
            patterns = rng.sample(patterns, per_level)
        queries = [TwigQuery(canon_to_tree(c)) for c, _count in patterns]
        counts = [count for _c, count in patterns]
        workloads[size] = QueryWorkload(size=size, queries=queries, true_counts=counts)
    return workloads


def negative_workload(
    document: LabeledTree | DocumentIndex,
    positives: QueryWorkload,
    *,
    seed: int = 0,
    max_attempts_per_query: int = 12,
    target: int | None = None,
) -> QueryWorkload:
    """Zero-selectivity workload derived from a positive one.

    Each positive query gets its node labels randomly replaced, with
    replacement labels drawn proportionally to their document frequency
    (frequent labels are used "more often so there is a greater chance
    for erroneous predictions"); candidates whose exact selectivity is
    non-zero are filtered out.
    """
    index = document if isinstance(document, DocumentIndex) else DocumentIndex(document)
    rng = random.Random(seed)
    labels = sorted(index.nodes_by_label)
    weights = [index.label_count(label) for label in labels]
    if target is None:
        target = len(positives)

    negatives: list[TwigQuery] = []
    seen: set[Canon] = set()
    for query in positives.queries:
        if len(negatives) >= target:
            break
        for _attempt in range(max_attempts_per_query):
            mutated = _mutate_labels(query.tree, labels, weights, rng)
            key = canon(mutated)
            if key in seen:
                continue
            if count_matches(key, index) == 0:
                seen.add(key)
                negatives.append(TwigQuery(mutated))
                break
    return QueryWorkload(
        size=positives.size,
        queries=negatives,
        true_counts=[0] * len(negatives),
    )


def _mutate_labels(
    tree: LabeledTree,
    labels: list[str],
    weights: list[int],
    rng: random.Random,
) -> LabeledTree:
    """Replace 1..n/2 node labels with frequency-weighted random labels."""
    mutated = tree.copy()
    n_replacements = rng.randint(1, max(1, tree.size // 2))
    positions = rng.sample(range(tree.size), n_replacements)
    replacements = rng.choices(labels, weights=weights, k=n_replacements)
    for position, label in zip(positions, replacements):
        mutated.labels[position] = label
    return mutated
