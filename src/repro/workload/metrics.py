"""Error metrics and estimator evaluation (paper §5.1).

Accuracy is quantified by the *absolute relative error*

    error = |s - ŝ| / max(s, σ)

where the sanity bound ``σ`` avoids "artificially high percentages of
low count queries": following the paper (and TreeSketches' common
practice) it is the 10th percentile of the workload's true counts,
clamped from below to 10.

:func:`evaluate_estimator` runs one estimator over one workload and
collects both the per-query errors and per-query response times, which
feed the accuracy figures (7, 8, 10) and the response-time figure (9)
respectively.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from .. import obs
from ..core.estimator import SelectivityEstimator
from .generator import QueryWorkload

__all__ = [
    "sanity_bound",
    "absolute_relative_error",
    "error_cdf",
    "EstimatorEvaluation",
    "evaluate_estimator",
]


def sanity_bound(
    true_counts: list[int], percentile: float = 10.0, floor: int = 10
) -> float:
    """The paper's sanity bound: pct-percentile of true counts, min 10."""
    if not true_counts:
        return float(floor)
    ordered = sorted(true_counts)
    rank = max(0, min(len(ordered) - 1, math.ceil(percentile / 100 * len(ordered)) - 1))
    return float(max(floor, ordered[rank]))


def absolute_relative_error(true: float, estimate: float, sanity: float) -> float:
    """Absolute relative error in percent: ``|s - ŝ| / max(s, σ) * 100``."""
    denominator = max(true, sanity)
    if denominator <= 0:
        raise ValueError("sanity bound must be positive")
    return abs(true - estimate) / denominator * 100.0


def error_cdf(
    errors: list[float], thresholds: list[float] | None = None
) -> list[tuple[float, float]]:
    """Cumulative distribution of errors (Figure 8's series).

    Returns ``(threshold_pct, fraction_of_queries_with_error <= threshold)``
    pairs.  Default thresholds sweep 0.1%..10000% logarithmically.
    """
    if thresholds is None:
        thresholds = [0.1 * (10 ** (i / 4)) for i in range(21)]  # 0.1 .. 10^4
    if not errors:
        return [(t, 1.0) for t in thresholds]
    ordered = sorted(errors)
    out: list[tuple[float, float]] = []
    idx = 0
    for threshold in thresholds:
        while idx < len(ordered) and ordered[idx] <= threshold:
            idx += 1
        out.append((threshold, idx / len(ordered)))
    return out


@dataclass
class EstimatorEvaluation:
    """Accuracy and latency of one estimator on one workload."""

    estimator_name: str
    workload_size: int
    errors: list[float] = field(default_factory=list)
    estimates: list[float] = field(default_factory=list)
    response_seconds: list[float] = field(default_factory=list)
    sanity: float = 10.0
    #: Estimation statistics captured by the observability layer when
    #: ``evaluate_estimator(..., capture_metrics=True)`` ran; see
    #: :func:`repro.obs.summarize_estimation` for the keys.
    metrics: dict[str, float] | None = None

    @property
    def average_error(self) -> float:
        """Mean absolute relative error in percent."""
        if not self.errors:
            return 0.0
        return sum(self.errors) / len(self.errors)

    @property
    def median_error(self) -> float:
        if not self.errors:
            return 0.0
        ordered = sorted(self.errors)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    @property
    def average_response_ms(self) -> float:
        """Mean per-query estimation latency in milliseconds."""
        if not self.response_seconds:
            return 0.0
        return sum(self.response_seconds) / len(self.response_seconds) * 1000.0

    @property
    def exact_zero_rate(self) -> float:
        """Fraction of queries estimated as exactly 0 (negative workloads)."""
        if not self.estimates:
            return 0.0
        return sum(1 for e in self.estimates if e <= 0.0) / len(self.estimates)

    def cdf(self, thresholds: list[float] | None = None) -> list[tuple[float, float]]:
        return error_cdf(self.errors, thresholds)

    @property
    def lattice_hit_rate(self) -> float:
        """Fraction of summary lookups answered directly (captured runs)."""
        return self.metrics["lattice_hit_rate"] if self.metrics else 0.0

    @property
    def mean_recursion_depth(self) -> float:
        """Mean deepest decomposition level per query (captured runs)."""
        return self.metrics["mean_recursion_depth"] if self.metrics else 0.0


def evaluate_estimator(
    estimator: SelectivityEstimator,
    workload: QueryWorkload,
    *,
    sanity: float | None = None,
    capture_metrics: bool = False,
) -> EstimatorEvaluation:
    """Run ``estimator`` over ``workload``, recording errors and latency.

    With ``capture_metrics=True`` the run executes inside an
    observability capture window and the evaluation's :attr:`metrics`
    carries the distilled registry (hit rates, recursion depth, timers),
    letting benchmark reports explain latency differences rather than
    just stating them.  Note that instrumentation adds measurement
    overhead to ``response_seconds``; keep it off for pure latency runs.
    """
    if sanity is None:
        sanity = sanity_bound(workload.true_counts)
    evaluation = EstimatorEvaluation(
        estimator_name=estimator.name,
        workload_size=workload.size,
        sanity=sanity,
    )
    if capture_metrics:
        with obs.observed() as (registry, _):
            _run_workload(estimator, workload, evaluation, sanity)
        evaluation.metrics = obs.summarize_estimation(registry)
    else:
        _run_workload(estimator, workload, evaluation, sanity)
    return evaluation


def _run_workload(
    estimator: SelectivityEstimator,
    workload: QueryWorkload,
    evaluation: EstimatorEvaluation,
    sanity: float,
) -> None:
    for query, true_count in workload:
        start = time.perf_counter()
        estimate = estimator.estimate(query)
        elapsed = time.perf_counter() - start
        evaluation.estimates.append(estimate)
        evaluation.response_seconds.append(elapsed)
        evaluation.errors.append(
            absolute_relative_error(true_count, estimate, sanity)
        )
