"""Synthetic stand-ins for the paper's four evaluation corpora.

Each generator is deterministic in its seed and scalable via its record
count, so tests can use tiny documents and benchmarks medium ones.  See
DESIGN.md §4 for why these substitutions preserve the behaviour the
paper's experiments measure.
"""

from typing import Protocol

from ..trees.labeled_tree import LabeledTree
from .imdb import generate_imdb, imdb_schema
from .nasa import generate_nasa, nasa_schema
from .psd import generate_psd, psd_schema
from .treebank import generate_treebank, treebank_schema
from .synthetic import (
    ChildRule,
    DocumentGenerator,
    ElementSpec,
    Mode,
    Schema,
    fixed,
    geometric,
    optional,
    uniform_int,
    zipf_int,
)
from .xmark import generate_xmark, xmark_schema

__all__ = [
    "DATASET_GENERATORS",
    "generate_dataset",
    "generate_imdb",
    "generate_nasa",
    "generate_psd",
    "generate_xmark",
    "generate_treebank",
    "treebank_schema",
    "imdb_schema",
    "nasa_schema",
    "psd_schema",
    "xmark_schema",
    "ChildRule",
    "DocumentGenerator",
    "ElementSpec",
    "Mode",
    "Schema",
    "fixed",
    "geometric",
    "optional",
    "uniform_int",
    "zipf_int",
]

class _DatasetGenerator(Protocol):
    """Callable shape shared by every dataset generator."""

    def __call__(self, scale: int = ..., /, *, seed: int = 0) -> LabeledTree: ...


#: name -> generator(n_records_or_scale, seed) for the paper's datasets.
DATASET_GENERATORS: dict[str, _DatasetGenerator] = {
    "nasa": generate_nasa,
    "imdb": generate_imdb,
    "psd": generate_psd,
    "xmark": generate_xmark,
    # Extension corpus (not in the paper's Table 1): deep recursion.
    "treebank": generate_treebank,
}


def generate_dataset(name: str, scale: int | None = None, seed: int = 0) -> LabeledTree:
    """Generate one of the paper's datasets by name.

    ``scale`` is the dataset's record-count knob (its default when
    ``None``); ``seed`` fixes the pseudo-random structure.
    """
    try:
        generator = DATASET_GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_GENERATORS))
        raise ValueError(f"unknown dataset {name!r}; expected one of: {known}")
    if scale is None:
        return generator(seed=seed)
    return generator(scale, seed=seed)
