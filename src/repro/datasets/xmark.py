"""XMark-like dataset: the on-line auction site benchmark schema.

Stand-in for the paper's XMark corpus (565,505 elements, 10MB at scale
factor ~0.1).  XMark models an auction site: regional item listings,
registered people, open and closed auctions, and a category graph; its
signature structural feature is the *recursive* free-text markup
(``description → parlist → listitem → parlist → ...``) whose fan-out is
highly skewed.

That skew is why the paper's Figure 7(d)/8(d) show TreeSketches
over-estimating some XMark twigs by orders of magnitude: averaging the
child counts of bidders/listitems across very unequal auctions and then
multiplying the averages along a twig compounds the error (the Figure 11
mechanism).  The generator reproduces the skew with zipf/geometric
fan-outs and genuine recursion, capped by the engine's ``max_depth``.
"""

from __future__ import annotations

from ..trees.labeled_tree import LabeledTree
from .synthetic import (
    ChildRule,
    DocumentGenerator,
    ElementSpec,
    Mode,
    Schema,
    fixed,
    geometric,
    uniform_int,
    zipf_int,
)

__all__ = ["xmark_schema", "generate_xmark"]

DEFAULT_SCALE = 120  # items per region; people/auctions derive from it


def xmark_schema(scale: int = DEFAULT_SCALE) -> Schema:
    """The XMark-like auction schema; ``scale`` controls corpus size."""
    schema = Schema(root="site")
    schema.add(
        ElementSpec.simple(
            "site",
            [
                ChildRule.one("regions"),
                ChildRule.one("categories"),
                ChildRule.one("people"),
                ChildRule.one("open_auctions"),
                ChildRule.one("closed_auctions"),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "regions",
            [
                ChildRule.one("africa"),
                ChildRule.one("asia"),
                ChildRule.one("australia"),
                ChildRule.one("europe"),
                ChildRule.one("namerica"),
                ChildRule.one("samerica"),
            ],
        )
    )
    for region in ("africa", "asia", "australia", "europe", "namerica", "samerica"):
        schema.add(
            ElementSpec.simple(region, [ChildRule("item", geometric(scale / 6, cap=scale))])
        )
    schema.add(
        ElementSpec.simple(
            "item",
            [
                ChildRule.one("location"),
                ChildRule.one("quantity"),
                ChildRule.one("name"),
                ChildRule.one("payment"),
                ChildRule.one("description"),
                ChildRule.one("shipping"),
                ChildRule("incategory", uniform_int(1, 3)),
                ChildRule.maybe("mailbox", 0.4),
            ],
        )
    )
    # The recursive text markup: description is flat text or a parlist;
    # listitems recurse with decaying probability (weights) until the
    # generator's depth cap.
    schema.add(
        ElementSpec(
            "description",
            (
                Mode((ChildRule.one("text"),), weight=0.7),
                Mode((ChildRule.one("parlist"),), weight=0.3),
            ),
        )
    )
    schema.add(
        ElementSpec.simple("parlist", [ChildRule("listitem", zipf_int(4, 1.3))])
    )
    schema.add(
        ElementSpec(
            "listitem",
            (
                Mode((ChildRule.one("text"),), weight=0.65),
                Mode((ChildRule.one("parlist"),), weight=0.35),
            ),
        )
    )
    schema.add(
        ElementSpec.simple("mailbox", [ChildRule("mail", geometric(1.0, cap=4))])
    )
    schema.add(
        ElementSpec.simple(
            "mail",
            [
                ChildRule.one("from"),
                ChildRule.one("to"),
                ChildRule.one("date"),
                ChildRule.one("text"),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "categories", [ChildRule("category", fixed(max(4, scale // 5)))]
        )
    )
    schema.add(
        ElementSpec.simple(
            "category", [ChildRule.one("name"), ChildRule.one("description")]
        )
    )
    schema.add(
        ElementSpec.simple("people", [ChildRule("person", fixed(scale * 2))])
    )
    schema.add(
        ElementSpec.simple(
            "person",
            [
                ChildRule.one("name"),
                ChildRule.one("emailaddress"),
                ChildRule.maybe("phone", 0.5),
                ChildRule.maybe("address", 0.6),
                ChildRule.maybe("homepage", 0.3),
                ChildRule.maybe("creditcard", 0.5),
                ChildRule.maybe("profile", 0.7),
                ChildRule.maybe("watches", 0.4),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "address",
            [
                ChildRule.one("street"),
                ChildRule.one("city"),
                ChildRule.one("country"),
                ChildRule.one("zipcode"),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "profile",
            [
                ChildRule("interest", geometric(1.0, cap=4)),
                ChildRule.maybe("education", 0.5),
                ChildRule.maybe("gender", 0.7),
                ChildRule.one("business"),
                ChildRule.maybe("age", 0.6),
            ],
        )
    )
    schema.add(
        ElementSpec.simple("watches", [ChildRule("watch", geometric(1.0, cap=4))])
    )
    schema.add(
        ElementSpec.simple(
            "open_auctions", [ChildRule("open_auction", fixed(scale))]
        )
    )
    schema.add(
        ElementSpec.simple(
            "open_auction",
            [
                ChildRule.one("initial"),
                ChildRule.maybe("reserve", 0.5),
                # Heavy-tailed bidder counts: the averaging failure mode.
                ChildRule("bidder", zipf_int(10, 1.1)),
                ChildRule.one("current"),
                ChildRule.maybe("privacy", 0.3),
                ChildRule.one("itemref"),
                ChildRule.one("seller"),
                ChildRule.one("annotation"),
                ChildRule.one("quantity"),
                ChildRule.one("type"),
                ChildRule.one("interval"),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "bidder",
            [
                ChildRule.one("date"),
                ChildRule.one("time"),
                ChildRule.one("personref"),
                ChildRule.one("increase"),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "interval", [ChildRule.one("start"), ChildRule.one("end")]
        )
    )
    schema.add(
        ElementSpec.simple(
            "annotation",
            [
                ChildRule.one("author"),
                ChildRule.one("description"),
                ChildRule.maybe("happiness", 0.8),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "closed_auctions",
            [ChildRule("closed_auction", fixed(max(2, scale * 2 // 3)))],
        )
    )
    schema.add(
        ElementSpec.simple(
            "closed_auction",
            [
                ChildRule.one("seller"),
                ChildRule.one("buyer"),
                ChildRule.one("itemref"),
                ChildRule.one("price"),
                ChildRule.one("date"),
                ChildRule.one("quantity"),
                ChildRule.one("type"),
                ChildRule.one("annotation"),
            ],
        )
    )
    return schema


def generate_xmark(
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    *,
    max_nodes: int = 1_000_000,
    max_depth: int = 16,
) -> LabeledTree:
    """Generate an XMark-like document (deterministic in ``seed``)."""
    generator = DocumentGenerator(
        xmark_schema(scale), max_nodes=max_nodes, max_depth=max_depth
    )
    return generator.generate(seed)
