"""NASA-like dataset: astronomical metadata records.

Stand-in for the paper's NASA corpus (476,646 elements, 23MB): flat-file
astronomy records converted to XML.  Structurally the corpus is a long
sequence of ``dataset`` records with moderately rich but weakly
correlated substructure — which is why the paper found conditional
independence to hold well and 0-derivable pruning to remove most of its
4-lattice.  The schema below mirrors the real nasa.xml element
vocabulary (datasets/dataset/title/author/tableHead/...) with
single-mode specs throughout, so sibling structure is near-independent.
"""

from __future__ import annotations

from ..trees.labeled_tree import LabeledTree
from .synthetic import (
    ChildRule,
    DocumentGenerator,
    ElementSpec,
    Schema,
    fixed,
    geometric,
    uniform_int,
)

__all__ = ["nasa_schema", "generate_nasa"]

#: Default number of top-level records (scaled down from the real corpus
#: to keep pure-Python experiments tractable; see DESIGN.md §4).
DEFAULT_RECORDS = 700


def nasa_schema(n_records: int = DEFAULT_RECORDS) -> Schema:
    """The NASA-like schema with ``n_records`` dataset records."""
    schema = Schema(root="datasets")
    schema.add(
        ElementSpec.simple("datasets", [ChildRule("dataset", fixed(n_records))])
    )
    schema.add(
        ElementSpec.simple(
            "dataset",
            [
                ChildRule.one("title"),
                ChildRule("altname", geometric(0.5, cap=3)),
                ChildRule.maybe("abstract", 0.7),
                ChildRule.maybe("keywords", 0.6),
                ChildRule("author", uniform_int(1, 4)),
                ChildRule.one("date"),
                ChildRule.one("identifier"),
                ChildRule.maybe("tableHead", 0.5),
                ChildRule.maybe("history", 0.4),
                ChildRule.maybe("descriptions", 0.5),
                ChildRule.maybe("journal", 0.6),
            ],
        )
    )
    schema.add(
        ElementSpec.simple("keywords", [ChildRule("keyword", uniform_int(1, 6))])
    )
    schema.add(
        ElementSpec.simple(
            "author",
            [
                ChildRule.one("lastName"),
                ChildRule.maybe("firstName", 0.8),
                ChildRule.maybe("affiliation", 0.3),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "date",
            [ChildRule.one("year"), ChildRule.one("month"), ChildRule.one("day")],
        )
    )
    schema.add(
        ElementSpec.simple(
            "tableHead", [ChildRule("tableLink", uniform_int(1, 3))]
        )
    )
    schema.add(
        ElementSpec.simple(
            "tableLink", [ChildRule.maybe("title", 0.6), ChildRule.one("url")]
        )
    )
    schema.add(
        ElementSpec.simple(
            "history",
            [ChildRule.one("creationDate"), ChildRule("revision", geometric(0.8, cap=4))],
        )
    )
    schema.add(
        ElementSpec.simple(
            "revision", [ChildRule.one("date"), ChildRule.maybe("comment", 0.5)]
        )
    )
    schema.add(
        ElementSpec.simple(
            "descriptions", [ChildRule("description", uniform_int(1, 2))]
        )
    )
    schema.add(
        ElementSpec.simple("description", [ChildRule("para", uniform_int(1, 4))])
    )
    schema.add(
        ElementSpec.simple(
            "journal",
            [
                ChildRule.one("title"),
                ChildRule("author", uniform_int(1, 3)),
                ChildRule.one("name"),
                ChildRule.maybe("volume", 0.8),
                ChildRule.maybe("pages", 0.8),
            ],
        )
    )
    return schema


def generate_nasa(
    n_records: int = DEFAULT_RECORDS, seed: int = 0, *, max_nodes: int = 1_000_000
) -> LabeledTree:
    """Generate a NASA-like document (deterministic in ``seed``)."""
    generator = DocumentGenerator(nasa_schema(n_records), max_nodes=max_nodes)
    return generator.generate(seed)
