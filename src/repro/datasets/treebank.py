"""Treebank-like dataset: deeply recursive parse trees (extension).

Treebank (Penn Treebank encoded as XML) is the classic stress corpus for
XML structural summaries: unlike record-style data, its structure is a
*grammar* — parse trees with deep, irregular recursion and a modest but
densely-interconnected label vocabulary.  Every synopsis paper after the
one reproduced here used it to expose summaries that rely on regular
records, so we ship a stand-in for the extension benchmarks
(``bench_ablation_deep_recursion``).

The generator expands a probabilistic context-free grammar over the
familiar syntactic categories (S, NP, VP, PP, SBAR, ...) using the
schema engine's weighted modes for productions; depth is bounded by the
engine's cap, mimicking the natural attenuation of real parse trees.
"""

from __future__ import annotations

from ..trees.labeled_tree import LabeledTree
from .synthetic import (
    ChildRule,
    DocumentGenerator,
    ElementSpec,
    Mode,
    Schema,
    fixed,
    uniform_int,
)

__all__ = ["treebank_schema", "generate_treebank"]

DEFAULT_SENTENCES = 900


def treebank_schema(n_sentences: int = DEFAULT_SENTENCES) -> Schema:
    """A PCFG-flavoured schema producing Treebank-like parse trees."""
    schema = Schema(root="corpus")
    schema.add(
        ElementSpec.simple("corpus", [ChildRule("S", fixed(n_sentences))])
    )
    # Sentences: plain clause, coordination (S CC S), or clause + SBAR.
    schema.add(
        ElementSpec(
            "S",
            (
                Mode((ChildRule.one("NP"), ChildRule.one("VP")), weight=0.62),
                Mode(
                    (ChildRule.one("S"), ChildRule.one("CC"), ChildRule.one("S")),
                    weight=0.14,
                ),
                Mode(
                    (ChildRule.one("NP"), ChildRule.one("VP"), ChildRule.one("SBAR")),
                    weight=0.14,
                ),
                Mode((ChildRule.one("VP"),), weight=0.10),  # imperative
            ),
        )
    )
    schema.add(
        ElementSpec(
            "NP",
            (
                Mode((ChildRule.one("DT"), ChildRule.one("NN")), weight=0.38),
                Mode(
                    (ChildRule.one("DT"), ChildRule("JJ", uniform_int(1, 2)),
                     ChildRule.one("NN")),
                    weight=0.22,
                ),
                Mode((ChildRule.one("NP"), ChildRule.one("PP")), weight=0.20),
                Mode((ChildRule.one("NNP"),), weight=0.12),
                Mode((ChildRule.one("PRP"),), weight=0.08),
            ),
        )
    )
    schema.add(
        ElementSpec(
            "VP",
            (
                Mode((ChildRule.one("VB"), ChildRule.one("NP")), weight=0.40),
                Mode((ChildRule.one("VB"),), weight=0.18),
                Mode((ChildRule.one("VP"), ChildRule.one("PP")), weight=0.18),
                Mode(
                    (ChildRule.one("VB"), ChildRule.one("NP"), ChildRule.one("PP")),
                    weight=0.14,
                ),
                Mode((ChildRule.one("MD"), ChildRule.one("VP")), weight=0.10),
            ),
        )
    )
    schema.add(
        ElementSpec.simple("PP", [ChildRule.one("IN"), ChildRule.one("NP")])
    )
    schema.add(
        ElementSpec(
            "SBAR",
            (
                Mode((ChildRule.one("IN"), ChildRule.one("S")), weight=0.7),
                Mode((ChildRule.one("WHNP"), ChildRule.one("S")), weight=0.3),
            ),
        )
    )
    schema.add(ElementSpec.simple("WHNP", [ChildRule.one("WP")]))
    return schema


def generate_treebank(
    n_sentences: int = DEFAULT_SENTENCES,
    seed: int = 0,
    *,
    max_nodes: int = 1_000_000,
    max_depth: int = 30,
) -> LabeledTree:
    """Generate a Treebank-like corpus (deterministic in ``seed``)."""
    generator = DocumentGenerator(
        treebank_schema(n_sentences), max_nodes=max_nodes, max_depth=max_depth
    )
    return generator.generate(seed)
