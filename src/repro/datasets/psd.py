"""PSD-like dataset: annotated protein sequence entries.

Stand-in for the paper's Protein Sequence Database sample (242,014
elements, 4.5MB): a regular record corpus with nested reference and
feature substructure.  The paper found PSD broadly independence-friendly
(large 0-derivable savings) while still tripping the fix-sized estimator
at query sizes above 6 — the depth of its ``reference``/``refinfo``
nesting makes large twigs span several covering blocks.  The schema
mirrors the real ``ProteinEntry`` vocabulary with single-mode specs and
one mild mode split inside ``feature``.
"""

from __future__ import annotations

from ..trees.labeled_tree import LabeledTree
from .synthetic import (
    ChildRule,
    DocumentGenerator,
    ElementSpec,
    Mode,
    Schema,
    fixed,
    geometric,
    uniform_int,
)

__all__ = ["psd_schema", "generate_psd"]

DEFAULT_RECORDS = 550


def psd_schema(n_records: int = DEFAULT_RECORDS) -> Schema:
    """The PSD-like schema with ``n_records`` protein entries."""
    schema = Schema(root="ProteinDatabase")
    schema.add(
        ElementSpec.simple(
            "ProteinDatabase", [ChildRule("ProteinEntry", fixed(n_records))]
        )
    )
    schema.add(
        ElementSpec.simple(
            "ProteinEntry",
            [
                ChildRule.one("header"),
                ChildRule.one("protein"),
                ChildRule.one("organism"),
                ChildRule("reference", uniform_int(1, 3)),
                ChildRule.maybe("genetics", 0.4),
                ChildRule.maybe("classification", 0.6),
                ChildRule.maybe("feature", 0.5),
                ChildRule.one("summary"),
                ChildRule.one("sequence"),
            ],
        )
    )
    schema.add(
        ElementSpec.simple(
            "header",
            [ChildRule.one("uid"), ChildRule.one("accession"), ChildRule.maybe("created_date", 0.9)],
        )
    )
    schema.add(
        ElementSpec.simple(
            "protein",
            [ChildRule.one("name"), ChildRule.maybe("classname", 0.5)],
        )
    )
    schema.add(
        ElementSpec.simple(
            "organism",
            [ChildRule.one("source"), ChildRule.maybe("common", 0.6), ChildRule.maybe("formal", 0.8)],
        )
    )
    schema.add(
        ElementSpec.simple(
            "reference",
            [ChildRule.one("refinfo"), ChildRule.maybe("accinfo", 0.7)],
        )
    )
    schema.add(
        ElementSpec.simple(
            "refinfo",
            [
                ChildRule.one("authors"),
                ChildRule.one("citation"),
                ChildRule.one("year"),
                ChildRule.maybe("title", 0.9),
            ],
        )
    )
    schema.add(
        ElementSpec.simple("authors", [ChildRule("author", uniform_int(1, 5))])
    )
    schema.add(
        ElementSpec.simple(
            "accinfo",
            [ChildRule.one("accession"), ChildRule.maybe("mol-type", 0.5)],
        )
    )
    schema.add(
        ElementSpec.simple(
            "genetics", [ChildRule.one("gene"), ChildRule.maybe("gene-map", 0.4)]
        )
    )
    schema.add(
        ElementSpec.simple(
            "classification", [ChildRule.one("superfamily")]
        )
    )
    site_rich = Mode(
        (ChildRule("site", uniform_int(1, 3)), ChildRule.maybe("region", 0.5)),
        weight=0.6,
    )
    region_only = Mode((ChildRule("region", uniform_int(1, 2)),), weight=0.4)
    schema.add(ElementSpec("feature", (site_rich, region_only)))
    schema.add(
        ElementSpec.simple(
            "site", [ChildRule.one("site-type"), ChildRule.one("seq-spec")]
        )
    )
    schema.add(
        ElementSpec.simple(
            "region", [ChildRule.one("region-name"), ChildRule.maybe("seq-spec", 0.8)]
        )
    )
    schema.add(
        ElementSpec.simple(
            "summary", [ChildRule.one("length"), ChildRule.one("type")]
        )
    )
    schema.add(
        ElementSpec.simple(
            "sequence", [ChildRule("seq-block", geometric(1.2, cap=5))]
        )
    )
    return schema


def generate_psd(
    n_records: int = DEFAULT_RECORDS, seed: int = 0, *, max_nodes: int = 1_000_000
) -> LabeledTree:
    """Generate a PSD-like document (deterministic in ``seed``)."""
    generator = DocumentGenerator(psd_schema(n_records), max_nodes=max_nodes)
    return generator.generate(seed)
