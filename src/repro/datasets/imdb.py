"""IMDB-like dataset: movie records with strongly correlated structure.

Stand-in for the paper's IMDB corpus (155,898 elements, 7MB).  The paper
observed that on IMDB (a) TreeSketches was *competitive or better* than
plain TreeLattice, (b) 0-derivable pruning saved little space, and
(c) the pattern count exploded with level (Table 2: 9,839 size-4 and
97,780 size-5 patterns) — all symptoms of a corpus whose sibling
structure is heavily *correlated*, violating the conditional
independence assumption.

This schema manufactures that correlation deliberately: every ``movie``
draws one of three **modes** (feature film / tv series / documentary),
and each mode brings its own child bundle.  ``director`` co-occurs with
``cast`` and ``boxoffice`` but never with ``seasons``; independence-based
decomposition therefore misestimates twigs that straddle mode
boundaries.  Secondary modes inside ``cast`` and ``person`` raise the
level-4/5 pattern diversity.
"""

from __future__ import annotations

from ..trees.labeled_tree import LabeledTree
from .synthetic import (
    ChildRule,
    DocumentGenerator,
    ElementSpec,
    Mode,
    Schema,
    fixed,
    geometric,
    uniform_int,
    zipf_int,
)

__all__ = ["imdb_schema", "generate_imdb"]

DEFAULT_RECORDS = 900


def imdb_schema(n_records: int = DEFAULT_RECORDS) -> Schema:
    """The IMDB-like schema with ``n_records`` movie records."""
    schema = Schema(root="imdb")
    schema.add(ElementSpec.simple("imdb", [ChildRule("movie", fixed(n_records))]))

    # Movie records are *wide*: like the real IMDB, every record carries
    # a different subset of many optional fields.  The combinatorics of
    # those sibling subsets is what makes IMDB's level-4/5 pattern counts
    # explode in the paper's Table 2.
    feature = Mode(
        (
            ChildRule.one("title"),
            ChildRule.one("year"),
            ChildRule.one("director"),
            ChildRule.one("cast"),
            ChildRule.maybe("boxoffice", 0.5),
            ChildRule("genre", uniform_int(1, 3)),
            ChildRule.maybe("runtime", 0.5),
            ChildRule.maybe("country", 0.5),
            ChildRule.maybe("language", 0.5),
            ChildRule.maybe("rating", 0.5),
            ChildRule.maybe("awards", 0.3),
            ChildRule("writer", geometric(0.7, cap=3)),
            ChildRule.maybe("tagline", 0.4),
            ChildRule.maybe("studio", 0.5),
            ChildRule.maybe("certificate", 0.4),
            ChildRule.maybe("trivia", 0.3),
            ChildRule.maybe("producer", 0.4),
            ChildRule.maybe("cinematographer", 0.3),
            ChildRule.maybe("soundtrack", 0.3),
        ),
        weight=0.5,
    )
    tv_series = Mode(
        (
            ChildRule.one("title"),
            ChildRule.one("year"),
            ChildRule.one("creator"),
            ChildRule.one("seasons"),
            ChildRule("genre", uniform_int(1, 2)),
            ChildRule.maybe("network", 0.6),
            ChildRule.maybe("channel", 0.5),
            ChildRule.maybe("status", 0.5),
            ChildRule.maybe("country", 0.5),
            ChildRule.maybe("language", 0.4),
            ChildRule.maybe("rating", 0.4),
            ChildRule("writer", geometric(0.5, cap=2)),
        ),
        weight=0.3,
    )
    documentary = Mode(
        (
            ChildRule.one("title"),
            ChildRule.one("year"),
            ChildRule.one("director"),
            ChildRule.maybe("narrator", 0.7),
            ChildRule("subject", uniform_int(1, 2)),
            ChildRule.maybe("country", 0.5),
            ChildRule.maybe("festival", 0.4),
            ChildRule.maybe("runtime", 0.5),
            ChildRule.maybe("awards", 0.3),
        ),
        weight=0.2,
    )
    schema.add(ElementSpec("movie", (feature, tv_series, documentary)))

    schema.add(ElementSpec.simple("director", [ChildRule.one("name")]))
    schema.add(ElementSpec.simple("creator", [ChildRule.one("name")]))
    schema.add(ElementSpec.simple("narrator", [ChildRule.one("name")]))

    ensemble = Mode((ChildRule("actor", uniform_int(4, 9)),), weight=0.6)
    star_vehicle = Mode(
        (ChildRule("star", fixed(1)), ChildRule("actor", uniform_int(1, 3))),
        weight=0.4,
    )
    schema.add(ElementSpec("cast", (ensemble, star_vehicle)))

    credited = Mode((ChildRule.one("name"), ChildRule.one("role")), weight=0.7)
    uncredited = Mode((ChildRule.one("name"),), weight=0.3)
    schema.add(ElementSpec("actor", (credited, uncredited)))
    schema.add(
        ElementSpec.simple("star", [ChildRule.one("name"), ChildRule.one("role")])
    )

    schema.add(
        ElementSpec.simple("seasons", [ChildRule("season", zipf_int(6, 1.2))])
    )
    schema.add(
        ElementSpec.simple("season", [ChildRule("episode", geometric(4.0, cap=12))])
    )
    schema.add(
        ElementSpec.simple(
            "episode", [ChildRule.one("title"), ChildRule.maybe("airdate", 0.8)]
        )
    )
    return schema


def generate_imdb(
    n_records: int = DEFAULT_RECORDS, seed: int = 0, *, max_nodes: int = 1_000_000
) -> LabeledTree:
    """Generate an IMDB-like document (deterministic in ``seed``)."""
    generator = DocumentGenerator(imdb_schema(n_records), max_nodes=max_nodes)
    return generator.generate(seed)
