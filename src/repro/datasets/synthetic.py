"""Probabilistic schema engine for synthetic XML documents.

The paper evaluates on four XML corpora (NASA, IMDB, PSD, XMark) that we
cannot ship; the stand-ins in :mod:`repro.datasets` are generated from
small probabilistic schemas built with this engine (see DESIGN.md §4 for
the substitution argument).

A schema maps each element label to an :class:`ElementSpec` holding one
or more weighted **modes**; instantiating an element first draws a mode,
then draws every child rule of that mode independently.  Modes are the
correlation knob: children that belong to the same mode co-occur far
more often than independence predicts, which is exactly the structure
that makes conditional-independence estimators err (the IMDB-like
dataset leans on this; the others use single-mode specs).

Child multiplicities are drawn from pluggable integer distributions
(:func:`fixed`, :func:`uniform_int`, :func:`geometric`, :func:`zipf_int`)
so a schema can express anything from rigid records to heavy-tailed
fan-out.  Recursive schemas (XMark's ``parlist``/``listitem``) are
supported; the generator enforces a depth cap and a node budget so
generation always terminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..trees.labeled_tree import LabeledTree

__all__ = [
    "ChildRule",
    "Mode",
    "ElementSpec",
    "Schema",
    "DocumentGenerator",
    "fixed",
    "uniform_int",
    "geometric",
    "zipf_int",
    "optional",
]

#: An integer distribution: maps a seeded RNG to a child count.
CountDistribution = Callable[[random.Random], int]


def fixed(n: int) -> CountDistribution:
    """Always exactly ``n`` children."""

    def draw(_rng: random.Random) -> int:
        return n

    return draw


def uniform_int(low: int, high: int) -> CountDistribution:
    """Uniformly ``low..high`` children (inclusive)."""
    if low > high:
        raise ValueError("uniform_int needs low <= high")

    def draw(rng: random.Random) -> int:
        return rng.randint(low, high)

    return draw


def geometric(mean: float, cap: int = 50) -> CountDistribution:
    """Geometric count with the given mean, truncated at ``cap``.

    Produces the skewed fan-outs (many small, few huge) that defeat
    average-based synopses.
    """
    if mean <= 0:
        raise ValueError("geometric needs a positive mean")
    p = 1.0 / (1.0 + mean)

    def draw(rng: random.Random) -> int:
        count = 0
        while count < cap and rng.random() > p:
            count += 1
        return count

    return draw


def zipf_int(max_value: int, exponent: float = 1.5) -> CountDistribution:
    """Zipf-distributed count on ``1..max_value``: heavy-tailed fan-out."""
    if max_value < 1:
        raise ValueError("zipf_int needs max_value >= 1")
    weights = [1.0 / (rank**exponent) for rank in range(1, max_value + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def draw(rng: random.Random) -> int:
        u = rng.random()
        for value, threshold in enumerate(cumulative, start=1):
            if u <= threshold:
                return value
        return max_value

    return draw


def optional(probability: float) -> CountDistribution:
    """Zero or one child, present with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def draw(rng: random.Random) -> int:
        return 1 if rng.random() < probability else 0

    return draw


@dataclass(frozen=True)
class ChildRule:
    """How many children with a given label an element mode produces."""

    label: str
    count: CountDistribution

    @classmethod
    def one(cls, label: str) -> "ChildRule":
        return cls(label, fixed(1))

    @classmethod
    def maybe(cls, label: str, probability: float) -> "ChildRule":
        return cls(label, optional(probability))


@dataclass(frozen=True)
class Mode:
    """A weighted bundle of child rules drawn together (correlation unit)."""

    rules: tuple[ChildRule, ...]
    weight: float = 1.0


@dataclass
class ElementSpec:
    """Generation spec of one element label."""

    label: str
    modes: tuple[Mode, ...]

    @classmethod
    def simple(cls, label: str, rules: Sequence[ChildRule]) -> "ElementSpec":
        """Single-mode spec: children drawn independently (no correlation)."""
        return cls(label, (Mode(tuple(rules)),))

    @classmethod
    def leaf(cls, label: str) -> "ElementSpec":
        return cls(label, (Mode(()),))


@dataclass
class Schema:
    """A complete document schema: root label plus element specs."""

    root: str
    elements: dict[str, ElementSpec] = field(default_factory=dict)

    def add(self, spec: ElementSpec) -> "Schema":
        self.elements[spec.label] = spec
        return self

    def spec(self, label: str) -> ElementSpec:
        """Spec for ``label``; unknown labels are implicit leaves."""
        got = self.elements.get(label)
        if got is None:
            got = ElementSpec.leaf(label)
            self.elements[label] = got
        return got

    def validate(self) -> None:
        """Check that every referenced label resolves and weights are sane."""
        for spec in list(self.elements.values()):
            total = sum(mode.weight for mode in spec.modes)
            if total <= 0:
                raise ValueError(f"element {spec.label!r} has no usable mode")
            for mode in spec.modes:
                for rule in mode.rules:
                    self.spec(rule.label)  # materialises implicit leaves


class DocumentGenerator:
    """Instantiate a schema into a :class:`LabeledTree`.

    Parameters
    ----------
    schema:
        The document schema (validated on construction).
    max_nodes:
        Hard budget; expansion stops once reached (the document stays a
        valid tree — trailing subtrees are simply truncated).
    max_depth:
        Hard recursion cap for self-referential schemas; elements at the
        cap are emitted without children.
    """

    def __init__(
        self, schema: Schema, *, max_nodes: int = 1_000_000, max_depth: int = 24
    ) -> None:
        schema.validate()
        if max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.schema = schema
        self.max_nodes = max_nodes
        self.max_depth = max_depth

    def generate(self, seed: int = 0) -> LabeledTree:
        """Generate one document; identical ``seed`` ⇒ identical tree."""
        rng = random.Random(seed)
        tree = LabeledTree(self.schema.root)
        # Depth-first expansion keeps truncation local: when the node
        # budget runs out we lose trailing records, not random interior
        # structure.
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            node, depth = stack.pop()
            if depth >= self.max_depth:
                continue
            spec = self.schema.spec(tree.label(node))
            mode = self._draw_mode(spec, rng)
            children: list[tuple[int, int]] = []
            for rule in mode.rules:
                for _ in range(rule.count(rng)):
                    if tree.size >= self.max_nodes:
                        stack.clear()
                        return tree
                    child = tree.add_child(node, rule.label)
                    children.append((child, depth + 1))
            stack.extend(reversed(children))
        return tree

    @staticmethod
    def _draw_mode(spec: ElementSpec, rng: random.Random) -> Mode:
        modes = spec.modes
        if len(modes) == 1:
            return modes[0]
        total = sum(mode.weight for mode in modes)
        pick = rng.random() * total
        acc = 0.0
        for mode in modes:
            acc += mode.weight
            if pick <= acc:
                return mode
        return modes[-1]
