"""Exact twig match counting (the paper's Definition 1).

A *match* of a twig query ``Q`` in a data tree ``D`` is an injective
mapping from query nodes to data nodes that preserves labels and
parent-child edges.  The **selectivity** ``s(Q)`` is the number of such
matches.  This module computes it exactly; it is the ground truth against
which every estimator in the library is scored, and the counting engine
behind the lattice miner.

Algorithm
---------
Bottom-up dynamic programming over the query.  For a query node ``q`` and
data node ``v`` with the same label, ``m(q, v)`` is the number of matches
of the query subtree rooted at ``q`` that send ``q`` to ``v``:

* if ``q`` is a leaf, ``m(q, v) = 1``;
* otherwise query children must map to *distinct* data children of ``v``,
  so ``m(q, v)`` is the permanent of the matrix
  ``M[i][j] = m(q_child_i, v_child_j)``.

The permanent is computed by a subset DP over query children, which is
exponential only in the query fan-out (tiny for twig queries: the paper's
workloads top out at 8 query nodes).  When the query children carry
pairwise-distinct labels the permanent factorises into a plain product of
row sums, and that fast path covers the vast majority of real twigs.

``DocumentIndex`` caches the per-label node lists of a document so that
repeated counting (the miner, workload generation) only touches
label-compatible data nodes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .canonical import Canon, canon, canon_children, canon_label
from .labeled_tree import LabeledTree

__all__ = [
    "DocumentIndex",
    "count_matches",
    "count_rooted_matches",
    "injective_assignment_count",
    "count_matches_descendant",
]


class DocumentIndex:
    """Per-label indexes over a data tree, shared by repeated counts.

    Attributes
    ----------
    tree:
        The indexed document.
    nodes_by_label:
        ``label -> list of node ids`` with that label.
    child_labels:
        ``parent label -> set of labels observed on its children`` across
        the whole document.  Drives candidate generation in the miner.
    """

    __slots__ = ("tree", "nodes_by_label", "child_labels")

    def __init__(self, tree: LabeledTree) -> None:
        self.tree = tree
        nodes_by_label: dict[str, list[int]] = {}
        child_labels: dict[str, set[str]] = {}
        labels = tree.labels
        parents = tree.parents
        for node, label in enumerate(labels):
            nodes_by_label.setdefault(label, []).append(node)
            parent = parents[node]
            if parent != -1:
                child_labels.setdefault(labels[parent], set()).add(label)
        self.nodes_by_label = nodes_by_label
        self.child_labels = child_labels

    @property
    def size(self) -> int:
        return self.tree.size

    def label_count(self, label: str) -> int:
        """Number of document nodes carrying ``label``."""
        return len(self.nodes_by_label.get(label, ()))


def injective_assignment_count(
    child_maps: Sequence[Mapping[int, int]], data_children: Sequence[int]
) -> int:
    """Count weighted injective assignments of query children to data children.

    ``child_maps[i]`` maps a data node id to the number of matches of the
    ``i``-th query child's subtree rooted there.  The result is the sum,
    over all ways to assign each query child to a *distinct* data child,
    of the product of the chosen counts — i.e. the permanent of the
    implicit count matrix.
    """
    m = len(child_maps)
    if m == 0:
        return 1
    if m == 1:
        cmap = child_maps[0]
        return sum(cmap.get(v, 0) for v in data_children)
    # Subset DP: dp[S] = weighted count of assignments of the query
    # children in S to distinct data children seen so far.
    full = (1 << m) - 1
    dp = [0] * (full + 1)
    dp[0] = 1
    for v in data_children:
        weights = [cmap.get(v, 0) for cmap in child_maps]
        if not any(weights):
            continue
        # Iterate subsets in descending population so each data child is
        # used at most once per assignment.
        for subset in range(full, -1, -1):
            base = dp[subset]
            if not base:
                continue
            for i in range(m):
                bit = 1 << i
                if subset & bit or not weights[i]:
                    continue
                dp[subset | bit] += base * weights[i]
    return dp[full]


def _product_fast_path(
    child_maps: Sequence[Mapping[int, int]], data_children: Sequence[int]
) -> int:
    """Permanent when each data child can serve at most one query child."""
    total = 1
    for cmap in child_maps:
        row = sum(cmap.get(v, 0) for v in data_children)
        if row == 0:
            return 0
        total *= row
    return total


def count_rooted_matches(
    pattern: Canon | LabeledTree, index: DocumentIndex
) -> dict[int, int]:
    """Map ``data node -> number of matches of pattern rooted there``.

    Only nodes with a non-zero count appear in the result.  The total
    selectivity is the sum of the values.
    """
    if isinstance(pattern, LabeledTree):
        pattern = canon(pattern)
    memo: dict[Canon, dict[int, int]] = {}
    return _rooted(pattern, index, memo)


def _rooted(
    pattern: Canon, index: DocumentIndex, memo: dict[Canon, dict[int, int]]
) -> dict[int, int]:
    got = memo.get(pattern)
    if got is not None:
        return got
    label = canon_label(pattern)
    kids = canon_children(pattern)
    candidates = index.nodes_by_label.get(label, ())
    result: dict[int, int] = {}
    if not kids:
        result = dict.fromkeys(candidates, 1)
    else:
        child_maps = [_rooted(kid, index, memo) for kid in kids]
        if all(child_maps):
            kid_labels = [canon_label(kid) for kid in kids]
            distinct = len(set(kid_labels)) == len(kid_labels)
            counter = _product_fast_path if distinct else injective_assignment_count
            tree_children = index.tree.children
            for v in candidates:
                data_children = tree_children[v]
                if not data_children:
                    continue
                n = counter(child_maps, data_children)
                if n:
                    result[v] = n
    memo[pattern] = result
    return result


def count_matches(
    query: Canon | LabeledTree, document: LabeledTree | DocumentIndex
) -> int:
    """Exact selectivity of ``query`` in ``document`` (Definition 1)."""
    index = document if isinstance(document, DocumentIndex) else DocumentIndex(document)
    return sum(count_rooted_matches(query, index).values())


# ----------------------------------------------------------------------
# Extension: descendant-axis matching
# ----------------------------------------------------------------------


def count_matches_descendant(
    query: Canon | LabeledTree, document: LabeledTree | DocumentIndex
) -> int:
    """Selectivity under descendant-axis semantics (extension).

    Every query edge is interpreted as ancestor/descendant rather than
    parent/child, with sibling images required to be distinct.  Note that
    under descendant semantics distinct sibling images no longer guarantee
    globally disjoint subtree images, so this counts *sibling-distinct*
    embeddings — an upper bound on fully injective matches.  The paper
    restricts itself to parent-child twigs (its Definition 1, where the
    two notions coincide), so none of the reproduced experiments use this;
    it is provided because XPath's ``//`` axis is the natural next step
    and the same DP applies after replacing "children of v" with "proper
    descendants of v".
    """
    index = document if isinstance(document, DocumentIndex) else DocumentIndex(document)
    if isinstance(query, LabeledTree):
        query = canon(query)
    tree = index.tree

    # Pre-compute descendant lists lazily per node on demand.
    desc_cache: dict[int, list[int]] = {}

    def descendants(v: int) -> list[int]:
        got = desc_cache.get(v)
        if got is not None:
            return got
        out: list[int] = []
        stack = list(tree.children[v])
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(tree.children[node])
        desc_cache[v] = out
        return out

    memo: dict[Canon, dict[int, int]] = {}

    def rooted(pattern: Canon) -> dict[int, int]:
        got = memo.get(pattern)
        if got is not None:
            return got
        label = canon_label(pattern)
        kids = canon_children(pattern)
        result: dict[int, int] = {}
        candidates = index.nodes_by_label.get(label, ())
        if not kids:
            result = dict.fromkeys(candidates, 1)
        else:
            child_maps = [rooted(kid) for kid in kids]
            if all(child_maps):
                for v in candidates:
                    pool = descendants(v)
                    if not pool:
                        continue
                    n = injective_assignment_count(child_maps, pool)
                    if n:
                        result[v] = n
        memo[pattern] = result
        return result

    return sum(rooted(query).values())
