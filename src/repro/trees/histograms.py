"""Order-preserving value histograms: range predicates as structure.

:mod:`repro.trees.values` handles *equality* predicates by hashing leaf
text into buckets; hashing destroys order, so range predicates need the
classic database answer instead — an **equi-depth histogram** per
numeric element label.  Values are binned by fitted boundaries, the bin
index becomes a synthetic child label (``price#3``), and a range
predicate expands into a union of bin-equality twigs whose estimates
add up (bins partition the value space, so the twig counts are
disjoint).  Partial boundary bins are scaled by the assumed-uniform
in-bin fraction, exactly like a relational histogram estimator.

Workflow::

    hist = RangeHistogram.fit({"price": values_seen}, buckets=8)
    doc  = tree_from_xml_with_ranges(xml, hist)
    lattice = LatticeSummary.build(doc, 4)
    low, high, queries = hist.range_twigs("/laptop[price]", "price", 800, 1500)
    estimate = sum(w * est.estimate(q) for w, q in queries)
"""

from __future__ import annotations

import bisect
import xml.etree.ElementTree as ET
from dataclasses import dataclass

from .labeled_tree import LabeledTree
from .serialize import _strip_namespace
from .twig import TwigQuery

__all__ = ["RangeHistogram", "tree_from_xml_with_ranges"]


@dataclass(frozen=True)
class _LabelBins:
    """Fitted bin boundaries of one element label."""

    boundaries: tuple[float, ...]  # ascending interior boundaries

    @property
    def num_bins(self) -> int:
        return len(self.boundaries) + 1

    def bin_of(self, value: float) -> int:
        # bisect_left makes bin i the interval (boundary[i-1], boundary[i]]
        # — consistent with bin_range below, so boundary values belong to
        # the bin they close.
        return bisect.bisect_left(self.boundaries, value)

    def bin_range(self, index: int) -> tuple[float, float]:
        """(low, high] of a bin; open ends are ±inf."""
        low = self.boundaries[index - 1] if index > 0 else float("-inf")
        high = (
            self.boundaries[index]
            if index < len(self.boundaries)
            else float("inf")
        )
        return low, high


class RangeHistogram:
    """Per-label equi-depth histograms for numeric leaf values."""

    def __init__(self, bins: dict[str, _LabelBins]) -> None:
        self._bins = bins

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls, samples: dict[str, list[float]], buckets: int = 8
    ) -> "RangeHistogram":
        """Fit equi-depth boundaries per label from sample values."""
        if buckets < 1:
            raise ValueError("need at least one bucket")
        bins: dict[str, _LabelBins] = {}
        for label, values in samples.items():
            if not values:
                raise ValueError(f"no sample values for label {label!r}")
            ordered = sorted(values)
            boundaries: list[float] = []
            for i in range(1, buckets):
                rank = round(i * len(ordered) / buckets)
                rank = min(max(rank, 1), len(ordered) - 1)
                boundary = ordered[rank]
                if not boundaries or boundary > boundaries[-1]:
                    boundaries.append(boundary)
            bins[label] = _LabelBins(tuple(boundaries))
        return cls(bins)

    # ------------------------------------------------------------------
    # Labelling
    # ------------------------------------------------------------------

    def labels(self) -> list[str]:
        return sorted(self._bins)

    def handles(self, label: str) -> bool:
        return label in self._bins

    def bin_label(self, label: str, value: float) -> str:
        """The synthetic node label of a value, e.g. ``price#3``."""
        return f"{label}#{self._require(label).bin_of(value)}"

    def num_bins(self, label: str) -> int:
        return self._require(label).num_bins

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------

    def range_twigs(
        self,
        xpath: str,
        label: str,
        low: float,
        high: float,
    ) -> list[tuple[float, TwigQuery]]:
        """Expand a range predicate into weighted bin-equality twigs.

        Returns ``(weight, twig)`` pairs: the estimate of the range query
        is ``sum(weight * estimate(twig))``.  Interior bins weigh 1.0;
        the two boundary bins are scaled by the uniform-within-bin
        fraction of the bin's span that the range covers.
        """
        if low > high:
            raise ValueError("empty range: low > high")
        entry = self._require(label)
        base = TwigQuery.parse(xpath)
        anchor = self._anchor_node(base, label)

        first = entry.bin_of(low)
        last = entry.bin_of(high)
        out: list[tuple[float, TwigQuery]] = []
        for index in range(first, last + 1):
            bin_low, bin_high = entry.bin_range(index)
            weight = _overlap_fraction(bin_low, bin_high, low, high)
            if weight <= 0.0:
                continue
            tree = base.tree.copy()
            tree.add_child(anchor, f"{label}#{index}")
            out.append((weight, TwigQuery(tree)))
        return out

    @staticmethod
    def _anchor_node(query: TwigQuery, label: str) -> int:
        for node in range(query.tree.size):
            if query.tree.label(node) == label:
                return node
        raise ValueError(f"label {label!r} does not occur in the twig")

    def _require(self, label: str) -> _LabelBins:
        got = self._bins.get(label)
        if got is None:
            known = ", ".join(self.labels()) or "(none)"
            raise KeyError(f"no histogram for label {label!r}; fitted: {known}")
        return got

    def __repr__(self) -> str:
        spec = ", ".join(
            f"{label}:{entry.num_bins}" for label, entry in sorted(self._bins.items())
        )
        return f"RangeHistogram({spec})"


def _overlap_fraction(
    bin_low: float, bin_high: float, low: float, high: float
) -> float:
    """Fraction of a bin's span covered by [low, high] (uniform model).

    Unbounded edge bins count as fully covered when the range reaches
    into them at all (there is no span to scale by).
    """
    if high < bin_low or low > bin_high:
        return 0.0
    if bin_low == float("-inf") or bin_high == float("inf"):
        return 1.0
    span = bin_high - bin_low
    if span <= 0:
        return 1.0
    covered = min(high, bin_high) - max(low, bin_low)
    return max(0.0, min(1.0, covered / span))


def tree_from_xml_with_ranges(
    text: str | bytes, histogram: RangeHistogram
) -> LabeledTree:
    """Parse XML, binning numeric leaf values of fitted labels.

    Leaves whose label has a fitted histogram and whose text parses as a
    number get a ``label#bin`` child; other leaf text is dropped (as in
    the structural parser).
    """
    root = ET.fromstring(text)
    tree = LabeledTree(_strip_namespace(root.tag))
    stack = [(root, 0)]
    while stack:
        element, node = stack.pop()
        children = list(element)
        if not children:
            label = _strip_namespace(element.tag)
            value_text = (element.text or "").strip()
            if value_text and histogram.handles(label):
                try:
                    value = float(value_text)
                except ValueError:
                    continue
                tree.add_child(node, histogram.bin_label(label, value))
            continue
        for child in children:
            stack.append((child, tree.add_child(node, _strip_namespace(child.tag))))
    return tree
