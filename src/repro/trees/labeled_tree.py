"""Rooted, node-labeled, unordered trees.

This module provides :class:`LabeledTree`, the single tree representation
shared by every layer of the library: XML documents are parsed into it,
twig queries wrap it, the frequent-tree miner grows patterns with it, and
the decomposition estimators take it apart leaf by leaf.

A tree is stored as three parallel arrays indexed by integer node id:
``labels``, ``parents`` (``-1`` for the root) and ``children`` (lists of
child ids).  Node ids are arbitrary but stable; helpers that *derive* new
trees (leaf removal, induced subtrees, copies) renumber nodes in pre-order
so the resulting trees are compact.

Sibling order is not semantically meaningful anywhere in the library —
twig matching (see :mod:`repro.trees.matching`) is defined on unordered
trees — but the arrays do preserve insertion order, which keeps traversals
deterministic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

__all__ = ["LabeledTree", "TreeBuildError", "NestedSpec"]


class TreeBuildError(ValueError):
    """Raised when an operation would produce an invalid tree."""


#: Nested tree spec accepted by :meth:`LabeledTree.from_nested`: either a
#: bare label (a leaf) or ``(label, [child_spec, ...])``.
NestedSpec = Union[str, tuple[str, Sequence["NestedSpec"]]]


class LabeledTree:
    """A rooted, node-labeled, unordered tree.

    Instances are *logically* immutable once handed out by the public
    constructors: every derivation helper returns a new tree.  The only
    mutating method is :meth:`add_child`, intended for incremental
    construction (parsers, generators, pattern growth); callers that keep
    a reference to a tree they received from elsewhere must copy before
    mutating (:meth:`copy`).
    """

    __slots__ = ("labels", "parents", "children")

    def __init__(self, root_label: str) -> None:
        self.labels: list[str] = [root_label]
        self.parents: list[int] = [-1]
        self.children: list[list[int]] = [[]]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_nested(cls, spec: NestedSpec) -> "LabeledTree":
        """Build a tree from a nested ``(label, [children...])`` spec.

        A bare string is accepted as shorthand for a leaf::

            LabeledTree.from_nested(("a", ["b", ("c", ["d"])]))

        builds the tree ``a`` with children ``b`` and ``c``, where ``c``
        has a single child ``d``.
        """
        label, kids = cls._split_spec(spec)
        tree = cls(label)
        stack = [(0, kid) for kid in reversed(kids)]
        while stack:
            parent, kid_spec = stack.pop()
            kid_label, grand = cls._split_spec(kid_spec)
            kid = tree.add_child(parent, kid_label)
            stack.extend((kid, g) for g in reversed(grand))
        return tree

    @staticmethod
    def _split_spec(spec: NestedSpec) -> tuple[str, Sequence[NestedSpec]]:
        if isinstance(spec, str):
            return spec, ()
        if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
            return spec[0], spec[1]
        raise TreeBuildError(f"invalid nested tree spec: {spec!r}")

    @classmethod
    def path(cls, labels: Sequence[str]) -> "LabeledTree":
        """Build a simple path ``labels[0]/labels[1]/.../labels[-1]``."""
        if not labels:
            raise TreeBuildError("a path needs at least one label")
        tree = cls(labels[0])
        node = 0
        for label in labels[1:]:
            node = tree.add_child(node, label)
        return tree

    def copy(self) -> "LabeledTree":
        """Return an independent deep copy with identical node ids."""
        dup = LabeledTree.__new__(LabeledTree)
        dup.labels = list(self.labels)
        dup.parents = list(self.parents)
        dup.children = [list(c) for c in self.children]
        return dup

    # ------------------------------------------------------------------
    # Incremental construction
    # ------------------------------------------------------------------

    def add_child(self, parent: int, label: str) -> int:
        """Append a new leaf labelled ``label`` under ``parent``.

        Returns the id of the new node.
        """
        if not 0 <= parent < len(self.labels):
            raise TreeBuildError(f"no such parent node: {parent}")
        node = len(self.labels)
        self.labels.append(label)
        self.parents.append(parent)
        self.children.append([])
        self.children[parent].append(node)
        return node

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    @property
    def root(self) -> int:
        return 0

    def label(self, node: int) -> str:
        return self.labels[node]

    def parent(self, node: int) -> int:
        """Parent id, or ``-1`` for the root."""
        return self.parents[node]

    def child_ids(self, node: int) -> Sequence[int]:
        return self.children[node]

    def is_leaf(self, node: int) -> bool:
        return not self.children[node]

    def degree(self, node: int) -> int:
        """Graph degree: children count, plus one for the parent edge."""
        deg = len(self.children[node])
        if self.parents[node] != -1:
            deg += 1
        return deg

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def preorder(self) -> Iterator[int]:
        """Node ids in pre-order (children visited in insertion order)."""
        stack = [0]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children[node]))

    def postorder(self) -> Iterator[int]:
        """Node ids in post-order (every child before its parent)."""
        order: list[int] = []
        stack = [0]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self.children[node])
        return reversed(order)

    def depth(self, node: int) -> int:
        """Number of edges from ``node`` up to the root."""
        d = 0
        while self.parents[node] != -1:
            node = self.parents[node]
            d += 1
        return d

    def height(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        best = 0
        stack = [(0, 0)]
        while stack:
            node, d = stack.pop()
            if d > best:
                best = d
            stack.extend((c, d + 1) for c in self.children[node])
        return best

    def leaves(self) -> list[int]:
        """Ids of all nodes without children."""
        return [n for n in range(self.size) if not self.children[n]]

    def removable_nodes(self) -> list[int]:
        """Nodes of graph degree 1, i.e. the nodes a decomposition may drop.

        These are the leaves, plus the root when it has exactly one child
        (the paper: "if the root node has degree 1, it can also be
        considered a leaf node for our purposes").  Every tree with at
        least two nodes has at least two removable nodes.
        """
        nodes = [n for n in range(1, self.size) if not self.children[n]]
        if len(self.children[0]) == 1:
            nodes.insert(0, 0)
        elif not self.children[0]:  # single-node tree
            nodes.insert(0, 0)
        return nodes

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def label_counts(self) -> dict[str, int]:
        """Multiplicity of each label in the tree."""
        counts: dict[str, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    def distinct_labels(self) -> set[str]:
        return set(self.labels)

    def edge_label_pairs(self) -> set[tuple[str, str]]:
        """The set of (parent label, child label) pairs present."""
        return {
            (self.labels[self.parents[n]], self.labels[n])
            for n in range(1, self.size)
        }

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------

    def remove_node(self, node: int) -> "LabeledTree":
        """Return a new tree with degree-1 node ``node`` removed.

        Removing a leaf drops it; removing a single-child root promotes
        the child to be the new root.  Removing any other node would
        disconnect the tree and raises :class:`TreeBuildError`.
        """
        if self.size <= 1:
            raise TreeBuildError("cannot remove the only node of a tree")
        if self.children[node]:
            if node != 0 or len(self.children[0]) != 1:
                raise TreeBuildError(
                    f"node {node} has degree > 1 and cannot be removed"
                )
        keep = [n for n in range(self.size) if n != node]
        return self.induced_subtree(keep)

    def remove_nodes(self, nodes: Iterable[int]) -> "LabeledTree":
        """Return the induced subtree on all nodes *not* in ``nodes``."""
        drop = set(nodes)
        keep = [n for n in range(self.size) if n not in drop]
        return self.induced_subtree(keep)

    def induced_subtree(self, nodes: Iterable[int]) -> "LabeledTree":
        """Return the subtree induced by ``nodes``.

        The node set must be non-empty and connected (one node must be an
        ancestor of all others within the set); otherwise
        :class:`TreeBuildError` is raised.  Node ids in the result are
        renumbered in pre-order of the original tree.
        """
        node_set = set(nodes)
        if not node_set:
            raise TreeBuildError("cannot induce a subtree on an empty node set")
        # The induced root is the unique node whose parent is outside the set.
        roots = [n for n in sorted(node_set) if self.parents[n] not in node_set]
        if len(roots) != 1:
            raise TreeBuildError(
                f"node set {sorted(node_set)} does not induce a connected subtree"
            )
        sub = LabeledTree(self.labels[roots[0]])
        mapping = {roots[0]: 0}
        stack = [roots[0]]
        while stack:
            node = stack.pop()
            for child in reversed(self.children[node]):
                if child in node_set:
                    mapping[child] = sub.add_child(mapping[node], self.labels[child])
                    stack.append(child)
        if len(mapping) != len(node_set):
            raise TreeBuildError(
                f"node set {sorted(node_set)} does not induce a connected subtree"
            )
        return sub

    def subtree_at(self, node: int) -> "LabeledTree":
        """Return a copy of the full subtree rooted at ``node``."""
        sub = LabeledTree(self.labels[node])
        stack = [(node, 0)]
        while stack:
            src, dst = stack.pop()
            for child in reversed(self.children[src]):
                stack.append((child, sub.add_child(dst, self.labels[child])))
        return sub

    def with_child(self, node: int, label: str) -> "LabeledTree":
        """Return a copy of the tree with a new leaf under ``node``."""
        grown = self.copy()
        grown.add_child(node, label)
        return grown

    # ------------------------------------------------------------------
    # Structural equality
    # ------------------------------------------------------------------

    def isomorphic(self, other: "LabeledTree") -> bool:
        """True when the two unordered labeled trees are isomorphic.

        Compares canonical *encodings* rather than canon tuples: string
        comparison is flat, whereas comparing deeply nested tuples
        recurses inside CPython and would hit the recursion limit on
        documents thousands of levels deep.
        """
        from .canonical import encode_tree

        return self.size == other.size and encode_tree(self) == encode_tree(other)

    def __eq__(self, other: object) -> bool:  # structural, unordered
        if not isinstance(other, LabeledTree):
            return NotImplemented
        return self.isomorphic(other)

    def __hash__(self) -> int:
        from .canonical import encode_tree

        return hash(encode_tree(self))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        from .canonical import encode_canon, canon

        body = encode_canon(canon(self))
        if len(body) > 60:
            body = body[:57] + "..."
        return f"LabeledTree({body!r}, size={self.size})"

    def pretty(self) -> str:
        """Multi-line indented rendering, for debugging and examples."""
        lines: list[str] = []
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            node, indent = stack.pop()
            lines.append("  " * indent + self.labels[node])
            stack.extend((c, indent + 1) for c in reversed(self.children[node]))
        return "\n".join(lines)
