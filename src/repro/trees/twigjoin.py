"""Twig query execution: enumerate actual matches, not just count them.

Selectivity estimation exists to serve query *evaluation*; this module
supplies that substrate so the examples and tests can run twig queries
for real.  Two engines:

* :func:`enumerate_matches` — backtracking enumeration over the match
  DP of :mod:`repro.trees.matching`.  Yields every match as a
  ``{query node -> document node}`` mapping, lazily, in a deterministic
  order.  The count of yielded matches equals ``count_matches`` by
  construction (asserted in the tests).
* :class:`PathJoin` — a structural merge join on region encodings for
  linear paths (the Al-Khalifa-style binary structural join, cascaded).
  It exercises :mod:`repro.trees.regions` the way an XML database would
  and cross-checks the DP on paths.

Both are exact and intended for moderate result sizes; the entire point
of the paper is that *counting* should not require running these.
"""

from __future__ import annotations

from typing import Iterator

from .canonical import Canon, canon
from .labeled_tree import LabeledTree
from .matching import DocumentIndex, _rooted
from .regions import Region, RegionIndex
from .twig import TwigQuery

__all__ = [
    "enumerate_matches",
    "count_via_enumeration",
    "match_candidates",
    "PathJoin",
]


def match_candidates(
    query: TwigQuery | LabeledTree,
    document: LabeledTree | DocumentIndex,
) -> dict[int, set[int]]:
    """Semi-join reduction: per query node, the document nodes that
    survive structural filtering.

    The result is a *superset* of the nodes appearing in actual matches
    (sibling injectivity can eliminate more — e.g. two query siblings
    competing for one document child), which is exactly the guarantee
    execution-time filters give.  Two passes, the classic shape:

    * bottom-up — a document node survives for query node ``q`` only if
      the query subtree at ``q`` matches rooted there (the counting DP's
      non-zero entries);
    * top-down — additionally its parent must survive for ``q``'s parent
      (matches are anchored through the query root).

    Empty sets mean the query has no matches at all.  Useful both as an
    execution-time filter and as a cardinality diagnostic (the sets'
    sizes bound the per-node join fan-in).
    """
    index = document if isinstance(document, DocumentIndex) else DocumentIndex(document)
    qtree = query.tree if isinstance(query, TwigQuery) else query

    memo: dict[Canon, dict[int, int]] = {}
    bottom_up: dict[int, dict[int, int]] = {}
    for qnode in qtree.postorder():
        bottom_up[qnode] = _rooted(canon(qtree.subtree_at(qnode)), index, memo)

    out: dict[int, set[int]] = {qtree.root: set(bottom_up[qtree.root])}
    parents = index.tree.parents
    for qnode in qtree.preorder():
        if qnode == qtree.root:
            continue
        parent_survivors = out[qtree.parent(qnode)]
        out[qnode] = {
            dnode
            for dnode in bottom_up[qnode]
            if parents[dnode] in parent_survivors
        }
    if any(not survivors for survivors in out.values()):
        return {qnode: set() for qnode in out}
    return out


def enumerate_matches(
    query: TwigQuery | LabeledTree,
    document: LabeledTree | DocumentIndex,
    *,
    limit: int | None = None,
) -> Iterator[dict[int, int]]:
    """Yield matches of ``query`` as ``{query node id -> doc node id}``.

    Matches are produced in document order of the query root's image,
    then lexicographically by child assignment.  ``limit`` stops early
    (useful for LIMIT-style evaluation and for sampling).
    """
    index = document if isinstance(document, DocumentIndex) else DocumentIndex(document)
    qtree = query.tree if isinstance(query, TwigQuery) else query

    # Reuse the DP maps to prune: only descend into (query node, doc
    # node) pairs with a non-zero rooted count.
    memo: dict[Canon, dict[int, int]] = {}
    rooted_of: dict[int, dict[int, int]] = {}
    subcanon: dict[int, Canon] = {}
    for qnode in qtree.postorder():
        sub = qtree.subtree_at(qnode)
        subcanon[qnode] = canon(sub)
        rooted_of[qnode] = _rooted(subcanon[qnode], index, memo)

    produced = 0
    doc_children = index.tree.children

    def assign(qnode: int, dnode: int) -> Iterator[dict[int, int]]:
        """All matches of the query subtree at qnode rooted at dnode."""
        kids = qtree.children[qnode]
        if not kids:
            yield {qnode: dnode}
            return
        candidate_lists = [
            [
                d
                for d in doc_children[dnode]
                if rooted_of[kid].get(d, 0)
            ]
            for kid in kids
        ]

        def backtrack(i: int, used: set[int]) -> Iterator[dict[int, int]]:
            if i == len(kids):
                yield {}
                return
            for d in candidate_lists[i]:
                if d in used:
                    continue
                used.add(d)
                for sub_match in assign(kids[i], d):
                    for rest in backtrack(i + 1, used):
                        merged = dict(sub_match)
                        merged.update(rest)
                        yield merged
                used.discard(d)

        for combo in backtrack(0, set()):
            combo[qnode] = dnode
            yield combo

    roots = sorted(rooted_of[qtree.root])
    for dnode in roots:
        for match in assign(qtree.root, dnode):
            yield match
            produced += 1
            if limit is not None and produced >= limit:
                return


def count_via_enumeration(
    query: TwigQuery | LabeledTree, document: LabeledTree | DocumentIndex
) -> int:
    """Count matches by full enumeration (cross-check for the DP)."""
    return sum(1 for _match in enumerate_matches(query, document))


class PathJoin:
    """Cascaded binary structural join for linear path queries.

    Evaluates ``l1/l2/.../ln`` over region streams: starting from the
    ``l1`` stream, each step joins the current intermediate result with
    the next label's stream on the parent-child region predicate.  The
    result is the list of full node chains, one per match — which makes
    the count directly comparable to the twig-match semantics.
    """

    def __init__(self, document: LabeledTree) -> None:
        self.index = RegionIndex(document)

    def evaluate(self, labels: list[str]) -> list[tuple[int, ...]]:
        """All matching node chains for the label path."""
        if not labels:
            raise ValueError("empty path")
        chains: list[tuple[Region, ...]] = [
            (region,) for region in self.index.stream(labels[0])
        ]
        for label in labels[1:]:
            stream = self.index.stream(label)
            chains = _parent_child_join(chains, stream)
            if not chains:
                break
        return [tuple(region.node for region in chain) for chain in chains]

    def count(self, labels: list[str]) -> int:
        return len(self.evaluate(labels))


def _parent_child_join(
    chains: list[tuple[Region, ...]], stream: list[Region]
) -> list[tuple[Region, ...]]:
    """Merge-join chains (by last element) with a document-order stream.

    Both inputs are in document order of the join key; a two-pointer
    sweep with a pending-ancestors window gives the standard structural
    join behaviour without quadratic blowup on deep documents.
    """
    out: list[tuple[Region, ...]] = []
    # Sort chains by their tail's start (they generally already are).
    ordered = sorted(chains, key=lambda chain: chain[-1].start)
    tails = [chain[-1] for chain in ordered]
    j = 0
    # For parent-child the window never holds more than the ancestor
    # chain of the current stream element; a simple scan with early
    # termination on interval ends is sufficient and simple to verify.
    for chain, tail in zip(ordered, tails):
        # Advance j to the first stream element that could be inside tail.
        while j < len(stream) and stream[j].start <= tail.start:
            j += 1
        k = j
        while k < len(stream) and stream[k].start <= tail.end:
            if tail.is_parent_of(stream[k]):
                out.append(chain + (stream[k],))
            k += 1
    out.sort(key=lambda chain: tuple(region.start for region in chain))
    return out
