"""Tree substrate: labeled trees, canonical forms, twig queries, matching."""

from .labeled_tree import LabeledTree, TreeBuildError
from .canonical import (
    Canon,
    PatternInterner,
    canon,
    canon_children,
    canon_from_nested,
    canon_label,
    canon_of_subtree,
    canon_size,
    canon_to_tree,
    canonical_preorder,
    decode_canon,
    decode_tree,
    encode_canon,
    encode_tree,
)
from .matching import (
    DocumentIndex,
    count_matches,
    count_matches_descendant,
    count_rooted_matches,
    injective_assignment_count,
)
from .serialize import (
    tree_from_element,
    tree_from_xml,
    tree_from_xml_file,
    tree_to_element,
    tree_to_xml,
    tree_to_xml_file,
    xml_byte_size,
)
from .histograms import RangeHistogram, tree_from_xml_with_ranges
from .regions import Region, RegionIndex, ShardPlan, plan_shards
from .twig import TwigParseError, TwigQuery
from .twigstack import TwigStackJoin, path_stack_solutions
from .twigjoin import (
    PathJoin,
    count_via_enumeration,
    enumerate_matches,
    match_candidates,
)

__all__ = [
    "LabeledTree",
    "TreeBuildError",
    "Canon",
    "PatternInterner",
    "canon",
    "canon_children",
    "canon_from_nested",
    "canon_label",
    "canon_of_subtree",
    "canon_size",
    "canon_to_tree",
    "canonical_preorder",
    "decode_canon",
    "decode_tree",
    "encode_canon",
    "encode_tree",
    "DocumentIndex",
    "count_matches",
    "count_matches_descendant",
    "count_rooted_matches",
    "injective_assignment_count",
    "tree_from_element",
    "tree_from_xml",
    "tree_from_xml_file",
    "tree_to_element",
    "tree_to_xml",
    "tree_to_xml_file",
    "xml_byte_size",
    "TwigParseError",
    "TwigQuery",
    "Region",
    "RegionIndex",
    "ShardPlan",
    "plan_shards",
    "PathJoin",
    "count_via_enumeration",
    "enumerate_matches",
    "match_candidates",
    "TwigStackJoin",
    "path_stack_solutions",
    "RangeHistogram",
    "tree_from_xml_with_ranges",
]
