"""Twig queries.

A twig query is a small node-labeled tree matched against the document by
label- and edge-preserving injective mappings (Definition 1 of the
paper).  :class:`TwigQuery` wraps a :class:`~repro.trees.labeled_tree.LabeledTree`
and adds the query-facing conveniences: parsing from an XPath-like
syntax, canonical identity, and classification helpers the estimators
rely on (path detection for the Markov special case).

Two textual syntaxes are accepted:

* the library's canonical pattern codec, ``a(b,c(d))``
  (see :mod:`repro.trees.canonical`);
* an XPath subset with child axes and structural predicates::

      /site/people/person[name][address/city]

  Steps are separated by ``/``; each step may carry any number of
  ``[...]`` predicates, each of which is itself a relative twig in the
  same syntax.  Only structure is modelled — no value predicates, no
  ``//`` axis — matching the paper's scope.
"""

from __future__ import annotations

from typing import Iterable

from .canonical import (
    Canon,
    canon,
    decode_tree,
    encode_tree,
)
from .labeled_tree import LabeledTree, NestedSpec, TreeBuildError

__all__ = ["TwigQuery", "TwigParseError"]


class TwigParseError(ValueError):
    """Raised when twig query text cannot be parsed."""


class TwigQuery:
    """A structural twig query over an XML document."""

    __slots__ = ("tree", "_canon")

    def __init__(self, tree: LabeledTree) -> None:
        self.tree = tree
        self._canon: Canon | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_pattern(cls, text: str) -> "TwigQuery":
        """Parse the canonical pattern codec, e.g. ``a(b,c(d))``."""
        try:
            return cls(decode_tree(text))
        except TreeBuildError as exc:
            raise TwigParseError(str(exc)) from exc

    @classmethod
    def from_xpath(cls, text: str) -> "TwigQuery":
        """Parse an XPath-subset expression, e.g. ``/a/b[c][d/e]``."""
        text = text.strip()
        if text.startswith("//"):
            raise TwigParseError(
                "the descendant axis '//' is outside the paper's query model"
            )
        if text.startswith("/"):
            text = text[1:]
        if not text:
            raise TwigParseError("empty twig expression")
        spec, pos = _parse_steps(text, 0)
        if pos != len(text):
            raise TwigParseError(f"trailing garbage at position {pos} in {text!r}")
        return cls(LabeledTree.from_nested(spec))

    @classmethod
    def from_nested(cls, spec: NestedSpec) -> "TwigQuery":
        """Build from a nested ``(label, [children])`` spec."""
        return cls(LabeledTree.from_nested(spec))

    @classmethod
    def path(cls, labels: Iterable[str]) -> "TwigQuery":
        """A pure path query ``labels[0]/.../labels[-1]``."""
        return cls(LabeledTree.path(list(labels)))

    @classmethod
    def parse(cls, text: str) -> "TwigQuery":
        """Parse either syntax.

        Steps (``/``) or predicates (``[``) mark the XPath subset;
        everything else is the pattern codec.  Escaped characters in a
        codec label don't confuse the dispatch because ``/`` and ``[``
        are not codec metacharacters anyway — labels that legitimately
        contain them must go through :meth:`from_pattern` directly.
        """
        if "/" in text or "[" in text:
            return cls.from_xpath(text)
        return cls.from_pattern(text)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of query nodes."""
        return self.tree.size

    def canonical(self) -> Canon:
        """Canonical tuple identifying this query up to isomorphism."""
        if self._canon is None:
            self._canon = canon(self.tree)
        return self._canon

    def is_path(self) -> bool:
        """True when every node has at most one child (a linear path)."""
        return all(len(self.tree.child_ids(n)) <= 1 for n in range(self.tree.size))

    def path_labels(self) -> list[str]:
        """Root-to-leaf labels; raises unless :meth:`is_path`."""
        if not self.is_path():
            raise TreeBuildError("query is not a linear path")
        labels = []
        node = self.tree.root
        while True:
            labels.append(self.tree.label(node))
            kids = self.tree.child_ids(node)
            if not kids:
                return labels
            node = kids[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwigQuery):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        return f"TwigQuery({encode_tree(self.tree)!r})"


# ----------------------------------------------------------------------
# XPath-subset parser
# ----------------------------------------------------------------------


def _parse_steps(text: str, pos: int) -> tuple[NestedSpec, int]:
    """Parse ``label[pred]*(/steps)?`` returning a nested spec."""
    label, pos = _parse_label(text, pos)
    children: list[NestedSpec] = []
    while pos < len(text) and text[pos] == "[":
        depth = 0
        start = pos + 1
        i = pos
        while i < len(text):
            if text[i] == "[":
                depth += 1
            elif text[i] == "]":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if depth != 0:
            raise TwigParseError(f"unbalanced '[' at position {pos} in {text!r}")
        inner = text[start:i].strip()
        if inner.startswith("/"):
            raise TwigParseError("predicates must be relative paths")
        if not inner:
            raise TwigParseError(f"empty predicate at position {pos}")
        spec, used = _parse_steps(inner, 0)
        if used != len(inner):
            raise TwigParseError(f"cannot parse predicate {inner!r}")
        children.append(spec)
        pos = i + 1
    if pos < len(text) and text[pos] == "/":
        child_spec, pos = _parse_steps(text, pos + 1)
        children.append(child_spec)
    return (label, children), pos


def _parse_label(text: str, pos: int) -> tuple[str, int]:
    start = pos
    while pos < len(text) and text[pos] not in "/[]":
        pos += 1
    label = text[start:pos].strip()
    if not label:
        raise TwigParseError(f"missing step label at position {start} in {text!r}")
    return label, pos
