"""Canonical forms for unordered labeled trees.

Twig matching ignores sibling order, so two trees that differ only in the
order of siblings denote the same pattern and must share one summary
entry.  The canonical form used throughout the library is a nested tuple

    canon = (label, (child_canon_1, ..., child_canon_m))

where the children canons are sorted.  Canon tuples are hashable and
compare cheaply, which makes them the natural dictionary key for the
lattice summary, the miner's count maps, and the estimators' memo tables.

For persistent storage and human-readable display there is a compact
string codec: ``a(b,c(d))`` encodes the tree rooted at ``a`` with leaf
child ``b`` and child ``c`` that has leaf child ``d``.  Characters that
collide with the syntax (``(``, ``)``, ``,`` and ``\\``) are
backslash-escaped, so arbitrary labels round-trip.
"""

from __future__ import annotations

import sys
from array import array
from typing import Sequence

from .labeled_tree import LabeledTree, NestedSpec, TreeBuildError

__all__ = [
    "Canon",
    "PatternInterner",
    "canon",
    "canon_of_subtree",
    "canon_label",
    "canon_children",
    "canon_size",
    "canon_from_nested",
    "canon_to_tree",
    "encode_canon",
    "decode_canon",
    "encode_tree",
    "decode_tree",
    "canonical_preorder",
]

#: A canonical encoding: ``(label, (child_canon, ...))`` with the child
#: canons sorted.  Treat values as opaque keys — the ``canon_*``
#: accessors below are the only supported way to look inside.
Canon = tuple[str, tuple["Canon", ...]]

_ESCAPED = {"(", ")", ",", "\\"}


def canon(tree: LabeledTree) -> Canon:
    """Canonical tuple of a whole tree."""
    return canon_of_subtree(tree, tree.root)


def canon_of_subtree(tree: LabeledTree, node: int) -> Canon:
    """Canonical tuple of the subtree of ``tree`` rooted at ``node``.

    Iterative post-order so arbitrarily deep documents (beyond Python's
    recursion limit) canonicalise fine.
    """
    done: dict[int, Canon] = {}
    stack: list[tuple[int, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        kids = tree.child_ids(current)
        if not kids:
            done[current] = (tree.label(current), ())
            continue
        if expanded:
            done[current] = (
                tree.label(current),
                tuple(sorted(done[c] for c in kids)),
            )
        else:
            stack.append((current, True))
            stack.extend((c, False) for c in kids)
    return done[node]


def canon_label(c: Canon) -> str:
    """Root label of a canon tuple."""
    return c[0]


def canon_children(c: Canon) -> tuple[Canon, ...]:
    """Child canon tuples (already sorted)."""
    return c[1]


def canon_size(c: Canon) -> int:
    """Number of nodes in the pattern a canon tuple denotes."""
    total = 1
    stack = list(c[1])
    while stack:
        node = stack.pop()
        total += 1
        stack.extend(node[1])
    return total


def canon_from_nested(spec: NestedSpec) -> Canon:
    """Canon tuple straight from a nested ``(label, [children])`` spec."""
    return canon(LabeledTree.from_nested(spec))


def canon_to_tree(c: Canon) -> LabeledTree:
    """Materialise a canon tuple as a :class:`LabeledTree`.

    Nodes are created in canonical pre-order, so ``canon(canon_to_tree(c))
    == c`` and node 0 is the root.
    """
    tree = LabeledTree(c[0])
    stack = [(0, kid) for kid in reversed(c[1])]
    while stack:
        parent, kid = stack.pop()
        node = tree.add_child(parent, kid[0])
        stack.extend((node, g) for g in reversed(kid[1]))
    return tree


def canonical_preorder(tree: LabeledTree) -> list[int]:
    """Node ids of ``tree`` in *canonical* pre-order.

    Children are visited in the order of their canonical encodings rather
    than insertion order, so isomorphic trees yield label sequences in the
    same order.  The fix-sized decomposition (paper Figure 5) uses this
    ordering so that covering an isomorphism class is deterministic.
    """
    # One iterative post-order pass computes every node's subtree canon.
    canon_memo: dict[int, Canon] = {}
    walk: list[tuple[int, bool]] = [(tree.root, False)]
    while walk:
        node, expanded = walk.pop()
        kids = tree.child_ids(node)
        if not kids:
            canon_memo[node] = (tree.label(node), ())
        elif expanded:
            canon_memo[node] = (
                tree.label(node),
                tuple(sorted(canon_memo[c] for c in kids)),
            )
        else:
            walk.append((node, True))
            walk.extend((c, False) for c in kids)

    order: list[int] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        kids = sorted(tree.child_ids(node), key=canon_memo.__getitem__)
        stack.extend(reversed(kids))
    return order


# ----------------------------------------------------------------------
# String codec
# ----------------------------------------------------------------------


def _escape(label: str) -> str:
    if any(ch in _ESCAPED for ch in label):
        out = []
        for ch in label:
            if ch in _ESCAPED:
                out.append("\\")
            out.append(ch)
        return "".join(out)
    return label


def encode_canon(c: Canon) -> str:
    """Encode a canon tuple as a compact string like ``a(b,c(d))``.

    Iterative over an explicit token stack, so depth is unbounded.
    """
    out: list[str] = []
    stack: list[Canon | str] = [c]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            out.append(item)
            continue
        label, kids = item
        out.append(_escape(label))
        if kids:
            tokens: list[Canon | str] = ["("]
            for i, kid in enumerate(kids):
                if i:
                    tokens.append(",")
                tokens.append(kid)
            tokens.append(")")
            stack.extend(reversed(tokens))
    return "".join(out)


def decode_canon(text: str) -> Canon:
    """Parse the string codec back into a canon tuple.

    The input need not list children in sorted order; the result is
    re-canonicalised, so ``decode_canon`` accepts any hand-written
    pattern string.  Iterative, so arbitrarily deep patterns parse.
    """
    n = len(text)
    pos = 0
    open_labels: list[str] = []
    open_kids: list[list[Canon]] = []
    while True:
        label, pos = _scan_label(text, pos)
        if pos < n and text[pos] == "(":
            open_labels.append(label)
            open_kids.append([])
            pos += 1
            continue
        node: Canon = (label, ())
        while True:
            if pos >= n:
                if open_labels:
                    raise TreeBuildError("unterminated '(' in pattern string")
                return node
            ch = text[pos]
            if ch == ",":
                if not open_kids:
                    raise TreeBuildError(
                        f"trailing garbage at position {pos} in {text!r}"
                    )
                open_kids[-1].append(node)
                pos += 1
                break  # scan the next sibling's label
            if ch == ")":
                if not open_kids:
                    raise TreeBuildError(
                        f"trailing garbage at position {pos} in {text!r}"
                    )
                kids = open_kids.pop()
                kids.append(node)
                node = (open_labels.pop(), tuple(sorted(kids)))
                pos += 1
                continue
            raise TreeBuildError(f"unexpected {ch!r} at position {pos}")


def _scan_label(text: str, pos: int) -> tuple[str, int]:
    """Scan one (possibly escaped) label starting at ``pos``."""
    label_chars: list[str] = []
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == "\\":
            if pos + 1 >= n:
                raise TreeBuildError("dangling escape at end of pattern string")
            label_chars.append(text[pos + 1])
            pos += 2
            continue
        if ch in "(),":
            break
        label_chars.append(ch)
        pos += 1
    label = "".join(label_chars)
    if not label:
        raise TreeBuildError(f"empty label at position {pos} in {text!r}")
    return label, pos


# ----------------------------------------------------------------------
# Pattern interning
# ----------------------------------------------------------------------

#: Array typecode for packed pattern codes: one (label_id, child_count)
#: pair per node, pre-order.  ``H`` (uint16) keeps codes at 4 bytes per
#: node; real XML vocabularies are far below the 65535-label ceiling.
_CODE_TYPECODE = "H"
_CODE_LIMIT = 0xFFFF

#: Footprint charged per interned id held in a lookup table (a small
#: CPython ``int`` object).
_PY_INT_BYTES = sys.getsizeof(1 << 16)


class PatternInterner:
    """Bijective ``Canon`` <-> dense integer id mapping.

    Labels are interned into their own dense id space; each pattern is
    packed once into a pre-order byte string of ``(label_id,
    child_count)`` pairs and assigned the next free id.  Ids are dense
    (``0 .. len(self) - 1``) in first-intern order, and
    ``canon_of(intern(c)) == c`` for every interned canon — the
    round-trip the :class:`~repro.store.ArrayStore` backend and the
    estimators' plan caches rest on.
    """

    __slots__ = ("_labels", "_label_ids", "_codes", "_code_ids")

    def __init__(self) -> None:
        self._labels: list[str] = []
        self._label_ids: dict[str, int] = {}
        self._codes: list[bytes] = []
        self._code_ids: dict[bytes, int] = {}

    # -- labels ---------------------------------------------------------

    def intern_label(self, label: str) -> int:
        """Dense id of ``label``, assigning the next free id if new."""
        got = self._label_ids.get(label)
        if got is None:
            got = len(self._labels)
            if got > _CODE_LIMIT:
                raise ValueError(
                    f"PatternInterner supports at most {_CODE_LIMIT + 1} "
                    "distinct labels"
                )
            self._labels.append(label)
            self._label_ids[label] = got
        return got

    def label_of(self, label_id: int) -> str:
        """Label for a previously assigned label id."""
        if not 0 <= label_id < len(self._labels):
            raise KeyError(f"unknown label id {label_id}")
        return self._labels[label_id]

    @property
    def num_labels(self) -> int:
        return len(self._labels)

    # -- patterns -------------------------------------------------------

    def intern(self, c: Canon) -> int:
        """Dense id of pattern ``c``, assigning the next free id if new."""
        code = self._encode(c)
        got = self._code_ids.get(code)
        if got is None:
            got = len(self._codes)
            self._codes.append(code)
            self._code_ids[code] = got
        return got

    def intern_code(self, code: bytes) -> int:
        """Dense id of a pre-encoded pattern code, assigning if new.

        The fast path for store merges: the caller already holds a
        :meth:`_encode`-format byte string whose label ids agree with
        this interner (foreign codes are remapped first — see
        :meth:`translate_code`), so interning skips the canon walk.
        Label ids inside the code are validated against the label table;
        an out-of-range id raises :class:`KeyError`.
        """
        got = self._code_ids.get(code)
        if got is not None:
            return got
        flat = array(_CODE_TYPECODE)
        flat.frombytes(code)
        limit = len(self._labels)
        for slot in range(0, len(flat), 2):
            if flat[slot] >= limit:
                raise KeyError(
                    f"pattern code names label id {flat[slot]} but this "
                    f"interner holds ids 0..{limit - 1}"
                )
        got = len(self._codes)
        self._codes.append(code)
        self._code_ids[code] = got
        return got

    @staticmethod
    def translate_code(code: bytes, label_map: Sequence[int]) -> bytes:
        """Rewrite a code's label ids through ``label_map`` (old -> new).

        Codes are flat ``(label_id, n_kids)`` pre-order pairs; only the
        even slots name labels, so translation is a positional rewrite
        that preserves the pattern's shape exactly.
        """
        flat = array(_CODE_TYPECODE)
        flat.frombytes(code)
        for slot in range(0, len(flat), 2):
            flat[slot] = label_map[flat[slot]]
        return flat.tobytes()

    def id_of(self, c: Canon) -> int | None:
        """Id of ``c`` if already interned, else ``None`` (no side effects)."""
        flat: list[int] = []
        stack: list[Canon] = [c]
        while stack:
            node = stack.pop()
            label_id = self._label_ids.get(canon_label(node))
            if label_id is None:
                return None  # unseen label: the pattern cannot be interned
            kids = canon_children(node)
            flat.append(label_id)
            flat.append(len(kids))
            stack.extend(reversed(kids))
        return self._code_ids.get(array(_CODE_TYPECODE, flat).tobytes())

    def canon_of(self, pattern_id: int) -> Canon:
        """The canon a dense id was assigned to (inverse of :meth:`intern`)."""
        if not 0 <= pattern_id < len(self._codes):
            raise KeyError(f"unknown pattern id {pattern_id}")
        return self._decode(self._codes[pattern_id])

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, c: Canon) -> bool:
        return self.id_of(c) is not None

    # -- codec ----------------------------------------------------------

    def _encode(self, c: Canon) -> bytes:
        flat: list[int] = []
        stack: list[Canon] = [c]
        while stack:
            node = stack.pop()
            kids = canon_children(node)
            n_kids = len(kids)
            if n_kids > _CODE_LIMIT:
                raise ValueError(
                    f"PatternInterner supports at most {_CODE_LIMIT} "
                    "children per node"
                )
            flat.append(self.intern_label(canon_label(node)))
            flat.append(n_kids)
            stack.extend(reversed(kids))
        return array(_CODE_TYPECODE, flat).tobytes()

    def _decode(self, code: bytes) -> Canon:
        tokens = array(_CODE_TYPECODE)
        tokens.frombytes(code)
        labels = self._labels
        # Open frames: (label, children collected so far, children expected).
        frames: list[tuple[str, list[Canon], int]] = []
        position = 0
        while True:
            label = labels[tokens[position]]
            n_kids = tokens[position + 1]
            position += 2
            if n_kids:
                frames.append((label, [], n_kids))
                continue
            node: Canon = (label, ())
            while frames:
                parent_label, kids, expected = frames[-1]
                kids.append(node)
                if len(kids) < expected:
                    break
                frames.pop()
                # Children were packed in canonical (sorted) order, so the
                # rebuilt tuple is already canonical.
                node = (parent_label, tuple(kids))
            else:
                return node

    # -- accounting and pickling ---------------------------------------

    def byte_size(self) -> int:
        """Actual footprint of the intern tables (codes, ids, labels)."""
        total = (
            sys.getsizeof(self._codes)
            + sys.getsizeof(self._code_ids)
            + sys.getsizeof(self._labels)
            + sys.getsizeof(self._label_ids)
        )
        for code in self._codes:
            total += sys.getsizeof(code)
        for label in self._labels:
            total += sys.getsizeof(label)
        # The id values held by the two lookup dicts.
        total += _PY_INT_BYTES * (len(self._codes) + len(self._labels))
        return total

    def __getstate__(self) -> tuple[list[str], list[bytes]]:
        # The reverse-lookup dicts are derived; rebuild them on load.
        return (self._labels, self._codes)

    def __setstate__(self, state: tuple[list[str], list[bytes]]) -> None:
        labels, codes = state
        self._labels = labels
        self._label_ids = {label: i for i, label in enumerate(labels)}
        self._codes = codes
        self._code_ids = {code: i for i, code in enumerate(codes)}

    @classmethod
    def from_tables(
        cls, labels: list[str], codes: list[bytes]
    ) -> "PatternInterner":
        """Rebuild an interner from its persisted label/code tables."""
        interner = cls()
        interner.__setstate__((labels, codes))
        return interner

    def tables(self) -> tuple[list[str], list[bytes]]:
        """The persistable label/code tables (copies)."""
        return (list(self._labels), list(self._codes))

    def __repr__(self) -> str:
        return (
            f"PatternInterner(patterns={len(self._codes)}, "
            f"labels={len(self._labels)})"
        )


def encode_tree(tree: LabeledTree) -> str:
    """Canonical string encoding of a tree (order-insensitive)."""
    return encode_canon(canon(tree))


def decode_tree(text: str) -> LabeledTree:
    """Parse a pattern string into a :class:`LabeledTree`."""
    return canon_to_tree(decode_canon(text))
