"""Holistic twig join: PathStack streams + root-to-leaf merge.

The third execution engine (after the backtracking enumerator and the
cascaded binary path join of :mod:`repro.trees.twigjoin`), modelled on
the PathStack/TwigStack family of Bruno, Koudas and Srivastava: each
root-to-leaf *branch* of the twig is solved over region-encoded label
streams with a chain of stacks, and branch solutions are then
merge-joined on their shared query prefix.

Semantics note, worth being precise about: the classic holistic join
counts **combinations of path solutions** joined on the spine.  When two
query siblings carry the *same* label this differs from the paper's
Definition 1, which requires the sibling images to be distinct (a match
is an injective mapping).  :meth:`TwigStackJoin.solutions` therefore
takes ``enforce_injectivity`` — ``True`` (default) reproduces
Definition 1 exactly (asserted against ``count_matches`` in the tests),
``False`` gives the raw merge semantics, and the gap between the two is
precisely the duplicate-sibling over-count that the decomposition
formula of Theorem 1 also exhibits (see
``ErrorProfile``'s duplicate-sibling diagnostic).
"""

from __future__ import annotations

from typing import Iterator

from .labeled_tree import LabeledTree
from .regions import Region, RegionIndex
from .twig import TwigQuery

__all__ = ["TwigStackJoin", "path_stack_solutions"]


def path_stack_solutions(
    index: RegionIndex, labels: list[str]
) -> list[tuple[int, ...]]:
    """All parent-child chains matching a label path, via linked stacks.

    A PathStack-style sweep: regions of all the path's labels are merged
    in document order; each arriving region is pushed onto its level's
    stack after popping entries that ended before it starts, and records
    a pointer to the current top of the previous stack when that top is
    its parent.  Full chains are emitted when a region reaches the last
    query level.
    """
    if not labels:
        raise ValueError("empty path")
    streams = [index.stream(label) for label in labels]
    if not all(streams):
        return []

    # Merge all streams into one document-order sequence tagged with the
    # query positions the region can serve (a label may repeat).
    positions_of: dict[str, list[int]] = {}
    for position, label in enumerate(labels):
        positions_of.setdefault(label, []).append(position)
    events: list[tuple[Region, int]] = []
    for label, positions in positions_of.items():
        for region in index.stream(label):
            for position in positions:
                events.append((region, position))
    events.sort(key=lambda item: (item[0].start, item[1]))

    # Stacks of (region, parent_entry_index_in_previous_stack).
    stacks: list[list[tuple[Region, int]]] = [[] for _ in labels]
    solutions: list[tuple[int, ...]] = []

    for region, position in events:
        # Pop finished entries from every stack (regions are visited in
        # start order; an entry is finished when it cannot be an
        # ancestor of the current region).
        for stack in stacks:
            while stack and stack[-1][0].end < region.start:
                stack.pop()
        if position == 0:
            stacks[0].append((region, -1))
        else:
            # All remaining entries of the previous stack enclose the
            # current region (older ones were popped), but with repeated
            # labels the *parent* need not be the top — e.g. the path
            # a/a on a chain x/y pushes y onto stack 0 above x before
            # y@position-1 looks for its parent x.  Scan downward.
            previous = stacks[position - 1]
            parent_index = -1
            for i in range(len(previous) - 1, -1, -1):
                if previous[i][0].is_parent_of(region):
                    parent_index = i
                    break
            if parent_index < 0:
                continue
            stacks[position].append((region, parent_index))
        if position == len(labels) - 1:
            _emit(stacks, region, solutions)
    solutions.sort()
    return solutions


def _emit(
    stacks: list[list[tuple[Region, int]]],
    leaf_region: Region,
    out: list[tuple[int, ...]],
) -> None:
    """Expand the chain ending at ``leaf_region`` through stack pointers.

    With parent-child edges every stack entry has exactly one parent
    pointer, so each leaf arrival contributes exactly one chain (unlike
    the ancestor-descendant variant, which fans out over the stack).
    """
    chain: list[int] = [leaf_region.node]
    pointer = stacks[-1][-1][1]
    for position in range(len(stacks) - 2, -1, -1):
        entry = stacks[position][pointer]
        chain.append(entry[0].node)
        pointer = entry[1]
    out.append(tuple(reversed(chain)))


class TwigStackJoin:
    """Holistic twig evaluation over one document's region index."""

    def __init__(self, document: LabeledTree) -> None:
        self.document = document
        self.index = RegionIndex(document)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def solutions(
        self,
        query: TwigQuery | LabeledTree,
        *,
        enforce_injectivity: bool = True,
    ) -> Iterator[dict[int, int]]:
        """Yield twig solutions as ``{query node -> document node}``.

        Branch path solutions are computed independently and hash-joined
        on the query nodes they share; with ``enforce_injectivity`` the
        combined assignment must also be injective (Definition 1).
        """
        qtree = query.tree if isinstance(query, TwigQuery) else query
        branches = _branches(qtree)
        branch_solutions: list[list[dict[int, int]]] = []
        for branch in branches:
            labels = [qtree.label(qnode) for qnode in branch]
            chains = path_stack_solutions(self.index, labels)
            if not chains:
                return
            branch_solutions.append(
                [dict(zip(branch, chain)) for chain in chains]
            )

        partial: list[dict[int, int]] = branch_solutions[0]
        bound: set[int] = set(branches[0])
        for branch, solutions in zip(branches[1:], branch_solutions[1:]):
            shared = [qnode for qnode in branch if qnode in bound]
            table: dict[tuple[int, ...], list[dict[int, int]]] = {}
            for solution in solutions:
                key = tuple(solution[qnode] for qnode in shared)
                table.setdefault(key, []).append(solution)
            merged: list[dict[int, int]] = []
            for left in partial:
                key = tuple(left[qnode] for qnode in shared)
                for right in table.get(key, ()):
                    combined = dict(left)
                    combined.update(right)
                    merged.append(combined)
            partial = merged
            bound.update(branch)
            if not partial:
                return

        for solution in partial:
            if enforce_injectivity and len(set(solution.values())) != len(solution):
                continue
            yield solution

    def count(
        self,
        query: TwigQuery | LabeledTree,
        *,
        enforce_injectivity: bool = True,
    ) -> int:
        """Number of twig solutions (== Definition 1 when injective)."""
        return sum(
            1
            for _solution in self.solutions(
                query, enforce_injectivity=enforce_injectivity
            )
        )


def _branches(qtree: LabeledTree) -> list[list[int]]:
    """Root-to-leaf query node sequences, leftmost first."""
    branches: list[list[int]] = []
    stack: list[tuple[int, list[int]]] = [(qtree.root, [qtree.root])]
    while stack:
        node, path = stack.pop()
        kids = qtree.child_ids(node)
        if not kids:
            branches.append(path)
            continue
        for child in reversed(kids):
            stack.append((child, path + [child]))
    return list(reversed(branches))
