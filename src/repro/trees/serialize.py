"""XML serialisation for labeled trees.

The paper models an XML document as a rooted node-labeled tree, ignoring
values and IDREFs.  This module converts between that model and real XML
text: parsing keeps element tags and drops text content and attributes
(mirroring the paper's "we do not model value elements"), with an option
to lift attributes into child nodes for datasets where attributes carry
structure.

All functions work with :mod:`xml.etree.ElementTree` under the hood, so
any well-formed XML handled by the standard library round-trips.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from pathlib import Path

from .labeled_tree import LabeledTree

__all__ = [
    "tree_from_xml",
    "tree_from_xml_file",
    "tree_to_xml",
    "tree_to_xml_file",
    "tree_from_element",
    "tree_to_element",
    "xml_byte_size",
]


def _strip_namespace(tag: str) -> str:
    """Strip a ``{namespace}`` prefix, keeping the local element name."""
    if tag.startswith("{"):
        return tag.rpartition("}")[2]
    return tag


def tree_from_element(
    element: ET.Element, include_attributes: bool = False
) -> LabeledTree:
    """Convert an ElementTree element into a :class:`LabeledTree`.

    Parameters
    ----------
    element:
        Root element of the parsed document.
    include_attributes:
        When true, every attribute ``name="value"`` becomes a child node
        labelled ``@name`` (the value is still dropped — the model is
        structural).
    """
    tree = LabeledTree(_strip_namespace(element.tag))
    stack = [(element, 0)]
    while stack:
        elem, node = stack.pop()
        if include_attributes:
            for name in elem.attrib:
                tree.add_child(node, "@" + _strip_namespace(name))
        for child in elem:
            child_node = tree.add_child(node, _strip_namespace(child.tag))
            stack.append((child, child_node))
    return tree


def tree_from_xml(text: str | bytes, include_attributes: bool = False) -> LabeledTree:
    """Parse XML text into a :class:`LabeledTree`."""
    return tree_from_element(ET.fromstring(text), include_attributes)


def tree_from_xml_file(
    path: str | Path, include_attributes: bool = False
) -> LabeledTree:
    """Parse an XML file into a :class:`LabeledTree` (iterparse; low memory)."""
    # iterparse lets us discard completed elements immediately, which
    # matters for documents in the hundreds of megabytes.  "start"/"end"
    # events arrive in document order, so a stack of open node ids gives
    # each element its parent directly.
    tree: LabeledTree | None = None
    open_nodes: list[int] = []
    for event, elem in ET.iterparse(str(path), events=("start", "end")):
        if event == "start":
            tag = _strip_namespace(elem.tag)
            if tree is None:
                tree = LabeledTree(tag)
                node = 0
            else:
                node = tree.add_child(open_nodes[-1], tag)
            if include_attributes:
                for name in elem.attrib:
                    tree.add_child(node, "@" + _strip_namespace(name))
            open_nodes.append(node)
        else:
            open_nodes.pop()
            elem.clear()
    if tree is None:
        raise ValueError("empty XML document")
    return tree


def tree_to_element(tree: LabeledTree) -> ET.Element:
    """Convert a :class:`LabeledTree` back into an ElementTree element.

    Labels beginning with ``@`` become attributes (with empty values) on
    their parent, inverting ``include_attributes=True`` parsing.
    """
    root = ET.Element(tree.label(0))
    elems = {0: root}
    for node in tree.preorder():
        if node == 0:
            continue
        label = tree.label(node)
        parent_elem = elems[tree.parent(node)]
        if label.startswith("@"):
            parent_elem.set(label[1:], "")
        else:
            elems[node] = ET.SubElement(parent_elem, label)
    return root


def tree_to_xml(tree: LabeledTree) -> str:
    """Serialise a tree as XML text."""
    return ET.tostring(tree_to_element(tree), encoding="unicode")


def tree_to_xml_file(tree: LabeledTree, path: str | Path) -> int:
    """Write a tree as XML; returns the number of bytes written."""
    data = tree_to_xml(tree).encode("utf-8")
    Path(path).write_bytes(data)
    return len(data)


def xml_byte_size(tree: LabeledTree) -> int:
    """Size in bytes of the tree's XML serialisation (Table 1 reporting)."""
    buf = io.BytesIO()
    ET.ElementTree(tree_to_element(tree)).write(buf, encoding="utf-8")
    return buf.tell()
