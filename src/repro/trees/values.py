"""Value-predicate support via bucketed value labels (extension).

The paper models structure only and lists "twig queries with value
predicates" as future work (§6).  This module provides the standard
bridge: leaf text values are hashed into a fixed number of buckets and
materialised as synthetic child nodes labeled ``label=bucket``.  A value
predicate then becomes ordinary structure, and the whole TreeLattice
machinery — mining, lattice, decomposition, pruning — applies unchanged.

Example: ``<price>1200</price>`` with 8 buckets becomes::

    price
    └── price=b3        (b3 = bucket of "1200")

and the query ``//laptop[price = 1200]`` is the structural twig
``laptop(price(price=b3))``.

Equality predicates only — range predicates would need order-preserving
bucketing (histograms), which is beyond the paper's scope.  Bucketing is
deterministic (``zlib.crc32``), so query-side and load-side bucketing
always agree across processes and runs.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
import zlib

from .labeled_tree import LabeledTree
from .serialize import _strip_namespace
from .twig import TwigQuery

__all__ = ["value_bucket", "value_label", "tree_from_xml_with_values", "value_twig"]

#: Default number of value buckets.
DEFAULT_BUCKETS = 16


def value_bucket(value: str, buckets: int = DEFAULT_BUCKETS) -> int:
    """Deterministic bucket index of a text value."""
    if buckets < 1:
        raise ValueError("need at least one bucket")
    return zlib.crc32(value.strip().encode("utf-8")) % buckets


def value_label(element_label: str, value: str, buckets: int = DEFAULT_BUCKETS) -> str:
    """The synthetic node label carrying a bucketed value."""
    return f"{element_label}=b{value_bucket(value, buckets)}"


def tree_from_xml_with_values(
    text: str | bytes, buckets: int = DEFAULT_BUCKETS
) -> LabeledTree:
    """Parse XML keeping bucketed leaf values as synthetic child nodes.

    Only *leaf* element text becomes a value node (mirroring the paper's
    observation that "values are almost always associated with leaf
    nodes"); mixed content on interior elements is ignored as before.
    """
    root = ET.fromstring(text)
    tree = LabeledTree(_strip_namespace(root.tag))
    stack = [(root, 0)]
    while stack:
        element, node = stack.pop()
        children = list(element)
        if not children:
            value = (element.text or "").strip()
            if value:
                tree.add_child(
                    node, value_label(_strip_namespace(element.tag), value, buckets)
                )
            continue
        for child in children:
            child_node = tree.add_child(node, _strip_namespace(child.tag))
            stack.append((child, child_node))
    return tree


def value_twig(
    xpath: str,
    predicates: dict[str, str],
    buckets: int = DEFAULT_BUCKETS,
) -> TwigQuery:
    """Build a twig with equality value predicates.

    ``predicates`` maps a *leaf label occurring in the twig* to the
    required value; each named leaf gets a bucketed value child.

    >>> q = value_twig("/laptop[brand][price]", {"price": "1200"})
    >>> # q matches laptops whose price text falls in bucket("1200")
    """
    query = TwigQuery.parse(xpath)
    tree = query.tree.copy()
    remaining = dict(predicates)
    for node in range(tree.size):
        label = tree.label(node)
        if label in remaining:
            tree.add_child(node, value_label(label, remaining.pop(label), buckets))
    if remaining:
        missing = ", ".join(sorted(remaining))
        raise ValueError(f"predicate labels not found in the twig: {missing}")
    return TwigQuery(tree)
