"""Positional region encoding for XML trees.

The classic interval labeling used by XML join algorithms (Zhang et al.,
Al-Khalifa et al., and the TwigStack family): each node gets
``(start, end, level)`` where ``start``/``end`` delimit its pre-order
interval.  Structural relationships reduce to arithmetic:

* ``u`` is an ancestor of ``v``  ⇔  ``start(u) < start(v) <= end(v) <= end(u)``
* ``u`` is the parent of ``v``   ⇔  ancestor ∧ ``level(v) == level(u) + 1``
* document order                ⇔  ``start`` order

The twig-join engine (:mod:`repro.trees.twigjoin`) works entirely on
these encodings plus per-label streams, the way a real XML database
would read them off an element index rather than the document tree.

The same interval arithmetic drives document **sharding**
(:func:`plan_shards`): subtree sizes fall out of ``end - start + 1``,
so the planner can walk down from the root splitting oversized
subtrees until every shard fits a size target — the region-organised
storage shape native XML engines use, applied to mining fan-out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .labeled_tree import LabeledTree

__all__ = ["Region", "RegionIndex", "ShardPlan", "plan_shards"]


@dataclass(frozen=True, order=True)
class Region:
    """Interval label of one document node."""

    start: int
    end: int
    level: int
    node: int

    def is_ancestor_of(self, other: "Region") -> bool:
        """Proper ancestor test (a node is not its own ancestor)."""
        return self.start < other.start and other.end <= self.end

    def is_parent_of(self, other: "Region") -> bool:
        return self.is_ancestor_of(other) and other.level == self.level + 1

    def contains(self, other: "Region") -> bool:
        """Ancestor-or-self test."""
        return self.start <= other.start and other.end <= self.end


class RegionIndex:
    """Region encodings plus per-label streams for a document.

    ``streams[label]`` lists the regions of all nodes with ``label`` in
    document (pre-order) order — the access-path shape every structural
    join algorithm assumes.
    """

    __slots__ = ("tree", "regions", "streams")

    def __init__(self, tree: LabeledTree) -> None:
        self.tree = tree
        self.regions: list[Region] = [None] * tree.size  # type: ignore[list-item]
        self.streams: dict[str, list[Region]] = {}
        self._encode()

    def _encode(self) -> None:
        tree = self.tree
        counter = 0
        # Iterative pre/post traversal assigning start on entry, end on exit.
        stack: list[tuple[int, int, bool]] = [(tree.root, 0, False)]
        starts: dict[int, int] = {}
        while stack:
            node, level, done = stack.pop()
            if done:
                # On exit, counter equals the largest start assigned in
                # this node's subtree — exactly the interval end.
                self.regions[node] = Region(starts[node], counter, level, node)
                continue
            counter += 1
            starts[node] = counter
            stack.append((node, level, True))
            for child in reversed(tree.children[node]):
                stack.append((child, level + 1, False))
        # counter holds the max start; 'end' above used the counter value
        # at exit time, which equals the max start in the subtree.
        for node in tree.preorder():
            self.streams.setdefault(tree.labels[node], []).append(
                self.regions[node]
            )

    def region(self, node: int) -> Region:
        return self.regions[node]

    def stream(self, label: str) -> list[Region]:
        """Document-order regions of all ``label`` nodes (empty if none)."""
        return self.streams.get(label, [])

    def subtree_size(self, node: int) -> int:
        """Number of nodes in ``node``'s subtree (self included)."""
        region = self.regions[node]
        return region.end - region.start + 1


@dataclass(frozen=True)
class ShardPlan:
    """Partition of a document into disjoint shard subtrees + residue.

    ``roots`` are subtree roots in document order whose subtrees are
    pairwise disjoint; ``residue`` holds every node outside all shard
    subtrees (the split "spine": ancestors of the shard roots), also in
    document order.  Together they partition the node set exactly —
    :func:`repro.mining.sharded.mine_lattice_sharded` mines each shard
    subtree independently and counts residue-rooted pattern occurrences
    once against the full document, so no occurrence is lost or double
    counted.
    """

    roots: tuple[int, ...]
    residue: tuple[int, ...]
    #: Requested shard granularity (the planner may return more roots
    #: than this when fanout forces it, or fewer for tiny documents).
    requested: int

    @property
    def num_shards(self) -> int:
        return len(self.roots)


def plan_shards(
    tree: LabeledTree, shards: int, *, index: RegionIndex | None = None
) -> ShardPlan:
    """Split ``tree`` into ~``shards`` disjoint subtree shards.

    Walks down from the root: a subtree no bigger than
    ``ceil(size / shards)`` (or a leaf) becomes a shard root; an
    oversized internal node joins the residue and its children are
    considered instead.  ``shards=1`` degenerates to one shard holding
    the whole document and an empty residue, which makes the sharded
    mining path collapse to the serial one.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    regions = index if index is not None else RegionIndex(tree)
    target = math.ceil(tree.size / shards)
    roots: list[int] = []
    residue: list[int] = []
    # Stack seeded with the root; children pushed in reverse keep the
    # traversal (and therefore roots/residue) in document order.
    stack: list[int] = [tree.root]
    while stack:
        node = stack.pop()
        children = tree.children[node]
        if regions.subtree_size(node) <= target or not children:
            roots.append(node)
            continue
        residue.append(node)
        for child in reversed(children):
            stack.append(child)
    return ShardPlan(roots=tuple(roots), residue=tuple(residue), requested=shards)
