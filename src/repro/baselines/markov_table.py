"""Markov table path-selectivity baseline (Lore / Aboulnaga et al.).

The classical approach TreeLattice generalises: store the counts of all
distinct label paths of length up to ``m`` and estimate longer paths
with the order-``(m-1)`` Markov assumption

    ŝ(t1/.../tn) = s(t1..tm) * Π_i s(t_i..t_{i+m-1}) / s(t_i..t_{i+m-2})

Path statistics are gathered in one document pass (every node contributes
one path of each length up to ``m`` ending at it).  The Markov *table*
refinement of Aboulnaga et al. adds pruning under a memory budget: paths
with counts below a frequency threshold are discarded and pooled into a
per-length ``(*)`` bucket whose average count answers lookups for pruned
or unseen paths.

Path-only by design: branching twigs raise ``ValueError``, which is the
baseline's documented limitation (and the paper's motivation).
"""

from __future__ import annotations

from ..core.estimator import SelectivityEstimator
from ..trees.labeled_tree import LabeledTree

__all__ = ["MarkovTable"]


class MarkovTable(SelectivityEstimator):
    """Order-``m`` Markov path statistics with optional low-count pruning."""

    name = "markov-table"

    def __init__(
        self,
        path_counts: dict[tuple[str, ...], int],
        order: int,
        *,
        prune_below: int = 0,
    ) -> None:
        if order < 2:
            raise ValueError("Markov order must be >= 2")
        self.order = order
        self.prune_below = prune_below
        self._gram_counts: dict[tuple[str, ...], int] = {}
        # Pruned paths are pooled per length into a star bucket storing
        # (total pruned count, number of pruned paths).
        self._star: dict[int, tuple[int, int]] = {}
        for path, count in path_counts.items():
            if prune_below and count < prune_below and len(path) > 1:
                total, num = self._star.get(len(path), (0, 0))
                self._star[len(path)] = (total + count, num + 1)
            else:
                self._gram_counts[path] = count

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, document: LabeledTree, order: int = 2, *, prune_below: int = 0
    ) -> "MarkovTable":
        """Collect all path statistics of length ≤ ``order`` from a document."""
        if order < 2:
            raise ValueError("Markov order must be >= 2")
        counts: dict[tuple[str, ...], int] = {}
        labels = document.labels
        parents = document.parents
        # ancestors[node] is filled before its children because preorder
        # visits parents first.
        suffix: list[tuple[str, ...]] = [()] * document.size
        for node in document.preorder():
            parent = parents[node]
            base = suffix[parent] if parent != -1 else ()
            chain = (base + (labels[node],))[-order:]
            suffix[node] = chain
            for start in range(len(chain)):
                path = chain[start:]
                counts[path] = counts.get(path, 0) + 1
        return cls(counts, order, prune_below=prune_below)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_paths(self) -> int:
        return len(self._gram_counts)

    def byte_size(self) -> int:
        """Approximate serialised size (labels + 8-byte counts)."""
        return sum(
            sum(len(label) for label in path) + len(path) + 8
            for path in self._gram_counts
        ) + 16 * len(self._star)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _estimate_tree(self, tree: LabeledTree) -> float:
        labels = self._linear_labels(tree)
        m = self.order
        if len(labels) <= m:
            return self._path_count(tuple(labels))
        estimate = self._path_count(tuple(labels[:m]))
        for i in range(1, len(labels) - m + 1):
            window = tuple(labels[i : i + m])
            overlap = tuple(labels[i : i + m - 1])
            overlap_count = self._path_count(overlap)
            if overlap_count == 0:
                return 0.0
            estimate *= self._path_count(window) / overlap_count
        return estimate

    def _path_count(self, path: tuple[str, ...]) -> float:
        got = self._gram_counts.get(path)
        if got is not None:
            return float(got)
        total, num = self._star.get(len(path), (0, 0))
        if num:
            return total / num
        return 0.0

    @staticmethod
    def _linear_labels(tree: LabeledTree) -> list[str]:
        labels: list[str] = []
        node = tree.root
        while True:
            labels.append(tree.label(node))
            kids = tree.child_ids(node)
            if not kids:
                return labels
            if len(kids) > 1:
                raise ValueError(
                    "MarkovTable is a path-only estimator; it cannot handle "
                    "branching twig queries (the paper's key motivation)"
                )
            node = kids[0]

    def __repr__(self) -> str:
        return f"MarkovTable(order={self.order}, paths={self.num_paths})"
