"""Baseline estimators the paper compares against (or subsumes)."""

from .cst import CorrelatedPathTree
from .markov_table import MarkovTable
from .pathtree import PathTree, PathTreeNode
from .treesketch import SketchVertex, TreeSketch
from .xsketch import XSketch, backward_stable_partition

__all__ = [
    "CorrelatedPathTree",
    "MarkovTable",
    "PathTree",
    "PathTreeNode",
    "SketchVertex",
    "TreeSketch",
    "XSketch",
    "backward_stable_partition",
]
