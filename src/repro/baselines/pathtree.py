"""Path tree baseline (Aboulnaga et al.).

A *path tree* is the summarised form of the data tree in which every
distinct root-to-node label path is one node annotated with the number of
document nodes reachable by it.  Unsummarised it answers any linear path
query exactly (a path match is determined by its end node, whose
root-path fixes every ancestor label); its weakness — and the reason the
Markov table beat it on real data — appears under a memory budget, when
low-frequency sibling branches are coalesced into ``*`` nodes whose
counts are averaged.

Path-only by design; branching twigs raise ``ValueError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.estimator import SelectivityEstimator
from ..trees.labeled_tree import LabeledTree

__all__ = ["PathTree", "PathTreeNode"]

STAR = "*"


@dataclass
class PathTreeNode:
    """One distinct root label path, with its node count."""

    label: str
    count: int
    children: dict[str, "PathTreeNode"] = field(default_factory=dict)
    #: number of distinct coalesced siblings when this is a ``*`` node
    coalesced: int = 1

    def total_nodes(self) -> int:
        return 1 + sum(c.total_nodes() for c in self.children.values())


class PathTree(SelectivityEstimator):
    """Summarised path tree estimator for linear path queries."""

    name = "path-tree"

    def __init__(self, root: PathTreeNode) -> None:
        self.root = root

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, document: LabeledTree, *, prune_below: int = 0
    ) -> "PathTree":
        """Aggregate the document into a path tree.

        ``prune_below`` coalesces, at each path-tree node, the child
        branches whose count falls below the threshold into a single
        ``*`` child carrying their *average* count (the lossy
        summarisation step that trades accuracy for space).
        """
        root = PathTreeNode(document.label(0), 0)
        node_of = {0: root}
        for node in document.preorder():
            if node == 0:
                root.count += 1
                continue
            parent_entry = node_of[document.parent(node)]
            label = document.label(node)
            entry = parent_entry.children.get(label)
            if entry is None:
                entry = PathTreeNode(label, 0)
                parent_entry.children[label] = entry
            entry.count += 1
            node_of[node] = entry
        if prune_below:
            _coalesce(root, prune_below)
        return cls(root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.root.total_nodes()

    def byte_size(self) -> int:
        """Approximate size: label bytes + count + child pointer per node."""

        def walk(node: PathTreeNode) -> int:
            size = len(node.label) + 8 + 8 * len(node.children)
            return size + sum(walk(c) for c in node.children.values())

        return walk(self.root)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _estimate_tree(self, tree: LabeledTree) -> float:
        labels = _linear_labels(tree)
        # A (possibly non-root-anchored) path query matches wherever the
        # label sequence appears; walk every path-tree node as a
        # potential anchor.
        total = 0.0
        stack = [self.root]
        anchors: list[PathTreeNode] = []
        while stack:
            entry = stack.pop()
            anchors.append(entry)
            stack.extend(entry.children.values())
        for anchor in anchors:
            total += self._from_anchor(anchor, labels)
        return total

    def _from_anchor(self, entry: PathTreeNode, labels: list[str]) -> float:
        if not _label_matches(entry.label, labels[0]):
            return 0.0
        # Expected matches following this branch: the count at the final
        # step, scaled down when star nodes averaged multiple branches.
        scale = 1.0
        current = entry
        for label in labels[1:]:
            child = current.children.get(label)
            if child is None:
                child = current.children.get(STAR)
                if child is None:
                    return 0.0
                scale /= child.coalesced
            current = child
        return current.count * scale

    def __repr__(self) -> str:
        return f"PathTree(nodes={self.num_nodes})"


def _label_matches(entry_label: str, query_label: str) -> bool:
    return entry_label == query_label or entry_label == STAR


def _linear_labels(tree: LabeledTree) -> list[str]:
    labels: list[str] = []
    node = tree.root
    while True:
        labels.append(tree.label(node))
        kids = tree.child_ids(node)
        if not kids:
            return labels
        if len(kids) > 1:
            raise ValueError(
                "PathTree is a path-only estimator; it cannot handle "
                "branching twig queries"
            )
        node = kids[0]


def _coalesce(entry: PathTreeNode, threshold: int) -> None:
    """Recursively pool low-count children into a ``*`` branch."""
    for child in list(entry.children.values()):
        _coalesce(child, threshold)
    low = [
        label
        for label, child in entry.children.items()
        if child.count < threshold and label != STAR
    ]
    if len(low) < 2:
        return
    pooled_count = 0
    pooled_children: dict[str, PathTreeNode] = {}
    for label in low:
        child = entry.children.pop(label)
        pooled_count += child.count
        # Merge grandchildren by label, summing counts (coarse but
        # faithful to the original's lossy aggregation).
        for grand_label, grand in child.children.items():
            existing = pooled_children.get(grand_label)
            if existing is None:
                pooled_children[grand_label] = grand
            else:
                existing.count += grand.count
    star = PathTreeNode(STAR, pooled_count // len(low) or 1)
    star.children = pooled_children
    star.coalesced = len(low)
    entry.children[STAR] = star
