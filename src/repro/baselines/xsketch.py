"""XSketch baseline: stability-driven graph synopsis (Polyzotis et al.).

TreeSketches' predecessor (paper §2.2): a graph synopsis whose vertices
are refined toward *backward stability* — every node in a vertex has its
parent in the same other vertex — top-down from the label partition,
instead of TreeSketches' bottom-up count-stability clustering.  Where
the partition is backward-stable the per-edge child-count averages are
exact for downward paths; where the budget stops refinement early, the
same averaging error as in Figure 11 appears.

Estimation is the standard averaged-embedding computation shared with
:class:`~repro.baselines.treesketch.TreeSketch` — the two systems differ
in how the partition is built, which is exactly the axis the paper's
related-work comparison isolates (TreeSketches "outperforms its
predecessors ... in terms of both accuracy and construction time").
Construction here is a fixpoint refinement: split every vertex whose
nodes disagree on their parent vertex, finest-first, until stable or the
byte budget is hit.
"""

from __future__ import annotations

import time

from ..trees.labeled_tree import LabeledTree
from .treesketch import (
    TreeSketch,
    _materialise,
    _merge_to_budget,
    _partition_bytes,
    _partition_stats,
)

__all__ = ["XSketch", "backward_stable_partition"]


def backward_stable_partition(
    document: LabeledTree, budget_bytes: int, max_rounds: int = 64
) -> list[int]:
    """Refine the label partition toward backward stability.

    Each round reassigns every node to the class
    ``(label, parent's class)``; at the fixpoint every vertex has all
    its nodes' parents in one vertex.  Refinement stops early when the
    synopsis byte size would exceed the budget.
    """
    labels = document.labels
    parents = document.parents

    # Round 0: the label partition.
    class_ids: dict[str, int] = {}
    group_of = [0] * document.size
    for node, label in enumerate(labels):
        group = class_ids.setdefault(label, len(class_ids))
        group_of[node] = group

    for _round in range(max_rounds):
        extents, edges = _partition_stats(document, group_of)
        if _partition_bytes(len(extents), len(edges)) > budget_bytes:
            break
        refined: dict[tuple[str, int], int] = {}
        new_group_of = [0] * document.size
        for node in document.preorder():
            parent = parents[node]
            parent_group = -1 if parent == -1 else new_group_of[parent]
            key = (labels[node], parent_group)
            group = refined.setdefault(key, len(refined))
            new_group_of[node] = group
        if len(refined) == len(extents):
            group_of = new_group_of
            break  # fixpoint: fully backward-stable
        # Check the refined partition still fits before committing.
        r_extents, r_edges = _partition_stats(document, new_group_of)
        if _partition_bytes(len(r_extents), len(r_edges)) > budget_bytes:
            break
        group_of = new_group_of
    return group_of


class XSketch(TreeSketch):
    """Backward-stability graph synopsis (TreeSketches' predecessor)."""

    name = "XSketch"

    @classmethod
    def build(
        cls,
        document: LabeledTree,
        budget_bytes: int = 50 * 1024,
        *,
        max_rounds: int = 64,
        refinement_rounds: int = 0,  # signature-compatible; unused
    ) -> "XSketch":
        """Build by top-down stability refinement within the budget."""
        start = time.perf_counter()
        group_of = backward_stable_partition(document, budget_bytes, max_rounds)
        # If the last committed refinement overshot (possible when the
        # label partition itself is over budget), merge back down.
        group_of = _merge_to_budget(document, group_of, budget_bytes)
        vertices = _materialise(document, group_of)
        elapsed = time.perf_counter() - start
        return cls(vertices, budget_bytes=budget_bytes, construction_seconds=elapsed)
