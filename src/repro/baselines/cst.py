"""Correlated Sub-path Tree (CST) baseline — Chen et al., ICDE 2001.

The first published twig-count estimator and the oldest comparator the
paper discusses (§2.2).  CST stores the counts of all label paths up to
a maximum length, and — its distinctive idea — a *set-hashing signature*
per path so that the correlation between the branches of a twig can be
estimated instead of assumed away.

This implementation keeps the published architecture:

* **path statistics**: for every downward label path up to
  ``max_path_length``: its match count, the number of distinct document
  nodes rooting a match (the *root set* size), and
* **set-hashing signature**: a min-hash signature of the root set
  (``signature_size`` independent salted hashes), supporting pairwise
  resemblance estimates ``R = |A ∩ B| / |A ∪ B|``.

Twig estimation walks the query top-down: single-child chains consume
the longest stored path in one exact step, and at every *branching*
node the children's root sets are intersected — the independence
product corrected by the geometric mean of the pairwise
signature-estimated correlation ratios — before multiplying the
per-anchor branch multiplicities.  Chains longer than the stored length
chain segment estimates, i.e. the Markov assumption on the tail, as in
the original.

The paper's own evaluation (via Polyzotis et al.) found CST weaker than
both XSketches and Markov-model approaches; it is provided here so that
ablation benchmarks can reproduce that ordering.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..core.estimator import SelectivityEstimator
from ..trees.labeled_tree import LabeledTree

__all__ = ["CorrelatedPathTree"]

_MAX_HASH = 0xFFFFFFFF


@dataclass
class _PathStat:
    """Statistics of one stored label path."""

    count: int = 0           # number of matching chains
    root_set_size: int = 0   # distinct nodes rooting a match
    signature: list[int] | None = None


class CorrelatedPathTree(SelectivityEstimator):
    """CST: path statistics plus set-hashing correlation signatures."""

    name = "CST"

    def __init__(
        self,
        stats: dict[tuple[str, ...], _PathStat],
        max_path_length: int,
        signature_size: int,
    ) -> None:
        self._stats = stats
        self.max_path_length = max_path_length
        self.signature_size = signature_size

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        document: LabeledTree,
        *,
        max_path_length: int = 4,
        signature_size: int = 32,
    ) -> "CorrelatedPathTree":
        """Collect path statistics and signatures in one document pass."""
        if max_path_length < 1:
            raise ValueError("max_path_length must be >= 1")
        if signature_size < 1:
            raise ValueError("signature_size must be >= 1")

        counts: dict[tuple[str, ...], int] = {}
        root_sets: dict[tuple[str, ...], set[int]] = {}
        labels = document.labels
        parents = document.parents

        # ancestors chain per node (limited to max_path_length).
        chain: list[tuple[int, ...]] = [()] * document.size
        for node in document.preorder():
            parent = parents[node]
            base = chain[parent] if parent != -1 else ()
            ids = (base + (node,))[-max_path_length:]
            chain[node] = ids
            for start in range(len(ids)):
                path = tuple(labels[i] for i in ids[start:])
                counts[path] = counts.get(path, 0) + 1
                root_sets.setdefault(path, set()).add(ids[start])

        stats: dict[tuple[str, ...], _PathStat] = {}
        for path, count in counts.items():
            roots = root_sets[path]
            stats[path] = _PathStat(
                count=count,
                root_set_size=len(roots),
                signature=_minhash(roots, signature_size),
            )
        return cls(stats, max_path_length, signature_size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_paths(self) -> int:
        return len(self._stats)

    def byte_size(self) -> int:
        """Approximate size: labels + two counts + the signature."""
        total = 0
        for path in self._stats:
            total += sum(len(label) for label in path) + len(path)
            total += 16 + 4 * self.signature_size
        return total

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _estimate_tree(self, tree: LabeledTree) -> float:
        root_stat = self._stats.get((tree.label(tree.root),))
        if root_stat is None:
            return 0.0
        return root_stat.count * self._per_anchor(tree, tree.root)

    def _per_anchor(self, tree: LabeledTree, qnode: int) -> float:
        """Expected matches of the query subtree at ``qnode`` per document
        node carrying its label.

        Chains consume the longest stored path in one step (using its
        exact count); at every *branching* node the children's root sets
        are intersected via the independence product corrected by the
        signatures' pairwise correlation ratios — CST's set hashing
        applied at each divergence point, not only the twig root.
        """
        kids = tree.child_ids(qnode)
        if not kids:
            return 1.0
        if len(kids) == 1:
            # Maximal single-child chain, capped at the stored length.
            labels = [tree.label(qnode)]
            walk = qnode
            while (
                len(labels) < self.max_path_length
                and len(tree.child_ids(walk)) == 1
            ):
                walk = tree.child_ids(walk)[0]
                labels.append(tree.label(walk))
            stat = self._stats.get(tuple(labels))
            base = self._stats.get((labels[0],))
            if stat is None or base is None or base.count == 0:
                return 0.0
            # count / N(label) = anchor fraction x per-anchor multiplicity.
            return (stat.count / base.count) * self._per_anchor(tree, walk)

        # Branching node: 2-step path stats per child.
        parent_label = tree.label(qnode)
        base = self._stats.get((parent_label,))
        if base is None or base.count == 0:
            return 0.0
        n_parent = base.count
        child_stats: list[_PathStat] = []
        multiplicities: list[float] = []
        for kid in kids:
            stat = self._stats.get((parent_label, tree.label(kid)))
            if stat is None or stat.root_set_size == 0:
                return 0.0
            child_stats.append(stat)
            below = self._per_anchor(tree, kid)
            if below <= 0.0:
                return 0.0
            multiplicities.append((stat.count / stat.root_set_size) * below)

        joint_fraction = 1.0
        for stat in child_stats:
            joint_fraction *= stat.root_set_size / n_parent
        joint_fraction *= _correlation_correction(child_stats, n_parent)
        joint_fraction = min(
            joint_fraction,
            min(stat.root_set_size for stat in child_stats) / n_parent,
        )

        estimate = joint_fraction
        for multiplicity in multiplicities:
            estimate *= multiplicity
        return max(0.0, estimate)

    def __repr__(self) -> str:
        return (
            f"CorrelatedPathTree(paths={self.num_paths}, "
            f"L={self.max_path_length}, h={self.signature_size})"
        )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _root_to_leaf_paths(tree: LabeledTree) -> list[list[str]]:
    """Label sequences of every root-to-leaf path of the twig."""
    paths: list[list[str]] = []
    stack: list[tuple[int, list[str]]] = [(tree.root, [tree.label(tree.root)])]
    while stack:
        node, labels = stack.pop()
        kids = tree.child_ids(node)
        if not kids:
            paths.append(labels)
            continue
        for child in reversed(kids):
            stack.append((child, labels + [tree.label(child)]))
    return paths


def _minhash(nodes: set[int], size: int) -> list[int]:
    """Deterministic min-hash signature of a node-id set."""
    signature = [_MAX_HASH] * size
    for node in nodes:
        payload = node.to_bytes(8, "little")
        for i in range(size):
            value = zlib.crc32(payload, i * 2654435761 & _MAX_HASH)
            if value < signature[i]:
                signature[i] = value
    return signature


def _resemblance(a: list[int], b: list[int]) -> float:
    """Estimated Jaccard similarity from two min-hash signatures."""
    equal = sum(1 for x, y in zip(a, b) if x == y)
    return equal / len(a)


def _pairwise_intersection(a: _PathStat, b: _PathStat) -> float:
    """|A ∩ B| from signatures: R * |A ∪ B| with |A ∪ B| from R."""
    if a.signature is None or b.signature is None:
        return 0.0
    r = _resemblance(a.signature, b.signature)
    if r <= 0.0:
        return 0.0
    union = (a.root_set_size + b.root_set_size) / (1.0 + r)
    return r * union


def _correlation_correction(stats: list[_PathStat], n_roots: int) -> float:
    """Geometric-mean ratio of observed to independence-predicted
    pairwise intersections — the CST signatures' contribution."""
    import math

    ratios: list[float] = []
    for i in range(len(stats)):
        for j in range(i + 1, len(stats)):
            predicted = stats[i].root_set_size * stats[j].root_set_size / n_roots
            if predicted <= 0:
                continue
            observed = _pairwise_intersection(stats[i], stats[j])
            ratios.append(max(observed, 1e-6) / predicted)
    if not ratios:
        return 1.0
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))
