"""TreeSketch: a count-stability graph-synopsis baseline.

This reimplements the comparator of the paper — TreeSketches [Polyzotis,
Garofalakis, Ioannidis, SIGMOD'04] — from its published description (the
original is closed source; see DESIGN.md §4).  The synopsis is a directed
graph whose vertices stand for sets of document nodes with a common label
and whose edges carry *average* child counts; twig selectivity is
estimated by multiplying averaged edge weights along every embedding of
the query into the synopsis graph (exactly the computation of the paper's
Figure 11 walkthrough).

Construction follows TreeSketches' direction of travel: start from the
perfectly count-stable partition (a bottom-up bisimulation of the
document, where two nodes are equivalent iff they have equal labels and
equal child-equivalence-class multisets) and **agglomeratively merge**
the most similar same-label vertex pairs until the synopsis fits the
memory budget.  The clustering granularity — and therefore both accuracy
and construction cost — is driven by that budget, as in the original.

The known failure mode the paper exploits (Figure 11, §5.3) falls out
naturally: once nodes with very different child counts share a vertex,
the edge weight is their average, and multiplying averages over several
query edges compounds the error multiplicatively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.estimator import SelectivityEstimator
from ..trees.canonical import Canon, canon, canon_children, canon_label
from ..trees.labeled_tree import LabeledTree

__all__ = ["TreeSketch", "SketchVertex"]

# Byte accounting for the budget: a vertex stores a label reference and an
# extent; an edge stores a target reference and a float weight.
_VERTEX_BYTES = 12
_EDGE_BYTES = 12


@dataclass
class SketchVertex:
    """One synopsis vertex: a set of same-label document nodes."""

    label: str
    extent: int
    #: child vertex id -> average number of children of that vertex per
    #: node in this vertex (the paper's edge weight).
    edges: dict[int, float] = field(default_factory=dict)


class TreeSketch(SelectivityEstimator):
    """Graph-synopsis selectivity estimator with a memory budget."""

    name = "TreeSketch"

    def __init__(
        self,
        vertices: dict[int, SketchVertex],
        *,
        budget_bytes: int,
        construction_seconds: float = 0.0,
    ) -> None:
        self.vertices = vertices
        self.budget_bytes = budget_bytes
        self.construction_seconds = construction_seconds
        self._by_label: dict[str, list[int]] = {}
        for vid, vertex in vertices.items():
            self._by_label.setdefault(vertex.label, []).append(vid)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        document: LabeledTree,
        budget_bytes: int = 50 * 1024,
        *,
        max_merge_steps: int = 1_000_000,
        refinement_rounds: int = 8,
    ) -> "TreeSketch":
        """Cluster ``document`` into a synopsis within ``budget_bytes``.

        Construction has three phases, mirroring the bottom-up clustering
        the original system performs:

        1. perfect count-stable partition (labeled bisimulation);
        2. greedy agglomerative merging — one least-distortion merge per
           step, with the candidate ranking and the synopsis size
           re-evaluated against the document after every merge — until
           the byte budget is met;
        3. ``refinement_rounds`` of k-means-style reassignment — every
           document node is moved to the same-label vertex whose child
           distribution centroid is nearest — which repairs residual
           instability.

        Phase 2's per-merge re-evaluation dominates the cost; it is the
        clustering work the paper's Table 3 measures.  Set
        ``refinement_rounds=0`` for a slightly quicker, lower-quality
        synopsis.  ``max_merge_steps`` bounds the merge loop defensively.
        """
        start = time.perf_counter()
        group_of = _stable_partition(document)
        group_of = _merge_to_budget(
            document, group_of, budget_bytes, max_merge_steps
        )
        group_of = _refine_partition(document, group_of, refinement_rounds)
        vertices = _materialise(document, group_of)
        elapsed = time.perf_counter() - start
        return cls(vertices, budget_bytes=budget_bytes, construction_seconds=elapsed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return sum(len(v.edges) for v in self.vertices.values())

    def byte_size(self) -> int:
        """Approximate serialised size of the synopsis."""
        return _partition_bytes(self.num_vertices, self.num_edges)

    def __repr__(self) -> str:
        return (
            f"TreeSketch(vertices={self.num_vertices}, edges={self.num_edges}, "
            f"bytes={self.byte_size()})"
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _estimate_tree(self, tree: LabeledTree) -> float:
        query = canon(tree)
        memo: dict[tuple[Canon, int], float] = {}
        total = 0.0
        for vid in self._by_label.get(canon_label(query), ()):
            per_node = self._embed(query, vid, memo)
            if per_node:
                total += self.vertices[vid].extent * per_node
        return total

    def _embed(
        self, pattern: Canon, vid: int, memo: dict[tuple[Canon, int], float]
    ) -> float:
        """Expected matches of ``pattern`` per document node in vertex ``vid``,
        assuming the pattern root maps into that vertex."""
        key = (pattern, vid)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = 1.0
        vertex = self.vertices[vid]
        for kid in canon_children(pattern):
            kid_label = canon_label(kid)
            branch = 0.0
            for child_vid, weight in vertex.edges.items():
                if self.vertices[child_vid].label != kid_label:
                    continue
                branch += weight * self._embed(kid, child_vid, memo)
            if branch <= 0.0:
                result = 0.0
                break
            result *= branch
        memo[key] = result
        return result


# ----------------------------------------------------------------------
# Construction internals
# ----------------------------------------------------------------------


def _stable_partition(document: LabeledTree) -> list[int]:
    """Perfect count-stable partition: bottom-up labeled bisimulation.

    Returns ``group id`` per node; nodes share a group iff their whole
    subtree shapes (labels + child-class multisets) coincide.
    """
    classes: dict[tuple[str, tuple[int, ...]], int] = {}
    group_of = [0] * document.size
    for node in document.postorder():
        child_classes = sorted(group_of[c] for c in document.child_ids(node))
        key = (document.label(node), tuple(child_classes))
        group = classes.get(key)
        if group is None:
            group = len(classes)
            classes[key] = group
        group_of[node] = group
    return group_of


def _partition_bytes(num_vertices: int, num_edges: int) -> int:
    return num_vertices * _VERTEX_BYTES + num_edges * _EDGE_BYTES


def _partition_stats(
    document: LabeledTree, group_of: list[int]
) -> tuple[dict[int, int], dict[tuple[int, int], int]]:
    """Extents and inter-group edge counts of the current partition."""
    extents: dict[int, int] = {}
    for group in group_of:
        extents[group] = extents.get(group, 0) + 1
    edges: dict[tuple[int, int], int] = {}
    parents = document.parents
    for node in range(1, document.size):
        key = (group_of[parents[node]], group_of[node])
        edges[key] = edges.get(key, 0) + 1
    return extents, edges


def _merge_to_budget(
    document: LabeledTree,
    group_of: list[int],
    budget_bytes: int,
    max_steps: int = 1_000_000,
) -> list[int]:
    """Agglomeratively merge same-label groups until the budget is met.

    Faithful to the original's greedy bottom-up clustering: **one merge
    per step**, chosen as the candidate pair whose merge adds the least
    *count distortion* — the increase in within-vertex sum of squared
    deviations of the member nodes' child-count vectors — with the
    candidate ranking recomputed after every merge.  Candidates are
    adjacent pairs in each label bucket's centroid order (distant pairs
    are never the greedy choice).  This per-step global re-ranking is
    the expensive clustering loop the paper's Table 3 charges
    TreeSketches for.
    """
    n = document.size
    labels = document.labels
    parents = document.parents

    # Per-node child-label-count vectors (fixed for the whole build).
    node_vecs: list[dict[str, int]] = [dict() for _ in range(n)]
    for node in range(1, n):
        vec = node_vecs[parents[node]]
        label = labels[node]
        vec[label] = vec.get(label, 0) + 1

    # Per-group sufficient statistics: extent, per-label sum and sum of
    # squares (SSE is computable from these exactly).
    stats: dict[int, _GroupStats] = {}
    group_label: dict[int, str] = {}
    for node in range(n):
        group = group_of[node]
        entry = stats.get(group)
        if entry is None:
            entry = _GroupStats()
            stats[group] = entry
            group_label[group] = labels[node]
        entry.add(node_vecs[node])

    buckets: dict[str, set[int]] = {}
    for group, label in group_label.items():
        buckets.setdefault(label, set()).add(group)

    remap: dict[int, int] = {}

    def find(group: int) -> int:
        while group in remap:
            group = remap[group]
        return group

    for _step in range(max_steps):
        # Exact synopsis size of the *current* partition, recomputed
        # from the document every step (the evolving-synopsis
        # re-evaluation that makes the clustering loop expensive).
        current = [find(g) for g in group_of]
        extents, edges = _partition_stats(document, current)
        if _partition_bytes(len(extents), len(edges)) <= budget_bytes:
            group_of = current
            break
        # Re-rank all candidate pairs: adjacent groups in centroid order
        # per label bucket, scored by exact SSE increase.
        best: tuple[float, int, int] | None = None
        for bucket in buckets.values():
            if len(bucket) < 2:
                continue
            ordered = sorted(bucket, key=lambda g: stats[g].centroid_key())
            for left, right in zip(ordered, ordered[1:]):
                cost = stats[left].merge_cost(stats[right])
                if best is None or cost < best[0]:
                    best = (cost, left, right)
        if best is None:
            group_of = current
            break
        _cost, keep, gone = best

        stats[keep].absorb(stats[gone])
        del stats[gone]
        buckets[group_label[gone]].discard(gone)
        remap[gone] = keep
    else:
        group_of = [find(g) for g in group_of]

    return group_of


class _GroupStats:
    """Sufficient statistics of one group's child-count vectors."""

    __slots__ = ("extent", "sums", "sumsqs")

    def __init__(self) -> None:
        self.extent = 0
        self.sums: dict[str, float] = {}
        self.sumsqs: dict[str, float] = {}

    def add(self, vec: dict[str, int]) -> None:
        self.extent += 1
        for label, count in vec.items():
            self.sums[label] = self.sums.get(label, 0.0) + count
            self.sumsqs[label] = self.sumsqs.get(label, 0.0) + count * count

    def absorb(self, other: "_GroupStats") -> None:
        self.extent += other.extent
        for label, value in other.sums.items():
            self.sums[label] = self.sums.get(label, 0.0) + value
        for label, value in other.sumsqs.items():
            self.sumsqs[label] = self.sumsqs.get(label, 0.0) + value

    def sse(self) -> float:
        """Within-group sum of squared deviations from the centroid."""
        total = 0.0
        for label, s in self.sums.items():
            total += self.sumsqs[label] - s * s / self.extent
        return total

    def merge_cost(self, other: "_GroupStats") -> float:
        """Exact SSE increase of merging the two groups."""
        merged_sse = 0.0
        n = self.extent + other.extent
        for label in self.sums.keys() | other.sums.keys():
            s = self.sums.get(label, 0.0) + other.sums.get(label, 0.0)
            sq = self.sumsqs.get(label, 0.0) + other.sumsqs.get(label, 0.0)
            merged_sse += sq - s * s / n
        return merged_sse - self.sse() - other.sse()

    def centroid_key(self) -> tuple[tuple[str, float], ...]:
        extent = self.extent
        return tuple(
            sorted((label, s / extent) for label, s in self.sums.items())
        )


def _refine_partition(
    document: LabeledTree, group_of: list[int], rounds: int
) -> list[int]:
    """K-means-style reassignment: move each node to the nearest same-label
    vertex by child-distribution distance, for ``rounds`` iterations.

    This is the expensive clustering phase: every round touches every
    document node and every same-label vertex candidate.  It converges
    (or hits the round cap) to a locally count-stable partition of the
    same cardinality, substantially improving estimation quality over
    the raw greedy merge.
    """
    if rounds <= 0:
        return group_of
    labels = document.labels
    parents = document.parents
    n = document.size
    children = document.children
    for _round in range(rounds):
        # Group centroids over child-label-count vectors.
        extents: dict[int, int] = {}
        centroids: dict[int, dict[str, float]] = {}
        for node in range(n):
            group = group_of[node]
            extents[group] = extents.get(group, 0) + 1
            centroids.setdefault(group, {})
        for node in range(1, n):
            vec = centroids[group_of[parents[node]]]
            label = labels[node]
            vec[label] = vec.get(label, 0.0) + 1.0
        for group, vec in centroids.items():
            extent = extents[group]
            for label in vec:
                vec[label] /= extent
        by_label: dict[str, list[int]] = {}
        seen: set[int] = set()
        for node in range(n):
            group = group_of[node]
            if group not in seen:
                seen.add(group)
                by_label.setdefault(labels[node], []).append(group)

        moved = 0
        new_group_of = list(group_of)
        node_vec: dict[str, float] = {}
        for node in range(n):
            candidates = by_label[labels[node]]
            if len(candidates) < 2:
                continue
            node_vec.clear()
            for child in children[node]:
                label = labels[child]
                node_vec[label] = node_vec.get(label, 0.0) + 1.0
            best_group = group_of[node]
            best_cost = _l1(node_vec, centroids[best_group])
            for candidate in candidates:
                if candidate == best_group:
                    continue
                cost = _l1(node_vec, centroids[candidate])
                if cost < best_cost:
                    best_cost = cost
                    best_group = candidate
            if best_group != group_of[node]:
                new_group_of[node] = best_group
                moved += 1
        group_of = new_group_of
        if not moved:
            break
    return group_of


def _l1(a: dict[str, float], b: dict[str, float]) -> float:
    """L1 distance between two sparse child-count vectors."""
    total = 0.0
    for label, value in a.items():
        total += abs(value - b.get(label, 0.0))
    for label, value in b.items():
        if label not in a:
            total += value
    return total


def _materialise(
    document: LabeledTree, group_of: list[int]
) -> dict[int, SketchVertex]:
    """Freeze a partition into synopsis vertices with averaged edges."""
    extents, edge_counts = _partition_stats(document, group_of)
    labels = document.labels
    group_label: dict[int, str] = {}
    for node, group in enumerate(group_of):
        group_label.setdefault(group, labels[node])
    vertices = {
        group: SketchVertex(label=group_label[group], extent=extent)
        for group, extent in extents.items()
    }
    for (parent_group, child_group), count in edge_counts.items():
        vertices[parent_group].edges[child_group] = (
            count / extents[parent_group]
        )
    return vertices
