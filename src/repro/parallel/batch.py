"""Chunked multi-process fan-out for batched estimation.

The estimator object is pickled to each worker once (through the pool
initializer — estimators are small: a summary reference plus
configuration), and each chunk of coerced query trees runs through the
estimator's own batch hook, so per-chunk behaviour (including the
recursive estimator's shared cross-query memo) matches the serial batch
path.  Chunk results are concatenated in submission order; estimates
are pure functions of ``(estimator, query)``, so the fan-out returns
exactly what ``[estimator.estimate(q) for q in queries]`` would.

Every submission goes through the retry engine
(:func:`repro.resilience.runner.run_chunks`): a worker crash
(``BrokenProcessPool``), a hung worker (per-attempt timeout), or a
payload that fails to pickle charges the affected chunks' retry budget,
the pool is rebuilt, and only the chunks that never produced a result
are re-submitted.  With the default budget (``RetryPolicy.none()``)
nothing is retried, but failures still surface as a chained
:class:`~repro.resilience.retry.ChunkFailureError` naming the failing
chunk instead of a raw executor internal.  When a caller-supplied
policy allows fallback, chunks whose budget runs out degrade to an
in-process serial replay — same values, recorded via the
``degraded_mode`` gauge.  See ``docs/robustness.md``.

Telemetry survives the fan-out: when the parent has observability
enabled, a :class:`~repro.obs.TelemetrySnapshot` of the active capture
window travels with each task, the worker records into an equivalent
window of its own, and the returned
:class:`~repro.obs.WorkerTelemetry` is merged into the parent registry
/ tracer / span buffer in submission order — so parallel metric totals
equal serial ones (asserted in ``tests/test_parallel.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..resilience import RetryPolicy, run_chunks
from ..trees.labeled_tree import LabeledTree
from .pool import PoolSupervisor, chunked

if TYPE_CHECKING:  # import cycle: core.estimator lazily imports this module
    from ..core.estimator import SelectivityEstimator

__all__ = ["estimate_trees_parallel", "DEFAULT_CHUNKS_PER_WORKER", "FAULT_SITE"]

#: Chunks submitted per worker; >1 smooths out per-query cost skew.
DEFAULT_CHUNKS_PER_WORKER = 4

#: Fault-injection / retry site name for this fan-out (chaos specs and
#: the ``fault_*`` / ``retry_*`` metric labels use it).
FAULT_SITE = "batch.estimate_chunk"

_worker_estimator: "SelectivityEstimator | None" = None
_worker_backend: str = "plan"


def _init_worker(estimator: "SelectivityEstimator", backend: str = "plan") -> None:
    global _worker_estimator, _worker_backend
    _worker_estimator = estimator
    _worker_backend = backend


def _estimate_chunk(
    trees: list[LabeledTree],
    snapshot: obs.TelemetrySnapshot | None,
) -> tuple[list[float], obs.WorkerTelemetry | None]:
    estimator = _worker_estimator
    if estimator is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("estimation worker used before initialisation")
    backend = _worker_backend
    if snapshot is None:
        if backend != "plan":
            return estimator._estimate_trees_kernel(trees, backend), None
        return estimator._estimate_trees(trees), None
    with obs.worker_window(snapshot) as telemetry:
        if backend != "plan":
            values = estimator._estimate_trees_kernel(trees, backend)
        else:
            values = estimator._estimate_trees(trees)
    return values, telemetry


def estimate_trees_parallel(
    estimator: "SelectivityEstimator",
    trees: Sequence[LabeledTree],
    *,
    workers: int,
    chunk_size: int | None = None,
    backend: str = "plan",
    retry: RetryPolicy | None = None,
) -> list[float]:
    """Estimate ``trees`` across ``workers`` processes, preserving order.

    ``chunk_size`` pins the number of queries per submitted task; by
    default the batch is split into ``workers * 4`` near-even chunks.
    Cross-query memo sharing happens per chunk (workers do not share
    memory), which affects speed only — never a single estimated value.

    ``backend`` selects the per-chunk replay path inside each worker
    (an already-resolved name: ``"plan"`` / ``"array"`` / ``"numpy"``).
    For kernel backends the parent lowers every warm shape's plan to a
    flat-array program *before* the fan-out, so the programs travel
    once per worker with the pickled estimator (through the pool
    initializer) and are reused across every chunk that worker runs —
    no per-chunk recompilation or re-lowering.

    ``retry`` sets the failure budget per chunk (default: no retries,
    failures raise a chained
    :class:`~repro.resilience.retry.ChunkFailureError`).  A policy with
    ``fallback=True`` degrades out-of-budget chunks to an in-process
    serial replay instead of failing the batch; the result values are
    identical either way.
    """
    if workers < 2:
        raise ValueError(f"parallel fan-out needs workers >= 2, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if backend != "plan":
        state = estimator._kernel_state()
        for pattern_id, plan in estimator._kernel_warm_plans():
            state.program_for(pattern_id, plan)
    if chunk_size is None:
        chunks = chunked(trees, workers * DEFAULT_CHUNKS_PER_WORKER)
    else:
        chunks = [
            list(trees[start : start + chunk_size])
            for start in range(0, len(trees), chunk_size)
        ]
    if not chunks:
        return []
    policy = retry if retry is not None else RetryPolicy.none()
    snapshot = obs.telemetry_snapshot()
    tasks = [(chunk, snapshot) for chunk in chunks]

    def _make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            initializer=_init_worker,
            initargs=(estimator, backend),
        )

    def _serial_chunk(
        task: tuple[list[LabeledTree], obs.TelemetrySnapshot | None],
    ) -> tuple[list[float], obs.WorkerTelemetry | None]:
        # Degraded-mode fallback: replay the chunk in-process.  The
        # parent's live registry records telemetry directly, so no
        # worker window is needed (and ``None`` skips absorption).
        chunk_trees, _ = task
        if backend != "plan":
            return estimator._estimate_trees_kernel(chunk_trees, backend), None
        return estimator._estimate_trees(chunk_trees), None

    supervisor = PoolSupervisor(_make_executor)
    try:
        report = run_chunks(
            _estimate_chunk,
            tasks,
            supervisor=supervisor,
            site=FAULT_SITE,
            policy=policy,
            serial_fallback=_serial_chunk,
        )
    finally:
        supervisor.close()
    estimates: list[float] = []
    for values, telemetry in report.results:
        estimates.extend(values)
        if telemetry is not None:
            obs.absorb_worker_telemetry(telemetry)
    return estimates
