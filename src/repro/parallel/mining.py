"""Multi-process candidate counting for the level-wise miner.

Worker model
------------
One :class:`~concurrent.futures.ProcessPoolExecutor` is created lazily
per mine.  Each worker receives the :class:`~repro.trees.matching.
DocumentIndex` once (through the pool initializer) and keeps a
process-local ``Canon -> {node -> rooted match count}`` memo that
accumulates across levels — the same shared-memo trick the serial miner
uses, so counting a size-``n+1`` candidate normally only assembles
root-level counts over already-memoised size-``<= n`` sub-patterns.

Determinism
-----------
Candidate counts are exact integers computed independently per
candidate (:func:`repro.trees.matching._rooted` is a pure function of
the candidate and the document), so *any* partition of the candidate
set yields the same counts.  Chunks are contiguous slices of the
caller's (sorted) candidate list and results are merged in submission
order, so the merged mapping preserves the serial path's insertion
order too — parallel mining is bit-identical to serial, dict order
included.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from types import TracebackType
from typing import Sequence

from .. import obs
from ..trees.canonical import Canon
from ..trees.matching import DocumentIndex, _rooted
from .pool import chunked

__all__ = ["ParallelMiningPool"]

#: Chunks submitted per worker and level; >1 smooths out skew between
#: cheap and expensive candidates at a small scheduling cost.
DEFAULT_CHUNKS_PER_WORKER = 4

# Worker-process state, installed by _init_worker.  The rooted-count
# memo deliberately persists across tasks: workers are reused for every
# level of one mine, and level n+1 candidates decompose into level <= n
# sub-patterns the worker has usually already counted.
_worker_index: DocumentIndex | None = None
_worker_maps: dict[Canon, dict[int, int]] = {}


def _init_worker(index: DocumentIndex) -> None:
    global _worker_index
    _worker_index = index
    _worker_maps.clear()


def _count_chunk(
    candidates: list[Canon],
    snapshot: obs.TelemetrySnapshot | None,
) -> tuple[list[tuple[Canon, int]], obs.WorkerTelemetry | None]:
    """Count one chunk of candidates; only occurring ones are returned."""
    index = _worker_index
    if index is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("mining worker used before initialisation")
    if snapshot is None:
        return _count_candidates(candidates, index), None
    with obs.worker_window(snapshot) as telemetry:
        counted = _count_candidates(candidates, index)
    return counted, telemetry


def _count_candidates(
    candidates: list[Canon], index: DocumentIndex
) -> list[tuple[Canon, int]]:
    counted: list[tuple[Canon, int]] = []
    for candidate in candidates:
        count = sum(_rooted(candidate, index, _worker_maps).values())
        if obs.enabled:
            obs.registry.counter(
                "mining_candidate_evaluations_total",
                "Candidate patterns counted against the document index.",
            ).inc()
        if count:
            counted.append((candidate, count))
    return counted


class ParallelMiningPool:
    """Owns the worker pool for one parallel mine.

    The executor is created on first use (a mine that stops at level 1
    never pays the fork cost) and must be released with :meth:`close`
    or by using the pool as a context manager.
    """

    def __init__(
        self,
        index: DocumentIndex,
        workers: int,
        *,
        chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
    ) -> None:
        if workers < 2:
            raise ValueError(f"a parallel pool needs workers >= 2, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.index = index
        self.workers = workers
        self.chunks_per_worker = chunks_per_worker
        self._executor: ProcessPoolExecutor | None = None

    def count_candidates(self, candidates: Sequence[Canon]) -> dict[Canon, int]:
        """``{candidate: exact count}`` for every *occurring* candidate.

        Insertion order of the result follows ``candidates`` order, so a
        sorted input yields the exact mapping the serial miner builds.
        """
        if not candidates:
            return {}
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.index,),
            )
        chunks = chunked(candidates, self.workers * self.chunks_per_worker)
        snapshot = obs.telemetry_snapshot()
        counts: dict[Canon, int] = {}
        for pairs, telemetry in self._executor.map(
            _count_chunk, chunks, repeat(snapshot)
        ):
            counts.update(pairs)
            if telemetry is not None:
                obs.absorb_worker_telemetry(telemetry)
        return counts

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelMiningPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
