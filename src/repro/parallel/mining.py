"""Multi-process candidate counting for the level-wise miner.

Worker model
------------
One :class:`~concurrent.futures.ProcessPoolExecutor` is created lazily
per mine.  Each worker receives the :class:`~repro.trees.matching.
DocumentIndex` once (through the pool initializer) and keeps a
process-local ``Canon -> {node -> rooted match count}`` memo that
accumulates across levels — the same shared-memo trick the serial miner
uses, so counting a size-``n+1`` candidate normally only assembles
root-level counts over already-memoised size-``<= n`` sub-patterns.

Failure discipline
------------------
Submissions go through the retry engine (:func:`repro.resilience.
runner.run_chunks`): a crashed or hung worker tears the pool down, a
fresh one is built (rebuilt workers start with an empty memo — a speed
cost, never a correctness one), and only chunks without a result are
re-submitted.  With retries disabled (the default) failures surface as
a chained :class:`~repro.resilience.retry.ChunkFailureError`; a policy
with ``fallback=True`` instead degrades out-of-budget chunks to the
parent-side serial counter, which keeps its own memo across levels.
See ``docs/robustness.md``.

Determinism
-----------
Candidate counts are exact integers computed independently per
candidate (:func:`repro.trees.matching._rooted` is a pure function of
the candidate and the document), so *any* partition of the candidate
set yields the same counts.  Chunks are contiguous slices of the
caller's (sorted) candidate list and results are merged in submission
order, so the merged mapping preserves the serial path's insertion
order too — parallel mining is bit-identical to serial, dict order
included, retries and degraded chunks notwithstanding.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from types import TracebackType
from typing import Sequence

from .. import obs
from ..resilience import RetryPolicy, run_chunks
from ..trees.canonical import Canon
from ..trees.matching import DocumentIndex, _rooted
from .pool import PoolSupervisor, chunked

__all__ = ["ParallelMiningPool"]

#: Chunks submitted per worker and level; >1 smooths out skew between
#: cheap and expensive candidates at a small scheduling cost.
DEFAULT_CHUNKS_PER_WORKER = 4

#: Fault-injection / retry site name for this fan-out (chaos specs and
#: the ``fault_*`` / ``retry_*`` metric labels use it).
FAULT_SITE = "mining.count_chunk"

# Worker-process state, installed by _init_worker.  The rooted-count
# memo deliberately persists across tasks: workers are reused for every
# level of one mine, and level n+1 candidates decompose into level <= n
# sub-patterns the worker has usually already counted.
_worker_index: DocumentIndex | None = None
_worker_maps: dict[Canon, dict[int, int]] = {}


def _init_worker(index: DocumentIndex) -> None:
    global _worker_index
    _worker_index = index
    _worker_maps.clear()


def _count_chunk(
    candidates: list[Canon],
    snapshot: obs.TelemetrySnapshot | None,
) -> tuple[list[tuple[Canon, int]], obs.WorkerTelemetry | None]:
    """Count one chunk of candidates; only occurring ones are returned."""
    index = _worker_index
    if index is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("mining worker used before initialisation")
    if snapshot is None:
        return _count_candidates(candidates, index, _worker_maps), None
    with obs.worker_window(snapshot) as telemetry:
        counted = _count_candidates(candidates, index, _worker_maps)
    return counted, telemetry


def _count_candidates(
    candidates: list[Canon],
    index: DocumentIndex,
    maps: dict[Canon, dict[int, int]],
) -> list[tuple[Canon, int]]:
    counted: list[tuple[Canon, int]] = []
    for candidate in candidates:
        count = sum(_rooted(candidate, index, maps).values())
        if obs.enabled:
            obs.registry.counter(
                "mining_candidate_evaluations_total",
                "Candidate patterns counted against the document index.",
            ).inc()
        if count:
            counted.append((candidate, count))
    return counted


class ParallelMiningPool:
    """Owns the worker pool for one parallel mine.

    The executor is created on first use (a mine that stops at level 1
    never pays the fork cost) and must be released with :meth:`close`
    or by using the pool as a context manager.
    """

    def __init__(
        self,
        index: DocumentIndex,
        workers: int,
        *,
        chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
        retry: RetryPolicy | None = None,
    ) -> None:
        if workers < 2:
            raise ValueError(f"a parallel pool needs workers >= 2, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.index = index
        self.workers = workers
        self.chunks_per_worker = chunks_per_worker
        self.retry = retry if retry is not None else RetryPolicy.none()
        self._supervisor = PoolSupervisor(self._make_executor)
        # Parent-side memo for degraded chunks; like a worker's, it
        # persists across levels of one mine.
        self._fallback_maps: dict[Canon, dict[int, int]] = {}

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.index,),
        )

    def _serial_chunk(
        self,
        task: tuple[list[Canon], obs.TelemetrySnapshot | None],
    ) -> tuple[list[tuple[Canon, int]], obs.WorkerTelemetry | None]:
        # Degraded-mode fallback: count the chunk in-process.  The
        # parent's live registry records telemetry directly, so no
        # worker window is needed (and ``None`` skips absorption).
        candidates, _ = task
        return _count_candidates(candidates, self.index, self._fallback_maps), None

    def count_candidates(self, candidates: Sequence[Canon]) -> dict[Canon, int]:
        """``{candidate: exact count}`` for every *occurring* candidate.

        Insertion order of the result follows ``candidates`` order, so a
        sorted input yields the exact mapping the serial miner builds.
        """
        if not candidates:
            return {}
        chunks = chunked(candidates, self.workers * self.chunks_per_worker)
        snapshot = obs.telemetry_snapshot()
        tasks = [(chunk, snapshot) for chunk in chunks]
        report = run_chunks(
            _count_chunk,
            tasks,
            supervisor=self._supervisor,
            site=FAULT_SITE,
            policy=self.retry,
            serial_fallback=self._serial_chunk,
        )
        counts: dict[Canon, int] = {}
        for pairs, telemetry in report.results:
            counts.update(pairs)
            if telemetry is not None:
                obs.absorb_worker_telemetry(telemetry)
        return counts

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._supervisor.close()

    def __enter__(self) -> "ParallelMiningPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
