"""Multi-process execution: parallel mining and batched estimation.

Two independent hot paths gain a worker-pool mode here, both opt-in and
both bit-identical to their serial counterparts:

* **Lattice construction** — the level-wise miner's dominant cost is
  counting candidate occurrences (the paper's Table 3), and counting is
  embarrassingly parallel within a level: each candidate's count is an
  exact integer computed independently of every other candidate.
  :class:`ParallelMiningPool` partitions each level's sorted candidate
  list across worker processes and merges the per-chunk ``Canon ->
  count`` maps back in candidate order (``mine_lattice(...,
  workers=N)`` / ``LatticeSummary.build(..., workers=N)``).
* **Batched estimation** — :meth:`repro.core.estimator.
  SelectivityEstimator.estimate_batch` estimates a whole workload in one
  call, letting the recursive/voting estimator reuse sub-twig
  selectivities across queries through one shared memo, and
  :func:`estimate_trees_parallel` fans large batches out over workers in
  deterministic chunks.

Serial remains the default everywhere (``workers=None``); ``workers=0``
means one worker per available core.  See ``docs/parallelism.md`` for
the worker model, the determinism argument, and when parallelism pays
off.  Both paths submit through the fault-tolerant retry engine
(:mod:`repro.resilience`) via :class:`PoolSupervisor` — see
``docs/robustness.md`` for crash/hang/retry semantics.
"""

from .batch import DEFAULT_CHUNKS_PER_WORKER, estimate_trees_parallel
from .mining import ParallelMiningPool
from .pool import PoolSupervisor, available_workers, chunked, resolve_workers
from .sharding import ShardMiningPool

__all__ = [
    "ParallelMiningPool",
    "ShardMiningPool",
    "estimate_trees_parallel",
    "DEFAULT_CHUNKS_PER_WORKER",
    "PoolSupervisor",
    "available_workers",
    "chunked",
    "resolve_workers",
]
