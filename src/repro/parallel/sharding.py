"""Multi-process shard mining: one task per shard subtree.

Shard-level fan-out is the coarse-grained sibling of the level-level
fan-out in :mod:`repro.parallel.mining`: instead of splitting one
level's candidate list across workers, each worker mines a whole shard
subtree end to end with the serial miner and ships the finished
:class:`~repro.store.DictStore` back as a checksummed payload
(:meth:`~repro.store.DictStore.to_payload`).  The parent rebuilds every
payload through :func:`~repro.store.load_shard_payload` — which
re-verifies the CRC32 at the ``store.load`` fault site — and merges the
stores in submission order, so the combined result is deterministic
regardless of which worker finished first.

Failure discipline matches the candidate-counting pool: submissions go
through :func:`~repro.resilience.runner.run_chunks` under the
``mining.shard_chunk`` site; a crashed or hung worker tears the pool
down and only shards without a result are re-submitted, and a policy
with ``fallback=True`` degrades out-of-budget shards to parent-side
serial mining.  See ``docs/robustness.md`` and ``docs/parallelism.md``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from types import TracebackType
from typing import Sequence

from .. import obs
from ..mining.sharded import mine_shard_store
from ..resilience import RetryPolicy, run_chunks
from ..store import DictStore, load_shard_payload
from ..trees.labeled_tree import LabeledTree
from .pool import PoolSupervisor

__all__ = ["ShardMiningPool"]

#: Fault-injection / retry site name for this fan-out (chaos specs and
#: the ``fault_*`` / ``retry_*`` metric labels use it).
FAULT_SITE = "mining.shard_chunk"

_ShardTask = tuple[LabeledTree, int, "obs.TelemetrySnapshot | None"]
_ShardResult = tuple[dict[str, object], "obs.WorkerTelemetry | None"]


def _mine_shard_chunk(
    subtree: LabeledTree,
    max_size: int,
    snapshot: "obs.TelemetrySnapshot | None",
) -> _ShardResult:
    """Mine one shard subtree in a worker; returns a store payload."""
    if snapshot is None:
        return mine_shard_store(subtree, max_size).to_payload(), None
    with obs.worker_window(snapshot) as telemetry:
        store = mine_shard_store(subtree, max_size)
    return store.to_payload(), telemetry


class ShardMiningPool:
    """Owns the worker pool for one sharded mine (one task per shard)."""

    def __init__(
        self,
        max_size: int,
        workers: int,
        *,
        retry: RetryPolicy | None = None,
    ) -> None:
        if workers < 2:
            raise ValueError(f"a parallel pool needs workers >= 2, got {workers}")
        self.max_size = max_size
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy.none()
        self._supervisor = PoolSupervisor(self._make_executor)

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _serial_chunk(self, task: _ShardTask) -> _ShardResult:
        # Degraded-mode fallback: mine the shard in-process.  The
        # parent's live registry records telemetry directly, so no
        # worker window is needed (and ``None`` skips absorption).
        subtree, max_size, _ = task
        return mine_shard_store(subtree, max_size).to_payload(), None

    def mine(self, subtrees: Sequence[LabeledTree]) -> list[DictStore]:
        """Mine every shard subtree; stores come back in shard order.

        Each returned payload is rebuilt through
        :func:`~repro.store.load_shard_payload`, so a payload corrupted
        in flight dies with a typed
        :class:`~repro.store.ChecksumMismatch` before it can merge
        garbage into the summary.
        """
        if not subtrees:
            return []
        snapshot = obs.telemetry_snapshot()
        tasks: list[_ShardTask] = [
            (subtree, self.max_size, snapshot) for subtree in subtrees
        ]
        report = run_chunks(
            _mine_shard_chunk,
            tasks,
            supervisor=self._supervisor,
            site=FAULT_SITE,
            policy=self.retry,
            serial_fallback=self._serial_chunk,
        )
        stores: list[DictStore] = []
        for payload, telemetry in report.results:
            stores.append(load_shard_payload(payload))
            if telemetry is not None:
                obs.absorb_worker_telemetry(telemetry)
        return stores

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._supervisor.close()

    def __enter__(self) -> "ShardMiningPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
