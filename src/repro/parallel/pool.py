"""Worker-count resolution, deterministic chunking, pool supervision.

Shared plumbing for the two parallel paths (mining, batched
estimation).  Chunking is deterministic — contiguous, near-even slices
in input order — so any consumer that concatenates per-chunk results in
submission order reproduces the serial output exactly.

:class:`PoolSupervisor` owns a :class:`~concurrent.futures.
ProcessPoolExecutor` lifecycle on behalf of the retry engine
(:func:`repro.resilience.runner.run_chunks`): submissions go through
it, and after a crash (``BrokenProcessPool``) or a hung worker it
abandons the broken pool and lazily builds a fresh one from the
factory the call site provided — the factory closes over the
``initializer``/``initargs`` pair, so rebuilt workers are provisioned
exactly like the originals.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

__all__ = ["available_workers", "resolve_workers", "chunked", "PoolSupervisor"]

_T = TypeVar("_T")


def available_workers() -> int:
    """Number of CPUs this process may run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` knob to a concrete worker count.

    ``None`` and ``1`` mean serial; ``0`` means one worker per available
    core; any other positive value is taken literally (the pool may
    oversubscribe small machines — that is the caller's call).
    """
    if workers is None:
        return 1
    if workers == 0:
        return available_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def chunked(items: Sequence[_T], chunks: int) -> list[list[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous, near-even slices.

    Every slice is non-empty, slice sizes differ by at most one, and
    concatenating the slices in order reproduces ``items`` — the
    property the parallel paths' determinism rests on.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    n = len(items)
    chunks = min(chunks, n)
    if chunks <= 1:
        return [list(items)] if n else []
    base, extra = divmod(n, chunks)
    out: list[list[_T]] = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        out.append(list(items[start:stop]))
        start = stop
    return out


class PoolSupervisor:
    """A rebuildable process-pool handle (the retry engine's executor).

    Satisfies :class:`repro.resilience.runner.ExecutorSupervisor`.  The
    executor is created lazily on first submit, so a run whose every
    chunk degrades to serial never pays the fork cost twice.
    """

    def __init__(self, factory: Callable[[], ProcessPoolExecutor]) -> None:
        self._factory = factory
        self._executor: ProcessPoolExecutor | None = None
        #: pools abandoned after crashes / hangs (monotonic).
        self.rebuilds = 0

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> "Future[Any]":
        """Submit a call to the current pool (creating it if needed)."""
        if self._executor is None:
            self._executor = self._factory()
        return self._executor.submit(fn, *args)

    def rebuild(self) -> None:
        """Abandon the current pool; the next submit starts a fresh one.

        The broken pool is shut down without waiting: a crashed pool has
        nothing to wait for, and a hung worker would block forever — its
        process is orphaned instead and exits when its task (if any)
        finally returns.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.rebuilds += 1

    def close(self) -> None:
        """Shut the current pool down cleanly (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
