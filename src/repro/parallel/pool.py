"""Worker-count resolution and deterministic chunking.

Shared plumbing for the two parallel paths (mining, batched
estimation).  Chunking is deterministic — contiguous, near-even slices
in input order — so any consumer that concatenates per-chunk results in
submission order reproduces the serial output exactly.
"""

from __future__ import annotations

import os
from typing import Sequence, TypeVar

__all__ = ["available_workers", "resolve_workers", "chunked"]

_T = TypeVar("_T")


def available_workers() -> int:
    """Number of CPUs this process may run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` knob to a concrete worker count.

    ``None`` and ``1`` mean serial; ``0`` means one worker per available
    core; any other positive value is taken literally (the pool may
    oversubscribe small machines — that is the caller's call).
    """
    if workers is None:
        return 1
    if workers == 0:
        return available_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def chunked(items: Sequence[_T], chunks: int) -> list[list[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous, near-even slices.

    Every slice is non-empty, slice sizes differ by at most one, and
    concatenating the slices in order reproduces ``items`` — the
    property the parallel paths' determinism rests on.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    n = len(items)
    chunks = min(chunks, n)
    if chunks <= 1:
        return [list(items)] if n else []
    base, extra = divmod(n, chunks)
    out: list[list[_T]] = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        out.append(list(items[start:stop]))
        start = stop
    return out
