"""Benchmark harness: dataset bundles and report formatting."""

from .harness import (
    PAPER_DATASETS,
    DatasetBundle,
    prepare_dataset,
    sketch_budget_for,
)
from .reporting import OBS_HEADERS, emit_report, format_table, obs_cells, report_dir

__all__ = [
    "PAPER_DATASETS",
    "DatasetBundle",
    "prepare_dataset",
    "sketch_budget_for",
    "emit_report",
    "format_table",
    "report_dir",
    "OBS_HEADERS",
    "obs_cells",
]
