"""Experiment harness: dataset bundles shared across benchmarks.

A :class:`DatasetBundle` packages everything one paper experiment needs —
the generated document, its index, a TreeLattice summary with measured
construction time, a TreeSketch synopsis with measured construction time,
and lazily generated positive/negative workloads.  Bundles are cached per
(dataset, configuration) so a pytest session pays each construction once.

The sketch memory budget defaults to the paper's proportions: the paper
gave TreeSketches 50KB for documents of 150k-565k elements, i.e. roughly
0.2 bytes per element; :func:`sketch_budget_for` scales that to our
smaller synthetic corpora (floored at 2KB so tiny test documents still
produce a usable synopsis).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from ..baselines.treesketch import TreeSketch
from ..core.estimator import SelectivityEstimator
from ..core.fixed import FixedDecompositionEstimator
from ..core.lattice import LatticeSummary
from ..core.recursive import RecursiveDecompositionEstimator
from ..datasets import generate_dataset
from ..trees.labeled_tree import LabeledTree
from ..trees.matching import DocumentIndex
from ..workload.generator import (
    QueryWorkload,
    negative_workload,
    positive_workloads,
)

__all__ = ["DatasetBundle", "prepare_dataset", "sketch_budget_for", "PAPER_DATASETS"]

#: The paper's four evaluation datasets (Table 1 order).
PAPER_DATASETS = ("nasa", "imdb", "psd", "xmark")

#: Paper proportion: 50KB budget for ~250k elements average.
_BUDGET_BYTES_PER_ELEMENT = 0.2
_BUDGET_FLOOR = 2048


def sketch_budget_for(document: LabeledTree) -> int:
    """Paper-proportional TreeSketch budget for a document."""
    return max(_BUDGET_FLOOR, int(document.size * _BUDGET_BYTES_PER_ELEMENT))


@dataclass
class DatasetBundle:
    """One dataset with its summaries, timings, and cached workloads."""

    name: str
    document: LabeledTree
    index: DocumentIndex
    lattice: LatticeSummary
    sketch: TreeSketch
    lattice_seconds: float
    sketch_seconds: float
    seed: int = 0
    #: Observability snapshot of the lattice construction (per-level
    #: mining counters/timings); ``{}`` for bundles built before capture.
    build_metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    _positive: dict[tuple[tuple[int, ...], int, int], dict[int, QueryWorkload]] = field(
        default_factory=dict
    )
    _negative: dict[tuple[int, int, int], QueryWorkload] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------

    def estimators(
        self, *, include_sketch: bool = True
    ) -> list[SelectivityEstimator]:
        """The paper's four estimators over this bundle, in figure order."""
        out: list[SelectivityEstimator] = [
            RecursiveDecompositionEstimator(self.lattice),
            RecursiveDecompositionEstimator(self.lattice, voting=True),
            FixedDecompositionEstimator(self.lattice),
        ]
        if include_sketch:
            out.append(self.sketch)
        return out

    def mining_level_rows(self) -> list[list[object]]:
        """``[size, candidates, kept, gen_s, count_s, seconds]`` rows.

        Candidate-generation and counting wall time are separate spans
        (only counting parallelises; see ``docs/parallelism.md``).
        """
        candidates = self.build_metrics.get("mining_candidates_total", {})
        kept = self.build_metrics.get("mining_patterns_kept_total", {})
        generation = self.build_metrics.get("mining_candidate_seconds", {})
        counting = self.build_metrics.get("mining_counting_seconds", {})
        seconds = self.build_metrics.get("mining_level_seconds", {})
        rows: list[list[object]] = []
        for size in sorted(candidates, key=int):
            rows.append(
                [
                    int(size),
                    candidates.get(size, 0),
                    kept.get(size, 0),
                    generation.get(size, 0.0),
                    counting.get(size, 0.0),
                    seconds.get(size, 0.0),
                ]
            )
        return rows

    # ------------------------------------------------------------------
    # Workloads (cached)
    # ------------------------------------------------------------------

    def positive(
        self,
        sizes: range | list[int],
        per_level: int = 25,
        *,
        extend_cap: int = 600,
    ) -> dict[int, QueryWorkload]:
        key = (tuple(sizes), per_level, extend_cap)
        cached = self._positive.get(key)
        if cached is None:
            cached = positive_workloads(
                self.index,
                sizes,
                per_level,
                seed=self.seed + 1,
                extend_cap=extend_cap,
            )
            self._positive[key] = cached
        return cached

    def negative(
        self,
        size: int,
        per_level: int = 25,
        *,
        extend_cap: int = 600,
    ) -> QueryWorkload:
        key = (size, per_level, extend_cap)
        cached = self._negative.get(key)
        if cached is None:
            base = self.positive([size], per_level, extend_cap=extend_cap)[size]
            cached = negative_workload(self.index, base, seed=self.seed + 2)
            self._negative[key] = cached
        return cached


def _samples_by_size(registry: obs.MetricsRegistry, name: str) -> dict[str, float]:
    """Flatten a ``size``-labelled metric to ``{size: value}``."""
    metric = registry.get(name)
    if not isinstance(metric, (obs.Counter, obs.Gauge)):
        return {}
    return {labels["size"]: value for labels, value in metric.samples()}


_BUNDLES: dict[
    tuple[str, int | None, int, int, int | None, int, int | None], DatasetBundle
] = {}


def prepare_dataset(
    name: str,
    *,
    scale: int | None = None,
    seed: int = 0,
    level: int = 4,
    sketch_budget: int | None = None,
    refinement_rounds: int = 8,
    workers: int | None = None,
    use_cache: bool = True,
) -> DatasetBundle:
    """Build (or fetch from cache) the bundle for one dataset.

    Parameters mirror the experiment knobs: ``scale`` the dataset size,
    ``level`` the lattice level (paper default 4), ``sketch_budget`` the
    TreeSketch byte budget (paper-proportional when ``None``), and
    ``workers`` the lattice-construction worker processes (summaries are
    bit-identical at any worker count, but the cache keys on it so
    serial-vs-parallel timing comparisons stay honest).
    """
    key = (name, scale, seed, level, sketch_budget, refinement_rounds, workers)
    if use_cache:
        cached = _BUNDLES.get(key)
        if cached is not None:
            return cached

    document = generate_dataset(name, scale, seed=seed)
    index = DocumentIndex(document)

    start = time.perf_counter()
    with obs.observed() as (registry, _):
        lattice = LatticeSummary.build(index, level, workers=workers)
    lattice_seconds = time.perf_counter() - start
    build_metrics = {
        metric: _samples_by_size(registry, metric)
        for metric in (
            "mining_candidates_total",
            "mining_patterns_kept_total",
            "mining_candidate_seconds",
            "mining_counting_seconds",
            "mining_level_seconds",
        )
    }

    budget = sketch_budget if sketch_budget is not None else sketch_budget_for(document)
    start = time.perf_counter()
    sketch = TreeSketch.build(
        document, budget, refinement_rounds=refinement_rounds
    )
    sketch_seconds = time.perf_counter() - start

    bundle = DatasetBundle(
        name=name,
        document=document,
        index=index,
        lattice=lattice,
        sketch=sketch,
        lattice_seconds=lattice_seconds,
        sketch_seconds=sketch_seconds,
        seed=seed,
        build_metrics=build_metrics,
    )
    if use_cache:
        _BUNDLES[key] = bundle
    return bundle
