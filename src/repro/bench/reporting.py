"""Plain-text reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures as a
text table (figures become series tables: one row per x-value, one
column per curve).  Reports are printed to stdout and, when a directory
is configured, also written under ``benchmarks/reports/`` so that
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "format_table",
    "emit_report",
    "report_dir",
    "OBS_HEADERS",
    "obs_cells",
]

#: Column headers matching :func:`obs_cells` — appended to benchmark
#: tables whose evaluations captured observability metrics.
OBS_HEADERS = ["hit%", "depth", "est ms"]


def obs_cells(metrics: dict | None) -> list[object]:
    """Table cells for one captured evaluation (``-`` when not captured).

    ``metrics`` is the dict produced by
    :func:`repro.obs.summarize_estimation` (stored on
    ``EstimatorEvaluation.metrics``); the cells line up with
    :data:`OBS_HEADERS`.
    """
    if not metrics:
        return ["-", "-", "-"]
    calls = metrics.get("estimate_calls", 0)
    per_query_ms = (
        metrics["estimate_seconds"] / calls * 1000.0 if calls else 0.0
    )
    return [
        f"{metrics['lattice_hit_rate'] * 100:.1f}",
        f"{metrics['mean_recursion_depth']:.2f}",
        f"{per_query_ms:.3f}",
    ]


def format_table(
    title: str,
    headers: list[str],
    rows: list[list[object]],
    *,
    note: str | None = None,
) -> str:
    """Render an aligned monospace table with a title rule."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def report_dir() -> Path | None:
    """Directory for report artifacts (``REPRO_REPORT_DIR``), if set."""
    configured = os.environ.get("REPRO_REPORT_DIR")
    if not configured:
        return None
    path = Path(configured)
    path.mkdir(parents=True, exist_ok=True)
    return path


def emit_report(name: str, text: str) -> None:
    """Print a report and persist it when a report directory is set."""
    print()
    print(text)
    directory = report_dir()
    if directory is not None:
        (directory / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
