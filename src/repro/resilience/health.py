"""Process-local degradation ledger.

The CLI needs to report "completed, but degraded" (exit status 3)
without requiring observability to be enabled, so the retry runner
also notes every serial fallback here.  The ledger is deliberately a
monotonic counter: callers snapshot it before a run and compare after
(:func:`degraded_events`), which composes across nested runs.
"""

from __future__ import annotations

__all__ = ["note_degraded", "degraded_events", "last_degraded_site"]

_degraded_events = 0
_last_site: str | None = None


def note_degraded(site: str, chunks: int) -> None:
    """Record that ``chunks`` chunks at ``site`` fell back to serial."""
    global _degraded_events, _last_site
    _degraded_events += chunks
    _last_site = site


def degraded_events() -> int:
    """Total chunks completed via serial fallback in this process."""
    return _degraded_events


def last_degraded_site() -> str | None:
    """Site of the most recent degradation, if any."""
    return _last_site
