"""Round-based retry engine for process-pool chunk fan-outs.

:func:`run_chunks` is the single choke point both parallel paths
(:mod:`repro.parallel.mining`, :mod:`repro.parallel.batch`) submit
through.  It owns the failure discipline so the call sites keep only
their domain logic:

* every chunk is submitted through an :class:`ExecutorSupervisor`
  (a rebuildable pool handle) and collected **in submission order** —
  never ``as_completed`` — so merged results stay bit-identical to the
  serial path no matter how many retries happened;
* a ``BrokenProcessPool`` (worker crash) or a per-attempt timeout
  (hung worker) tears the pool down, rebuilds it, and re-submits *only
  the chunks that never produced a result* — completed chunks are kept;
* each chunk has a retry budget (:class:`~repro.resilience.retry.
  RetryPolicy`); recovery rounds back off exponentially (capped) and
  the whole run can carry a deadline;
* an exhausted budget either degrades the remaining chunks to the
  caller's ``serial_fallback`` (recorded via ``degraded_mode`` and the
  process-local health ledger) or raises a chained
  :class:`~repro.resilience.retry.RetryBudgetExhausted` naming the
  chunk;
* when a :class:`~repro.resilience.faults.FaultPlan` is active, every
  submission draws against it and a matching command ships with the
  task (executed worker-side by :func:`~repro.resilience.faults.
  execute_fault`) — chaos tests and the CI fault matrix drive this.

Chunk functions are pure in the worker-purity sense (results depend
only on the task arguments), so a retried or degraded chunk returns
exactly the bytes the first attempt would have — the engine can only
change *when* a result arrives, never *what* it is.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Protocol, Sequence, TypeVar

from . import health, record
from .faults import FaultCommand, FaultPlan, active_plan, execute_fault
from .retry import RetryBudgetExhausted, RetryPolicy

__all__ = ["ExecutorSupervisor", "RunReport", "run_chunks"]

_T = TypeVar("_T")
_TaskT = TypeVar("_TaskT", bound="tuple[Any, ...]")


class ExecutorSupervisor(Protocol):
    """A rebuildable process-pool handle (see ``parallel.pool``)."""

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> "Future[Any]":
        """Submit a call to the current pool (creating it if needed)."""
        ...  # pragma: no cover - protocol

    def rebuild(self) -> None:
        """Abandon the current pool; the next submit starts a fresh one."""
        ...  # pragma: no cover - protocol


def _faulted_call(
    command: FaultCommand, fn: Callable[..., _T], args: "tuple[Any, ...]"
) -> _T:
    """Worker-side wrapper: execute the injected fault, then the task."""
    execute_fault(command)
    return fn(*args)


@dataclass
class RunReport(Generic[_T]):
    """Outcome of one :func:`run_chunks` call."""

    #: per-chunk results in submission order (fallback results included).
    results: list[_T]
    #: indices of chunks completed through the serial fallback.
    degraded: tuple[int, ...] = ()
    #: chunk re-submissions after failed attempts.
    resubmissions: int = 0
    #: submission rounds executed (1 = no recovery needed).
    rounds: int = 0
    #: pools torn down and rebuilt after crashes / hangs.
    rebuilds: int = 0
    #: fault commands the active plan injected during the run.
    faults_injected: int = 0

    @property
    def degraded_mode(self) -> bool:
        return bool(self.degraded)


@dataclass
class _RunState(Generic[_T]):
    """Mutable bookkeeping for one run (split out for readability)."""

    total: int
    results: dict[int, _T] = field(default_factory=dict)
    attempts: list[int] = field(default_factory=list)
    last_error: dict[int, BaseException] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.attempts = [0] * self.total


def run_chunks(
    fn: Callable[..., _T],
    tasks: Sequence[_TaskT],
    *,
    supervisor: ExecutorSupervisor,
    site: str,
    policy: RetryPolicy,
    serial_fallback: Callable[[_TaskT], _T] | None = None,
    plan: FaultPlan | None = None,
) -> RunReport[_T]:
    """Run ``fn(*task)`` for every task through the supervised pool.

    ``fn`` must be a picklable module-level function (it crosses the
    process boundary); each element of ``tasks`` is its argument tuple.
    ``plan`` overrides fault-plan discovery for direct tests; normal
    call sites leave it ``None`` and inherit the installed/env plan.
    Returns a :class:`RunReport` whose ``results`` align with ``tasks``.
    """
    state: _RunState[_T] = _RunState(len(tasks))
    report: RunReport[_T] = RunReport(results=[])
    if not tasks:
        return report
    active = plan if plan is not None else active_plan()
    started = time.monotonic()
    pending = list(range(state.total))
    exhausted: list[int] = []

    while pending:
        pending, newly_exhausted = _triage(
            pending, state, policy, site, started, can_degrade=serial_fallback is not None
        )
        exhausted.extend(newly_exhausted)
        if not pending:
            break
        recovery_round = report.rounds  # 0 on the first pass
        with record.retry_span(site, recovery_round, len(pending)):
            if recovery_round:
                report.resubmissions += len(pending)
                record.record_retry_round(site, len(pending))
                delay = policy.backoff_for(recovery_round)
                if delay > 0:
                    time.sleep(delay)
            report.rounds += 1
            futures, submit_rebuild = _submit_round(
                fn, tasks, pending, state, supervisor, site, active, report
            )
            collect_rebuild = _collect_round(futures, state, policy)
        if submit_rebuild or collect_rebuild:
            supervisor.rebuild()
            report.rebuilds += 1
            record.record_pool_rebuild(site)
        pending = [index for index in pending if index not in state.results]

    if exhausted:
        record.record_exhausted(site, len(exhausted))
        assert serial_fallback is not None  # _triage raised otherwise
        for index in exhausted:
            state.results[index] = serial_fallback(tasks[index])
        health.note_degraded(site, len(exhausted))
        report.degraded = tuple(exhausted)
    record.record_run_outcome(site, degraded=bool(exhausted))
    report.results = [state.results[index] for index in range(state.total)]
    return report


def _triage(
    pending: list[int],
    state: _RunState[_T],
    policy: RetryPolicy,
    site: str,
    started: float,
    *,
    can_degrade: bool,
) -> tuple[list[int], list[int]]:
    """Split pending chunks into (still runnable, budget exhausted).

    Raises :class:`RetryBudgetExhausted` for the first out-of-budget
    chunk when degradation is unavailable (``fallback=False`` or no
    fallback callable).
    """
    overdue = (
        policy.deadline is not None
        and time.monotonic() - started >= policy.deadline
    )
    runnable: list[int] = []
    exhausted: list[int] = []
    for index in pending:
        if not overdue and state.attempts[index] <= policy.max_retries:
            runnable.append(index)
            continue
        if not (policy.fallback and can_degrade):
            record.record_exhausted(site, 1)
            raise RetryBudgetExhausted(
                site,
                index,
                state.total,
                state.attempts[index],
                cause=state.last_error.get(index),
            ) from state.last_error.get(index)
        exhausted.append(index)
    return runnable, exhausted


def _submit_round(
    fn: Callable[..., _T],
    tasks: Sequence[_TaskT],
    pending: list[int],
    state: _RunState[_T],
    supervisor: ExecutorSupervisor,
    site: str,
    active: FaultPlan | None,
    report: RunReport[_T],
) -> tuple[dict[int, "Future[_T]"], bool]:
    """Submit one attempt per pending chunk; returns (futures, rebuild?)."""
    futures: dict[int, Future[_T]] = {}
    rebuild_needed = False
    for index in pending:
        state.attempts[index] += 1
        command = active.draw(site) if active is not None else None
        if command is not None:
            report.faults_injected += 1
            record.record_fault(site, command.kind)
        try:
            if command is not None and command.kind == "pickle":
                # Simulated at the submission boundary: a real payload
                # that cannot pickle fails before any worker runs.
                raise pickle.PicklingError(
                    f"injected pickling failure at {site!r}"
                )
            if command is not None:
                futures[index] = supervisor.submit(
                    _faulted_call, command, fn, tuple(tasks[index])
                )
            else:
                futures[index] = supervisor.submit(fn, *tasks[index])
        except pickle.PicklingError as exc:
            state.last_error[index] = exc
        except BrokenProcessPool as exc:
            # The pool broke under an earlier submission this round.
            state.last_error[index] = exc
            rebuild_needed = True
    return futures, rebuild_needed


def _collect_round(
    futures: dict[int, "Future[_T]"],
    state: _RunState[_T],
    policy: RetryPolicy,
) -> bool:
    """Collect round results in submission (index) order; rebuild needed?"""
    rebuild_needed = False
    for index in sorted(futures):
        try:
            state.results[index] = futures[index].result(
                timeout=policy.attempt_timeout
            )
        except FutureTimeoutError:
            # The worker may be hung: the attempt is charged to the
            # chunk and the pool is abandoned (a running task cannot be
            # cancelled, only orphaned).
            state.last_error[index] = TimeoutError(
                f"chunk attempt exceeded {policy.attempt_timeout}s"
            )
            rebuild_needed = True
        except BrokenProcessPool as exc:
            state.last_error[index] = exc
            rebuild_needed = True
        except Exception as exc:  # worker-raised error; pool still healthy
            state.last_error[index] = exc
    return rebuild_needed
