"""Sanctioned observability bridge for the resilience layer.

Mirrors ``kernels/record.py``: every fault-injection and retry event the
resilience layer reports funnels through the early-return guarded
helpers below, so the retry runner itself stays free of unguarded
``obs`` calls and the disabled path allocates nothing.

Metric vocabulary (all labelled by the submission ``site``):

* ``fault_injected_total{site,kind}`` — faults an active
  :class:`~repro.resilience.faults.FaultPlan` injected;
* ``retry_attempts_total{site}`` — chunk re-submissions after a failure;
* ``retry_rounds_total{site}`` — recovery rounds (each backs off);
* ``retry_pool_rebuilds_total{site}`` — executors rebuilt after a crash
  or a hung worker;
* ``retry_exhausted_total{site}`` — chunks whose retry budget ran out;
* ``degraded_mode{site}`` — gauge, 1 when the most recent run at the
  site completed through the serial fallback, 0 when it stayed on the
  pool path.

Spans: a ``retry`` span brackets each recovery round and a ``fault``
span point marks each injection, so flight-recorder captures show
exactly where a run lost time to failures.
"""

from __future__ import annotations

from .. import obs
from ..obs import NO_SPAN, SpanHandle

__all__ = [
    "record_fault",
    "record_retry_round",
    "record_pool_rebuild",
    "record_exhausted",
    "record_run_outcome",
    "retry_span",
]


def record_fault(site: str, kind: str) -> None:
    """One fault was injected by the active plan (only when obs is on)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "fault_injected_total",
        "Faults injected by the active FaultPlan.",
        labels=("site", "kind"),
    ).inc(site=site, kind=kind)
    obs.span_point("fault", site=site, kind=kind)


def record_retry_round(site: str, chunks: int) -> None:
    """One recovery round re-submits ``chunks`` failed chunks."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "retry_rounds_total",
        "Recovery rounds run by the retry engine.",
        labels=("site",),
    ).inc(site=site)
    obs.registry.counter(
        "retry_attempts_total",
        "Chunk re-submissions after a failed attempt.",
        labels=("site",),
    ).inc(chunks, site=site)


def record_pool_rebuild(site: str) -> None:
    """The worker pool was torn down and rebuilt after a failure."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "retry_pool_rebuilds_total",
        "Process pools rebuilt after a crash or hung worker.",
        labels=("site",),
    ).inc(site=site)


def record_exhausted(site: str, chunks: int) -> None:
    """``chunks`` chunks ran out of retry budget at ``site``."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "retry_exhausted_total",
        "Chunks whose retry budget was exhausted.",
        labels=("site",),
    ).inc(chunks, site=site)


def record_run_outcome(site: str, degraded: bool) -> None:
    """Set the per-site degraded-mode gauge for the finished run."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.gauge(
        "degraded_mode",
        "1 when the last run at the site fell back to the serial path.",
        labels=("site",),
    ).set(1 if degraded else 0, site=site)


def retry_span(site: str, round_index: int, chunks: int) -> SpanHandle:
    """Span bracketing one *recovery* round (``NO_SPAN`` when obs is off).

    Round 0 — the ordinary first submission — gets no span: a healthy
    run must leave the trace exactly as it was before the retry engine
    existed.
    """
    if round_index <= 0:
        return NO_SPAN
    if not obs.enabled:  # call sites check too; this is defence in depth
        return NO_SPAN
    return obs.span("retry", site=site, round=round_index, chunks=chunks)
