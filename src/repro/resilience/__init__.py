"""Fault-tolerant execution layer (parallel → **resilience** → obs).

Three pieces, used together by both parallel paths and the store
loaders (see ``docs/robustness.md``):

* :mod:`~repro.resilience.faults` — deterministic, seedable fault
  injection at named sites (:class:`FaultPlan`, activated explicitly
  via :func:`fault_plan` or ambiently via the ``REPRO_FAULTS``
  environment spec);
* :mod:`~repro.resilience.retry` — the :class:`RetryPolicy` budget
  (retries, per-attempt timeouts, deadline, capped exponential
  backoff, degrade-or-raise) and the typed failures
  (:class:`ChunkFailureError`, :class:`RetryBudgetExhausted`);
* :mod:`~repro.resilience.runner` — the round-based retry engine
  (:func:`run_chunks`) every ``ProcessPoolExecutor`` submission routes
  through, preserving submission-order merges so retried runs stay
  bit-identical to serial.

:mod:`~repro.resilience.health` keeps the process-local degradation
ledger the CLI's exit status 3 is derived from, and
``resilience/record.py`` is the layer's sanctioned ``repro.obs``
bridge (``fault_*``/``retry_*`` counters, ``degraded_mode`` gauge,
``fault``/``retry`` spans).
"""

from __future__ import annotations

from .faults import (
    ENV_VAR,
    FAULT_KINDS,
    FaultCommand,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    active_plan,
    corrupt_bytes,
    execute_fault,
    fault_plan,
)
from .health import degraded_events, last_degraded_site
from .retry import ChunkFailureError, RetryBudgetExhausted, RetryPolicy
from .runner import ExecutorSupervisor, RunReport, run_chunks

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultCommand",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "active_plan",
    "corrupt_bytes",
    "execute_fault",
    "fault_plan",
    "degraded_events",
    "last_degraded_site",
    "ChunkFailureError",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "ExecutorSupervisor",
    "RunReport",
    "run_chunks",
]
