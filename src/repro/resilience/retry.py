"""Retry policy and the typed failures the retry engine raises.

A :class:`RetryPolicy` is a small frozen value object shared by both
parallel paths (mining and batched estimation): how many times a chunk
may be re-submitted, how long one attempt may run, how long the whole
run may take, how hard to back off between recovery rounds, and whether
an exhausted budget degrades to the serial path or raises.

Chunk results are pure functions of the task arguments, so retrying
(or falling back to serial) can never change a value — the policy is
purely an availability/latency knob, exactly like ``workers``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RetryPolicy",
    "ChunkFailureError",
    "RetryBudgetExhausted",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling budget for one parallel run.

    The default policy retries each chunk twice with capped exponential
    backoff between recovery rounds and degrades to the serial path
    when the budget runs out — a parallel call never fails outright
    unless asked to (:meth:`none`).
    """

    #: re-submissions allowed per chunk after its first attempt.
    max_retries: int = 2
    #: backoff before recovery round ``r``: ``base * 2**(r-1)`` seconds.
    backoff_base: float = 0.05
    #: ceiling on any single backoff sleep, in seconds.
    backoff_cap: float = 1.0
    #: wall-clock limit for one attempt; ``None`` waits indefinitely.
    #: A timed-out attempt abandons the pool (the worker may be hung)
    #: and counts against the chunk's retry budget.
    attempt_timeout: float | None = None
    #: wall-clock limit for the whole run; once exceeded, chunks still
    #: pending skip straight to fallback / failure.  ``None`` = no limit.
    deadline: float | None = None
    #: degrade to the serial path when a chunk's budget is exhausted
    #: (False = raise :class:`RetryBudgetExhausted` instead).
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be > 0, got {self.attempt_timeout}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail fast: no retries, no serial fallback.

        First chunk failure raises a chained
        :class:`ChunkFailureError` naming the chunk — the pre-resilience
        behaviour, minus the raw ``BrokenProcessPool``.
        """
        return cls(max_retries=0, backoff_base=0.0, fallback=False)

    def backoff_for(self, round_index: int) -> float:
        """Backoff (seconds) before recovery round ``round_index >= 1``."""
        if round_index <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2.0 ** (round_index - 1))


class ChunkFailureError(RuntimeError):
    """A parallel chunk failed and the run could not absorb it.

    Chains the last underlying failure (``BrokenProcessPool``,
    ``PicklingError``, a worker exception, or a timeout) via
    ``__cause__`` and names the failing chunk so the operator knows
    what to rerun.
    """

    def __init__(
        self,
        site: str,
        chunk_index: int,
        chunks: int,
        attempts: int,
        cause: BaseException | None = None,
    ) -> None:
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"chunk {chunk_index + 1}/{chunks} at {site!r} failed after "
            f"{attempts} attempt(s){detail}; rerun serially (workers=None) "
            "or widen the budget with RetryPolicy(max_retries=..., "
            "fallback=True)"
        )
        self.site = site
        self.chunk_index = chunk_index
        self.chunks = chunks
        self.attempts = attempts


class RetryBudgetExhausted(ChunkFailureError):
    """Every allowed attempt for a chunk failed (and fallback was off)."""
