"""Deterministic, seedable fault injection at named sites.

A :class:`FaultPlan` is a parent-side schedule of failures: each time
the retry runner is about to submit a chunk (or a store is about to
decode a payload) it *draws* against the plan, and a matching rule
yields a picklable :class:`FaultCommand` describing what should go
wrong.  Commands for pool sites travel to the worker with the task and
are executed there (:func:`execute_fault`); corruption commands are
applied parent-side to payload bytes (:func:`corrupt_bytes`).

Keeping the bookkeeping in the parent is what makes injected chaos
deterministic *and* convergent: a rule with ``times=2`` fires on
exactly two draws no matter how many worker processes crash, restart,
or get rebuilt along the way — a worker-side counter would reset with
every pool rebuild and re-fire forever.

Activation
----------
Tests install a plan explicitly with :func:`fault_plan`; end-to-end
runs (the CI chaos matrix) set the ``REPRO_FAULTS`` environment
variable to a spec string parsed by :meth:`FaultPlan.parse`:

.. code-block:: text

    spec    := clause (";" clause)*
    clause  := kind "@" site [":" option ("," option)*]
    kind    := "crash" | "hang" | "error" | "pickle" | "corrupt"
    site    := injection site name, or "*" for every site
    option  := "after=N"    skip the first N matching draws
             | "times=N"    fire on N draws, then disarm ("*" = forever)
             | "seconds=F"  hang duration (hang kind only)
             | "p=F"        fire probability in [0, 1] (seeded)
             | "seed=N"     seed for the p-stream (default 0)

Example: ``crash@mining.count_chunk:after=1,times=1`` kills the worker
handling the second chunk ever submitted at the mining site, once.

See ``docs/robustness.md`` for the site catalogue.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

from . import record

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultRule",
    "FaultCommand",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "fault_plan",
    "active_plan",
    "execute_fault",
    "corrupt_bytes",
]

#: Environment variable holding a fault spec for end-to-end chaos runs.
ENV_VAR = "REPRO_FAULTS"

#: Recognised fault kinds.
FAULT_KINDS = ("crash", "hang", "error", "pickle", "corrupt")

#: Kinds that execute inside (or on the way to) a pool worker.
POOL_KINDS = ("crash", "hang", "error", "pickle")

#: Exit status used by injected worker crashes (an arbitrary non-zero
#: value that is recognisable in worker exit logs).
CRASH_EXIT_STATUS = 86


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec string that cannot be parsed."""


class InjectedFault(RuntimeError):
    """The error raised inside a worker by an ``error``-kind fault."""


@dataclass(frozen=True)
class FaultRule:
    """One clause of a plan: *what* fails, *where*, and *when*."""

    kind: str
    site: str
    #: skip this many matching draws before arming.
    after: int = 0
    #: fire on this many draws once armed (``None`` = forever).
    times: int | None = 1
    #: hang duration in seconds (``hang`` kind only).
    seconds: float = 0.05
    #: fire probability per armed draw; < 1.0 uses a seeded stream.
    p: float = 1.0
    #: seed for the probability stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {', '.join(FAULT_KINDS)}"
            )
        if not self.site:
            raise FaultSpecError("fault rule needs a non-empty site name")
        if self.after < 0:
            raise FaultSpecError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise FaultSpecError(f"times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise FaultSpecError(f"seconds must be >= 0, got {self.seconds}")
        if not 0.0 <= self.p <= 1.0:
            raise FaultSpecError(f"p must be within [0, 1], got {self.p}")

    def matches(self, site: str) -> bool:
        return self.site == "*" or self.site == site


@dataclass(frozen=True)
class FaultCommand:
    """A picklable instruction produced by a draw, shipped with a task."""

    kind: str
    site: str
    seconds: float = 0.0


class FaultPlan:
    """A deterministic schedule of faults, drawn one submission at a time.

    The plan owns all counting state, so it must only be consulted from
    the parent process (the retry runner and the store loaders do).
    """

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self.rules = tuple(rules)
        #: total commands this plan has issued (all rules).
        self.injected = 0
        # per-rule matched-draw counts / seeded probability streams.
        self._hits: dict[int, int] = {}
        self._rngs: dict[int, random.Random] = {}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string (grammar above)."""
        rules = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if clause:
                rules.append(_parse_clause(clause))
        if not rules:
            raise FaultSpecError(f"fault spec {spec!r} contains no clauses")
        return cls(rules)

    def draw(
        self, site: str, kinds: Sequence[str] = POOL_KINDS
    ) -> FaultCommand | None:
        """Next command for a submission at ``site``, if any rule fires.

        ``kinds`` restricts which rule kinds apply at this call site
        (store loaders only honour ``corrupt``; pool submissions honour
        everything else).  Rules of other kinds neither fire nor consume
        a draw.  First matching armed rule wins.
        """
        for index, rule in enumerate(self.rules):
            if rule.kind not in kinds or not rule.matches(site):
                continue
            hit = self._hits.get(index, 0)
            self._hits[index] = hit + 1
            if hit < rule.after:
                continue
            if rule.times is not None and hit >= rule.after + rule.times:
                continue
            if rule.p < 1.0:
                rng = self._rngs.get(index)
                if rng is None:
                    rng = random.Random(rule.seed)
                    self._rngs[index] = rng
                if rng.random() >= rule.p:
                    continue
            self.injected += 1
            return FaultCommand(kind=rule.kind, site=site, seconds=rule.seconds)
        return None


def _parse_clause(clause: str) -> FaultRule:
    head, _, opts = clause.partition(":")
    kind, sep, site = head.partition("@")
    if not sep:
        raise FaultSpecError(
            f"fault clause {clause!r} is missing '@site' "
            "(expected kind@site[:opt,...])"
        )
    fields: dict[str, int | float | None] = {}
    for opt in opts.split(",") if opts else []:
        opt = opt.strip()
        if not opt:
            continue
        key, sep, value = opt.partition("=")
        if not sep:
            raise FaultSpecError(f"fault option {opt!r} is not key=value")
        try:
            if key in ("after", "seed"):
                fields[key] = int(value)
            elif key == "times":
                fields[key] = None if value == "*" else int(value)
            elif key in ("seconds", "p"):
                fields[key] = float(value)
            else:
                raise FaultSpecError(
                    f"unknown fault option {key!r} "
                    "(after/times/seconds/p/seed)"
                )
        except ValueError as exc:
            if isinstance(exc, FaultSpecError):
                raise
            raise FaultSpecError(
                f"bad value for fault option {key!r}: {value!r}"
            ) from exc
    return FaultRule(kind=kind.strip(), site=site.strip(), **fields)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Activation: explicit installs override the environment spec
# ----------------------------------------------------------------------

_installed: FaultPlan | None = None
_install_active = False
_env_plan: FaultPlan | None = None
_env_spec_seen: str | None = None


def active_plan() -> FaultPlan | None:
    """The plan draws consult: the installed one, else ``REPRO_FAULTS``.

    The environment spec is parsed once per distinct value and the plan
    object (with its counting state) is reused for the process lifetime,
    so ``times=N`` windows hold across every run in the process.
    """
    if _install_active:
        return _installed
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    global _env_plan, _env_spec_seen
    if spec != _env_spec_seen:
        _env_plan = FaultPlan.parse(spec)
        _env_spec_seen = spec
    return _env_plan


@contextmanager
def fault_plan(plan: "FaultPlan | str | None") -> Iterator[FaultPlan | None]:
    """Install ``plan`` for the scope (a spec string is parsed first).

    ``fault_plan(None)`` disarms injection entirely for the scope, even
    when ``REPRO_FAULTS`` is set — tests asserting exact metric counts
    use it to shield themselves from an ambient chaos matrix.
    """
    global _installed, _install_active
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    previous, previous_active = _installed, _install_active
    _installed, _install_active = plan, True
    try:
        yield plan
    finally:
        _installed, _install_active = previous, previous_active


# ----------------------------------------------------------------------
# Execution hooks
# ----------------------------------------------------------------------


def execute_fault(command: FaultCommand) -> None:
    """Carry out a pool-kind command inside the worker process.

    Called by the retry runner's task wrapper before the real chunk
    function runs.  ``crash`` hard-exits the worker (the parent sees
    ``BrokenProcessPool``); ``hang`` sleeps for ``seconds`` and then
    proceeds normally, so it only bites when the caller set a
    per-attempt timeout; ``error`` raises :class:`InjectedFault`;
    ``pickle`` is normally simulated parent-side at submission, with a
    worker-side raise kept as defence in depth.
    """
    if command.kind == "crash":
        os._exit(CRASH_EXIT_STATUS)
    elif command.kind == "hang":
        time.sleep(command.seconds)
    elif command.kind == "error":
        raise InjectedFault(f"injected worker error at {command.site!r}")
    elif command.kind == "pickle":  # pragma: no cover - parent-side normally
        raise pickle.PicklingError(
            f"injected pickling failure at {command.site!r}"
        )


def corrupt_bytes(site: str, data: bytes) -> bytes:
    """Payload-corruption hook for store loaders.

    When the active plan has an armed ``corrupt`` rule for ``site``, one
    byte in the middle of ``data`` is flipped — the checksum layer must
    turn that into a typed ``ChecksumMismatch``.  With no armed rule the
    bytes pass through untouched, so production loads pay one plan
    lookup (usually ``None``) and nothing else.
    """
    plan = active_plan()
    if plan is None or not data:
        return data
    command = plan.draw(site, kinds=("corrupt",))
    if command is None:
        return data
    record.record_fault(site, "corrupt")
    position = len(data) // 2
    flipped = bytearray(data)
    flipped[position] ^= 0xFF
    return bytes(flipped)
