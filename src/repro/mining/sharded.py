"""Shard → merge lattice construction (the compositional mining path).

The whole-document miner (:func:`~repro.mining.freqt.mine_lattice`)
builds one summary in one pass; this module re-layers that construction
around the store monoid so summaries *compose*:

1. **Plan** — :func:`~repro.trees.regions.plan_shards` splits the
   document into pairwise-disjoint subtree shards plus a small *residue*
   (the split spine: ancestors of the shard roots).
2. **Mine** — each shard subtree is mined independently (serially here,
   or fanned out over workers through the retry engine by
   :class:`~repro.parallel.sharding.ShardMiningPool`) into its own
   :class:`~repro.store.DictStore`.
3. **Correct** — every pattern occurrence maps its root to exactly one
   document node; occurrences rooted inside a shard subtree are counted
   by that shard's mine, so the only ones missing are those rooted at a
   residue node.  :func:`anchored_counts` counts exactly those against
   the *full* document index (the multi-anchor generalisation of the
   incremental layer's root-anchored argument), so cross-shard patterns
   are counted exactly once.
4. **Merge** — shard stores and the boundary correction combine through
   :meth:`~repro.store.SummaryStore.merge` (counts add), then one
   reorder pass replays the merged counts in the serial miner's exact
   emission order: level 1 in the document's label-first-occurrence
   order, every deeper level in ascending canon order.  The result is
   **bit-identical to the serial path — counts and dict order** — which
   is a CI acceptance gate, not an aspiration.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..store.dict_store import DictStore
from ..trees.canonical import Canon, canon, canon_size, canon_to_tree
from ..trees.labeled_tree import LabeledTree
from ..trees.matching import DocumentIndex, _rooted
from ..trees.regions import ShardPlan, plan_shards
from .freqt import MiningResult, mine_lattice

if TYPE_CHECKING:  # runtime import is lazy: repro.parallel pulls in core
    from ..resilience import RetryPolicy
    from ..store import SummaryStore

__all__ = [
    "anchored_counts",
    "merge_shard_stores",
    "mine_shard_store",
    "mine_lattice_sharded",
]


def anchored_counts(
    index: DocumentIndex, anchors: Sequence[int], max_size: int
) -> dict[Canon, int]:
    """Occurrence counts restricted to pattern roots in ``anchors``.

    For every pattern of ``<= max_size`` nodes, the number of matches
    whose *pattern root* maps to one of the anchor nodes, counted
    against the full document.  Level-wise enumeration seeded at the
    anchors' labels; completeness follows from the leaf-removal closure
    (removing a non-root leaf of an anchored pattern leaves an anchored
    pattern at the same node).  With ``anchors = [root]`` this is the
    incremental layer's root-anchored delta; with a shard plan's residue
    it is the boundary-pattern correction of the sharded mine.
    """
    out: dict[Canon, int] = {}
    if not anchors or max_size < 1:
        return out
    tree = index.tree
    memo: dict[Canon, dict[int, int]] = {}
    for anchor in anchors:
        seed = (tree.label(anchor), ())
        out[seed] = out.get(seed, 0) + 1
    frontier = sorted(out)
    for _size in range(2, max_size + 1):
        candidates: set[Canon] = set()
        for pattern in frontier:
            shape = canon_to_tree(pattern)
            for node in range(shape.size):
                grow = index.child_labels.get(shape.label(node))
                if not grow:
                    continue
                for label in sorted(grow):
                    candidates.add(canon(shape.with_child(node, label)))
        frontier = []
        for candidate in sorted(candidates):
            rooted = _rooted(candidate, index, memo)
            anchored = sum(rooted.get(anchor, 0) for anchor in anchors)
            if anchored:
                out[candidate] = anchored
                frontier.append(candidate)
        if not frontier:
            break
    return out


def mine_shard_store(subtree: LabeledTree, max_size: int) -> DictStore:
    """Mine one shard subtree into a fresh :class:`DictStore`.

    Runs in shard-mining workers (and as the serial shard path), so it
    must stay a pure function of its arguments — the store arrives back
    in the parent as a checksummed payload.
    """
    store = DictStore()
    mine_lattice(subtree, max_size, sink=store)
    return store


def mine_lattice_sharded(
    document: LabeledTree | DocumentIndex,
    max_size: int,
    *,
    shards: int,
    workers: int | None = None,
    sink: "SummaryStore | None" = None,
    retry: "RetryPolicy | None" = None,
) -> MiningResult:
    """Mine ``document`` shard-by-shard and merge — bit-identical to serial.

    Parameters mirror :func:`~repro.mining.freqt.mine_lattice` where
    they overlap; ``shards`` sets the planner's granularity target
    (``1`` collapses to a single whole-document shard) and ``workers``
    fans shard mining out over processes through the retry engine
    (``None``/``1`` = serial, ``0`` = one per core).  The returned
    result and everything streamed into ``sink`` match the serial
    miner's output exactly: counts *and* emission order.
    """
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    index = document if isinstance(document, DocumentIndex) else DocumentIndex(document)
    if not obs.enabled:
        return _mine_sharded(index, max_size, shards, workers, sink, retry)
    with obs.span("sharded_mine", shards=shards, max_size=max_size):
        return _mine_sharded(index, max_size, shards, workers, sink, retry)


def _mine_sharded(
    index: DocumentIndex,
    max_size: int,
    shards: int,
    workers: int | None,
    sink: "SummaryStore | None",
    retry: "RetryPolicy | None",
) -> MiningResult:
    tree = index.tree
    plan = plan_shards(tree, shards)
    n_workers = 1
    if workers is not None:
        from ..parallel.pool import resolve_workers

        n_workers = resolve_workers(workers)

    mining_start = time.perf_counter()
    subtrees = [tree.subtree_at(root) for root in plan.roots]
    if n_workers > 1 and len(subtrees) > 1:
        from ..parallel.sharding import ShardMiningPool

        with ShardMiningPool(max_size, n_workers, retry=retry) as pool:
            shard_stores = pool.mine(subtrees)
    else:
        shard_stores = [mine_shard_store(subtree, max_size) for subtree in subtrees]
    mining_seconds = time.perf_counter() - mining_start

    boundary_start = time.perf_counter()
    boundary = anchored_counts(index, plan.residue, max_size)
    boundary_seconds = time.perf_counter() - boundary_start

    merge_start = time.perf_counter()
    levels = merge_shard_stores(index, shard_stores, boundary, max_size)
    if sink is not None:
        for level in levels.values():
            for pattern, count in level.items():
                sink.add(pattern, count)
    merge_seconds = time.perf_counter() - merge_start

    if obs.enabled:
        _record_sharded(
            plan, mining_seconds, boundary_seconds, merge_seconds, levels
        )
    return MiningResult(levels=levels, max_size=max_size)


def merge_shard_stores(
    index: DocumentIndex,
    shard_stores: Sequence[DictStore],
    boundary: dict[Canon, int],
    max_size: int,
) -> dict[int, dict[Canon, int]]:
    """Fold shard stores + boundary correction, replaying serial order.

    This is the entire post-mining phase of the sharded path — monoid
    folds of the shard stores, one more fold for the residue-anchored
    boundary counts, and the serial-order replay — exposed as one pure
    function so the benchmark gate (``bench_smoke``'s shard-merge timed
    region) measures exactly what the runtime executes.
    """
    merged = DictStore()
    for store in shard_stores:
        merged = merged.merge(store)
    if boundary:
        merged = merged.merge(DictStore.from_counts(boundary))
    return _serial_order_levels(index, merged, max_size)


def _serial_order_levels(
    index: DocumentIndex, merged: DictStore, max_size: int
) -> dict[int, dict[Canon, int]]:
    """Replay merged counts in the serial miner's exact emission order.

    The serial miner emits level 1 in ``nodes_by_label`` insertion order
    (labels in first-occurrence node order) and every deeper level in
    ascending canon order (it walks ``sorted(candidates)`` and the
    occurring patterns are a subset), stopping after the first empty
    level.  Reproducing that order from the merged counts is what makes
    the sharded path bit-identical to the serial one, dict order
    included.
    """
    counts = dict(merged.items())
    levels: dict[int, dict[Canon, int]] = {}
    level1: dict[Canon, int] = {}
    for label in index.nodes_by_label:
        key: Canon = (label, ())
        level1[key] = counts.pop(key)
    levels[1] = level1
    by_size: dict[int, list[Canon]] = {}
    for key in counts:
        by_size.setdefault(canon_size(key), []).append(key)
    for size in range(2, max_size + 1):
        level = {key: counts[key] for key in sorted(by_size.get(size, []))}
        levels[size] = level
        if not level:
            break
    return levels


def _record_sharded(
    plan: ShardPlan,
    mining_seconds: float,
    boundary_seconds: float,
    merge_seconds: float,
    levels: dict[int, dict[Canon, int]],
) -> None:
    """Shard-phase metrics (only called when observability is on)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "shard_mines_total", "Sharded lattice mines since process start."
    ).inc()
    obs.registry.gauge(
        "shard_plan_roots", "Shard subtrees in the last shard plan."
    ).set(plan.num_shards)
    obs.registry.gauge(
        "shard_plan_residue", "Residue (spine) nodes in the last shard plan."
    ).set(len(plan.residue))
    obs.registry.timer(
        "shard_mining_seconds", "Wall time mining all shard subtrees."
    ).observe(mining_seconds)
    obs.registry.timer(
        "shard_boundary_seconds",
        "Wall time counting residue-rooted boundary patterns.",
    ).observe(boundary_seconds)
    obs.registry.timer(
        "shard_merge_seconds",
        "Wall time merging shard stores and replaying serial order.",
    ).observe(merge_seconds)
    obs.event(
        "sharded_mine",
        shards=plan.num_shards,
        residue=len(plan.residue),
        patterns=sum(len(level) for level in levels.values()),
        mining_seconds=round(mining_seconds, 6),
        boundary_seconds=round(boundary_seconds, 6),
        merge_seconds=round(merge_seconds, 6),
    )
