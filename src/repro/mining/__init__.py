"""Frequent subtree mining: the level-wise lattice enumeration engine."""

from .freqt import MiningResult, mine_lattice, pattern_counts_by_level

__all__ = ["MiningResult", "mine_lattice", "pattern_counts_by_level"]
