"""Frequent subtree mining: the level-wise lattice enumeration engine.

Two construction paths build the same summary: the whole-document
level-wise miner (:func:`mine_lattice`) and the compositional shard →
merge path (:func:`mine_lattice_sharded`), which mines disjoint subtree
shards independently, counts residue-rooted boundary patterns once, and
merges through the store monoid — bit-identical to the serial path,
counts and dict order.
"""

from .freqt import MiningResult, mine_lattice, pattern_counts_by_level
from .sharded import (
    anchored_counts,
    merge_shard_stores,
    mine_lattice_sharded,
    mine_shard_store,
)

__all__ = [
    "MiningResult",
    "mine_lattice",
    "mine_lattice_sharded",
    "mine_shard_store",
    "anchored_counts",
    "merge_shard_stores",
    "pattern_counts_by_level",
]
