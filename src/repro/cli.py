"""Command-line interface for the TreeLattice toolkit.

Subcommands mirror the deployment workflow:

* ``summarize`` — parse an XML file, mine its k-lattice (optionally in
  parallel with ``--workers``), optionally prune δ-derivable patterns,
  write the summary to disk (``--store {dict,array}`` picks the count
  backend; ``array`` writes the compact binary container;
  ``--shards N`` routes construction through the shard → merge path,
  ``--stream`` through the streaming insert path — both bit-identical
  in counts to the one-shot build);
* ``merge`` — combine two or more saved summaries of the same lattice
  level into one (counts add per pattern — the store monoid applied at
  the corpus level);
* ``estimate`` — estimate a twig query against a saved summary, or a
  whole workload file with ``--batch`` (fanned out with ``--workers``);
  ``--store`` converts the loaded summary to another backend first;
  ``--explain`` / ``--explain-json`` print the derivation assembled
  from the spans of the very execution that produced the answer;
* ``explain`` — show the full decomposition trace of an estimate;
* ``trace`` — run estimation under the span flight recorder and write
  a Chrome-trace file (load it at ``chrome://tracing``);
* ``exact`` — exact match count straight off the document (ground truth);
* ``mine`` — report occurring-pattern counts per level (Table 2 style);
* ``stats`` — summary structure plus live estimation metrics;
* ``dataset`` — generate one of the paper's synthetic stand-in corpora.

``summarize`` and ``estimate`` accept ``--metrics-json PATH`` and
``--trace PATH`` to capture the run's metrics registry and structured
estimation trace (see ``docs/observability.md``).

``summarize`` and ``estimate`` accept ``--retry N`` / ``--timeout S``
to give parallel work a failure budget: crashed, hung, or failed chunks
are retried (with capped exponential backoff) and, once the budget runs
out, completed serially in-process (see ``docs/robustness.md``).

Exit codes: 0 success; 2 usage errors (unparseable query, missing or
corrupt summary file); 3 completed but degraded (parallel work fell
back to the serial path after exhausting its retry budget — results
are still exact); 1 any other handled failure.

Run ``python -m repro <subcommand> --help`` for the flags of each.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from typing import Callable

from . import obs
from .resilience import (
    ChunkFailureError,
    RetryPolicy,
    degraded_events,
    last_degraded_site,
)
from .core.estimator import SelectivityEstimator
from .core.explain import explain as explain_query
from .core.explain import explanation_from_spans
from .core.fixed import FixedDecompositionEstimator
from .core.lattice import LatticeSummary
from .core.markov import MarkovPathEstimator
from .core.pruning import pruning_report
from .core.recursive import RecursiveDecompositionEstimator
from .datasets import DATASET_GENERATORS, generate_dataset
from .mining.freqt import pattern_counts_by_level
from .store.errors import MergeError
from .trees.labeled_tree import LabeledTree
from .trees.matching import count_matches
from .trees.serialize import tree_from_xml_file, tree_to_xml_file
from .trees.twig import TwigParseError, TwigQuery

__all__ = ["main", "build_parser"]


class CliUsageError(Exception):
    """Bad input the user can fix (exit status 2): unparseable query,
    missing or corrupt summary file."""


#: Exit status for runs that completed with exact results but had to
#: fall back to the serial path after exhausting their retry budget.
EXIT_DEGRADED = 3


def _retry_policy(args: argparse.Namespace) -> RetryPolicy | None:
    """Build the parallel failure budget from ``--retry`` / ``--timeout``.

    ``None`` (neither flag given) keeps the library default: no
    retries, failures raise.  Either flag alone implies the other's
    default (2 retries / no timeout), and the CLI always degrades to
    serial rather than failing — surfaced via exit status 3.
    """
    retries = getattr(args, "retry", None)
    timeout = getattr(args, "timeout", None)
    if retries is None and timeout is None:
        return None
    if retries is not None and retries < 0:
        raise CliUsageError(f"--retry must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise CliUsageError(f"--timeout must be > 0 seconds, got {timeout}")
    return RetryPolicy(
        max_retries=retries if retries is not None else 2,
        attempt_timeout=timeout,
        fallback=True,
    )


def _degradation_status(events_before: int) -> int:
    """0, or :data:`EXIT_DEGRADED` when serial fallbacks happened."""
    fallen_back = degraded_events() - events_before
    if not fallen_back:
        return 0
    print(
        f"warning: {fallen_back} chunk(s) at {last_degraded_site()!r} fell "
        "back to the serial path after exhausting the retry budget; "
        "results are exact but the run was degraded",
        file=sys.stderr,
    )
    return EXIT_DEGRADED


def _parse_query(text: str) -> TwigQuery:
    try:
        return TwigQuery.parse(text)
    except TwigParseError as exc:
        raise CliUsageError(f"cannot parse query {text!r}: {exc}") from exc


def _load_summary(path: str) -> LatticeSummary:
    try:
        return LatticeSummary.load(path)
    except (OSError, ValueError) as exc:
        raise CliUsageError(f"cannot load summary {path!r}: {exc}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TreeLattice: XML twig selectivity estimation (EDBT 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="mine an XML file into a lattice summary")
    p.add_argument("xml", help="input XML document")
    p.add_argument("-k", "--level", type=int, default=4, help="lattice level (default 4)")
    p.add_argument("-o", "--output", required=True, help="summary output path")
    p.add_argument(
        "--prune",
        type=float,
        default=None,
        metavar="DELTA",
        help="prune DELTA-derivable patterns (0 = lossless)",
    )
    p.add_argument(
        "--attributes", action="store_true", help="model attributes as child nodes"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for mining (0 = one per core; default serial)",
    )
    _add_resilience_flags(p)
    p.add_argument(
        "--store",
        choices=("dict", "array"),
        default="dict",
        help="summary count backend (array = interned ids, compact binary file)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "mine through the shard -> merge path with ~N subtree shards "
            "(bit-identical to the serial path; --workers then fans out "
            "whole shards)"
        ),
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help=(
            "build through the streaming path: insert each top-level "
            "record as a monoid delta, then compact"
        ),
    )
    _add_observability_flags(p)
    p.set_defaults(handler=_cmd_summarize)

    p = sub.add_parser(
        "merge",
        help="merge summaries of the same level (counts add per pattern)",
    )
    p.add_argument(
        "summaries", nargs="+", help="summary files written by 'summarize'"
    )
    p.add_argument("-o", "--output", required=True, help="merged summary output path")
    _add_observability_flags(p)
    p.set_defaults(handler=_cmd_merge)

    p = sub.add_parser("estimate", help="estimate a twig query from a summary")
    p.add_argument("summary", help="summary file written by 'summarize'")
    p.add_argument(
        "query",
        nargs="?",
        default=None,
        help="twig query (XPath subset or pattern codec)",
    )
    p.add_argument(
        "--batch",
        metavar="FILE",
        default=None,
        help="estimate every query in FILE (one per line, # comments)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --batch (0 = one per core; default serial)",
    )
    _add_resilience_flags(p)
    p.add_argument(
        "--estimator",
        choices=("recursive", "voting", "fixed", "markov"),
        default="voting",
        help="estimation scheme (default: recursive + voting)",
    )
    p.add_argument(
        "--backend",
        choices=("auto", "plan", "array", "numpy"),
        default=None,
        metavar="NAME",
        help="warm-replay backend for --batch: plan = legacy per-query "
        "replay (default), array/numpy = vectorised flat-array kernels, "
        "auto = fastest available; all are bit-identical",
    )
    p.add_argument(
        "--store",
        choices=("dict", "array"),
        default=None,
        help="convert the loaded summary to this backend before estimating",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the decomposition derivation recorded during this "
        "very estimate (recursive/voting, single query only)",
    )
    p.add_argument(
        "--explain-json",
        action="store_true",
        help="like --explain but emit the derivation as JSON",
    )
    _add_observability_flags(p)
    p.set_defaults(handler=_cmd_estimate)

    p = sub.add_parser(
        "stats", help="summary structure plus live estimation metrics"
    )
    p.add_argument("summary", help="summary file written by 'summarize'")
    p.add_argument(
        "queries", nargs="*", help="twig queries to estimate while measuring"
    )
    p.add_argument(
        "--estimator",
        choices=("recursive", "voting", "fixed", "markov"),
        default="voting",
    )
    p.add_argument(
        "--format",
        choices=("table", "json", "prometheus"),
        default="table",
        help="metrics output format (default: table)",
    )
    p.set_defaults(handler=_cmd_stats)

    p = sub.add_parser("explain", help="show the decomposition trace of an estimate")
    p.add_argument("summary", help="summary file written by 'summarize'")
    p.add_argument("query", help="twig query")
    p.add_argument("--voting", action="store_true", help="trace the voting estimator")
    p.set_defaults(handler=_cmd_explain)

    p = sub.add_parser(
        "trace",
        help="record estimation spans and write a chrome://tracing file",
    )
    p.add_argument("summary", help="summary file written by 'summarize'")
    p.add_argument(
        "query",
        nargs="?",
        default=None,
        help="twig query (XPath subset or pattern codec)",
    )
    p.add_argument(
        "--batch",
        metavar="FILE",
        default=None,
        help="trace every query in FILE (one per line, # comments)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --batch (0 = one per core; default serial)",
    )
    p.add_argument(
        "--estimator",
        choices=("recursive", "voting", "fixed", "markov"),
        default="voting",
    )
    p.add_argument(
        "--store",
        choices=("dict", "array"),
        default=None,
        help="convert the loaded summary to this backend before estimating",
    )
    p.add_argument(
        "-o",
        "--output",
        required=True,
        help="Chrome-trace JSON output path (load at chrome://tracing)",
    )
    p.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        metavar="RATE",
        help="head-based span sampling rate in [0, 1] (default 1.0)",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="sampling phase seed (default 0)"
    )
    p.set_defaults(handler=_cmd_trace)

    p = sub.add_parser("exact", help="exact twig match count from the document")
    p.add_argument("xml", help="input XML document")
    p.add_argument("query", help="twig query")
    p.add_argument("--attributes", action="store_true")
    p.set_defaults(handler=_cmd_exact)

    p = sub.add_parser("mine", help="report pattern counts per level")
    p.add_argument("xml", help="input XML document")
    p.add_argument("-k", "--level", type=int, default=4)
    p.add_argument("--attributes", action="store_true")
    p.set_defaults(handler=_cmd_mine)

    p = sub.add_parser(
        "catalog", help="manage a directory of summaries for many documents"
    )
    p.add_argument("directory", help="catalog directory (created if missing)")
    catalog_sub = p.add_subparsers(dest="catalog_command", required=True)

    c = catalog_sub.add_parser("register", help="mine a document into the catalog")
    c.add_argument("name", help="catalog entry name")
    c.add_argument("xml", help="input XML document")
    c.add_argument("-k", "--level", type=int, default=4)
    c.add_argument(
        "--budget", type=int, default=None, help="byte budget (prunes to fit)"
    )
    c.add_argument("--attributes", action="store_true")
    c.set_defaults(handler=_cmd_catalog_register)

    c = catalog_sub.add_parser("list", help="show catalog entries")
    c.set_defaults(handler=_cmd_catalog_list)

    c = catalog_sub.add_parser("estimate", help="estimate against an entry")
    c.add_argument("name")
    c.add_argument("query")
    c.add_argument(
        "--estimator",
        choices=("recursive", "voting", "fixed", "markov"),
        default="voting",
    )
    c.set_defaults(handler=_cmd_catalog_estimate)

    c = catalog_sub.add_parser("forget", help="drop an entry")
    c.add_argument("name")
    c.set_defaults(handler=_cmd_catalog_forget)

    p = sub.add_parser("dataset", help="generate a synthetic stand-in corpus")
    p.add_argument("name", choices=sorted(DATASET_GENERATORS))
    p.add_argument("-n", "--scale", type=int, default=None, help="record count / scale")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True, help="XML output path")
    p.set_defaults(handler=_cmd_dataset)

    return parser


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="retry each failed parallel chunk up to N times, then finish "
        "it serially (exact results, exit status 3)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon a parallel chunk attempt after SECONDS and retry it "
        "(hung-worker protection; implies --retry 2 unless given)",
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="capture the run's metrics registry as JSON",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="capture the structured estimation trace as JSONL",
    )


def _run_observed(args: argparse.Namespace, body: Callable[[], int]) -> int:
    """Run ``body`` under a capture window when either flag was given."""
    metrics_path = getattr(args, "metrics_json", None)
    trace_path = getattr(args, "trace", None)
    if not metrics_path and not trace_path:
        return body()
    with obs.observed(trace=bool(trace_path)) as (registry, tracer):
        code = body()
    if metrics_path:
        obs.write_metrics_json(registry, metrics_path)
        print(f"metrics written to {metrics_path}")
    if trace_path and tracer is not None:
        tracer.write(trace_path)
        print(f"trace written to {trace_path} ({len(tracer)} events)")
    return code


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------


def _cmd_summarize(args: argparse.Namespace) -> int:
    return _run_observed(args, lambda: _do_summarize(args))


def _do_summarize(args: argparse.Namespace) -> int:
    if args.shards is not None and args.stream:
        raise CliUsageError(
            "--shards and --stream are alternative construction paths; "
            "give at most one"
        )
    if args.shards is not None and args.shards < 1:
        raise CliUsageError(f"--shards must be >= 1, got {args.shards}")
    start = time.perf_counter()
    document = tree_from_xml_file(args.xml, include_attributes=args.attributes)
    parse_seconds = time.perf_counter() - start
    print(f"parsed {document.size} nodes in {parse_seconds:.2f}s")

    events_before = degraded_events()
    if args.stream:
        summary = _summarize_streaming(document, args)
    else:
        summary = LatticeSummary.build(
            document,
            args.level,
            workers=args.workers,
            store=args.store,
            retry=_retry_policy(args),
            shards=args.shards,
        )
    print(
        f"mined {summary.num_patterns} patterns "
        f"({summary.byte_size()} bytes, {summary.backend} store) "
        f"in {summary.construction_seconds:.2f}s"
    )
    if args.prune is not None:
        summary, report = pruning_report(summary, args.prune, voting=True)
        print(
            f"pruned {report.patterns_removed} derivable patterns "
            f"(saving {report.space_saving * 100:.0f}%: "
            f"{report.bytes_before} -> {report.bytes_after} bytes)"
        )
    summary.save(args.output)
    print(f"summary written to {args.output}")
    return _degradation_status(events_before)


def _summarize_streaming(
    document: LabeledTree, args: argparse.Namespace
) -> LatticeSummary:
    """Build via the streaming path: one insert per top-level record.

    Exercises the same monoid delta machinery as live maintenance; the
    final compacted counts equal the one-shot build's exactly (the
    text container sorts keys, so the dict-backend file is identical).
    """
    from .core.streaming import StreamingSummary

    start = time.perf_counter()
    seed = LabeledTree(document.label(document.root))
    streaming = StreamingSummary(seed, args.level, store=args.store)
    records = list(document.child_ids(document.root))
    for child in records:
        streaming.insert(document.subtree_at(child))
    summary = streaming.compact()
    summary.construction_seconds = time.perf_counter() - start
    print(f"streamed {len(records)} top-level records")
    return summary


def _cmd_merge(args: argparse.Namespace) -> int:
    return _run_observed(args, lambda: _do_merge(args))


def _do_merge(args: argparse.Namespace) -> int:
    if len(args.summaries) < 2:
        raise CliUsageError("merge needs at least two summary files")
    merged = _load_summary(args.summaries[0])
    for path in args.summaries[1:]:
        try:
            merged = merged.merge(_load_summary(path))
        except MergeError as exc:
            raise CliUsageError(f"cannot merge {path!r}: {exc}") from exc
    merged.save(args.output)
    print(
        f"merged {len(args.summaries)} summaries into {args.output} "
        f"({merged.num_patterns} patterns, level {merged.level}, "
        f"{merged.backend} store)"
    )
    return 0


def _estimator_for(name: str, summary: LatticeSummary) -> SelectivityEstimator:
    if name == "recursive":
        return RecursiveDecompositionEstimator(summary)
    if name == "voting":
        return RecursiveDecompositionEstimator(summary, voting=True)
    if name == "fixed":
        return FixedDecompositionEstimator(summary)
    return MarkovPathEstimator(summary)


def _cmd_estimate(args: argparse.Namespace) -> int:
    return _run_observed(args, lambda: _do_estimate(args))


def _do_estimate(args: argparse.Namespace) -> int:
    if args.batch is not None and args.query is not None:
        raise CliUsageError("give either a query or --batch FILE, not both")
    explaining = args.explain or args.explain_json
    if args.backend is not None and args.batch is None:
        raise CliUsageError("--backend only applies to --batch estimation")
    if explaining:
        if args.batch is not None:
            raise CliUsageError("--explain works on a single query, not --batch")
        if args.estimator not in ("recursive", "voting"):
            raise CliUsageError(
                "--explain requires the recursive or voting estimator "
                f"(got {args.estimator!r})"
            )
    summary = _load_summary(args.summary)
    if args.store is not None:
        summary = summary.to_store(args.store)
    estimator = _estimator_for(args.estimator, summary)
    if args.batch is not None:
        return _do_estimate_batch(args, estimator)
    if args.query is None:
        raise CliUsageError("missing query (or use --batch FILE)")
    query = _parse_query(args.query)
    if explaining:
        return _do_estimate_explained(args, estimator, query)
    start = time.perf_counter()
    estimate = estimator.estimate(query)
    elapsed_ms = (time.perf_counter() - start) * 1000
    print(f"query     : {args.query}")
    print(f"estimator : {estimator.name}")
    print(f"estimate  : {estimate:.2f}  (~{max(0, round(estimate))} matches)")
    print(f"time      : {elapsed_ms:.2f}ms")
    return 0


#: Span capacity for --explain captures: ample for deep voting runs.
_EXPLAIN_CAPACITY = 1 << 20


def _do_estimate_explained(
    args: argparse.Namespace,
    estimator: SelectivityEstimator,
    query: TwigQuery,
) -> int:
    """Estimate once under a full-rate flight recorder; print what ran.

    The derivation comes from the spans of this very execution, so the
    rendered trace is the answer's provenance, not a re-derivation.
    """
    with obs.flight_recorder(capacity=_EXPLAIN_CAPACITY) as recording:
        estimate = estimator.estimate(query)
    explanation = explanation_from_spans(recording.spans)
    if args.explain_json:
        payload = {
            "query": args.query,
            "estimator": estimator.name,
            "estimate": estimate,
            "derivation": explanation.to_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"query     : {args.query}")
    print(f"estimator : {estimator.name}")
    print(f"estimate  : {estimate:.2f}  (~{max(0, round(estimate))} matches)")
    print()
    print(explanation.render())
    print()
    print(
        f"estimate: {explanation.estimate:.4f} from "
        f"{len(explanation.lookups())} summary lookups"
    )
    return 0


def _read_batch_file(path: str) -> list[str]:
    """Query texts from a batch file: one per line, blank/# lines skipped."""
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as exc:
        raise CliUsageError(f"cannot read batch file {path!r}: {exc}") from exc
    texts = [
        line.strip()
        for line in lines
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not texts:
        raise CliUsageError(f"batch file {path!r} contains no queries")
    return texts


def _do_estimate_batch(
    args: argparse.Namespace, estimator: SelectivityEstimator
) -> int:
    texts = _read_batch_file(args.batch)
    queries = [_parse_query(text) for text in texts]
    start = time.perf_counter()
    events_before = degraded_events()
    estimates = estimator.estimate_batch(
        queries,
        workers=args.workers,
        backend=args.backend,
        retry=_retry_policy(args),
    )
    elapsed_ms = (time.perf_counter() - start) * 1000
    print(f"estimator : {estimator.name}")
    if args.backend is not None:
        from .kernels import resolve_backend

        print(f"backend   : {resolve_backend(args.backend)}")
    print(f"queries   : {len(queries)}  (from {args.batch})")
    for text, estimate in zip(texts, estimates):
        print(f"{text} ~= {estimate:.2f}")
    print(
        f"time      : {elapsed_ms:.2f}ms total, "
        f"{elapsed_ms / len(queries):.3f}ms/query"
    )
    return _degradation_status(events_before)


def _cmd_explain(args: argparse.Namespace) -> int:
    summary = _load_summary(args.summary)
    trace = explain_query(summary, _parse_query(args.query), voting=args.voting)
    print(trace.render())
    print()
    print(f"estimate: {trace.estimate:.4f} from {len(trace.lookups())} summary lookups")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.batch is not None and args.query is not None:
        raise CliUsageError("give either a query or --batch FILE, not both")
    if not 0.0 <= args.sample_rate <= 1.0:
        raise CliUsageError(
            f"--sample-rate must be within [0, 1], got {args.sample_rate}"
        )
    summary = _load_summary(args.summary)
    if args.store is not None:
        summary = summary.to_store(args.store)
    estimator = _estimator_for(args.estimator, summary)
    if args.batch is not None:
        texts = _read_batch_file(args.batch)
        queries = [_parse_query(text) for text in texts]
    elif args.query is not None:
        queries = [_parse_query(args.query)]
    else:
        raise CliUsageError("missing query (or use --batch FILE)")
    with obs.flight_recorder(args.sample_rate, seed=args.seed) as recording:
        if args.batch is not None:
            estimator.estimate_batch(queries, workers=args.workers)
        else:
            estimator.estimate(queries[0])
    tracer = recording.spans
    tracer.write_chrome_trace(args.output)
    print(f"estimator : {estimator.name}")
    print(f"queries   : {len(queries)}")
    print(
        f"spans     : {len(tracer)} kept  "
        f"({tracer.roots_sampled}/{tracer.roots_started} roots sampled, "
        f"{tracer.dropped} dropped)"
    )
    print(f"trace written to {args.output}  (open in chrome://tracing)")
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    document = tree_from_xml_file(args.xml, include_attributes=args.attributes)
    query = _parse_query(args.query)
    start = time.perf_counter()
    count = count_matches(query.tree, document)
    elapsed_ms = (time.perf_counter() - start) * 1000
    print(f"query : {args.query}")
    print(f"count : {count}")
    print(f"time  : {elapsed_ms:.2f}ms")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    document = tree_from_xml_file(args.xml, include_attributes=args.attributes)
    counts = pattern_counts_by_level(document, args.level)
    print("level  patterns")
    for level, count in counts.items():
        print(f"{level:>5}  {count}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    summary = _load_summary(args.summary)
    queries = [_parse_query(text) for text in args.queries]

    print(f"summary   : {args.summary}")
    print(f"level     : {summary.level}")
    print(f"backend   : {summary.backend}")
    print(f"patterns  : {summary.num_patterns}  ({summary.byte_size()} bytes)")
    complete = ",".join(map(str, sorted(summary.complete_sizes))) or "-"
    print(f"complete  : {complete}")
    print("level  patterns")
    for size, count in summary.level_sizes().items():
        print(f"{size:>5}  {count}")
    if not queries:
        return 0

    estimator = _estimator_for(args.estimator, summary)
    with obs.observed() as (registry, _):
        print()
        for query, text in zip(queries, args.queries):
            print(f"{text} ~= {estimator.estimate(query):.2f}")
    print()
    if args.format == "json":
        print(json.dumps(obs.registry_to_dict(registry), indent=2, sort_keys=True))
    elif args.format == "prometheus":
        print(obs.to_prometheus_text(registry), end="")
    else:
        stats = obs.summarize_estimation(registry)
        print("estimation metrics")
        print(f"  lattice lookups : {stats['lattice_lookups']:.0f}")
        print(
            f"  hit rate        : {stats['lattice_hit_rate']:.1%}"
            f"  (hits {stats['lattice_hits']:.0f}, "
            f"certified zeros {stats['lattice_complete_zeros']:.0f}, "
            f"pruned misses {stats['lattice_pruned_misses']:.0f})"
        )
        print(f"  memo hit rate   : {stats['memo_hit_rate']:.1%}")
        print(f"  decompositions  : {stats['decompose_steps']:.0f}")
        print(
            f"  recursion depth : mean {stats['mean_recursion_depth']:.2f}, "
            f"max {stats['max_recursion_depth']:.0f}"
        )
        print(
            f"  estimate time   : {stats['estimate_seconds'] * 1000:.3f}ms over "
            f"{stats['estimate_calls']} queries"
        )
        print(
            f"  latency p50/p90/p99 : "
            f"{stats['estimate_latency_p50'] * 1000:.3f} / "
            f"{stats['estimate_latency_p90'] * 1000:.3f} / "
            f"{stats['estimate_latency_p99'] * 1000:.3f} ms"
        )
    return 0


def _cmd_catalog_register(args: argparse.Namespace) -> int:
    from .core.catalog import SummaryCatalog

    catalog = SummaryCatalog(args.directory)
    document = tree_from_xml_file(args.xml, include_attributes=args.attributes)
    summary = catalog.register(
        args.name, document, level=args.level, budget_bytes=args.budget
    )
    pruned = "" if summary.is_complete_at(summary.level) else " (pruned to budget)"
    print(
        f"registered {args.name!r}: {summary.num_patterns} patterns, "
        f"{summary.byte_size()} bytes{pruned}"
    )
    return 0


def _cmd_catalog_list(args: argparse.Namespace) -> int:
    from .core.catalog import SummaryCatalog

    catalog = SummaryCatalog(args.directory)
    if not len(catalog):
        print("(empty catalog)")
        return 0
    print(f"{'name':24} {'level':>5} {'patterns':>9} {'bytes':>10}  pruned")
    for row in catalog.describe():
        print(
            f"{row['name']:24} {row['level']:>5} {row['patterns']:>9} "
            f"{row['bytes']:>10}  {'yes' if row['pruned'] else 'no'}"
        )
    return 0


def _cmd_catalog_estimate(args: argparse.Namespace) -> int:
    from .core.catalog import SummaryCatalog

    catalog = SummaryCatalog(args.directory)
    estimate = catalog.estimate(args.name, args.query, estimator=args.estimator)
    print(f"{args.name}: {args.query} ~= {estimate:.2f}")
    return 0


def _cmd_catalog_forget(args: argparse.Namespace) -> int:
    from .core.catalog import SummaryCatalog

    catalog = SummaryCatalog(args.directory)
    catalog.forget(args.name)
    print(f"forgot {args.name!r}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    document = generate_dataset(args.name, args.scale, seed=args.seed)
    written = tree_to_xml_file(document, args.output)
    print(
        f"{args.name}: {document.size} elements, {written} bytes -> {args.output}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CliUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, OSError, ChunkFailureError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
