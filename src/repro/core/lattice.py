"""The lattice summary: TreeLattice's statistics structure (paper §3, §4).

A ``k``-lattice stores the selectivity (exact match count) of occurring
subtree patterns of size ``<= k``, keyed by canonical encoding in a hash
table — the storage layout the paper settled on after finding prefix
trees too pointer-chasing-heavy (§4.2).

Since the store refactor (``docs/architecture.md``) this class is a thin
facade over a pluggable :class:`~repro.store.SummaryStore`: the default
``dict`` backend keeps the historical tuple-keyed hash table, while the
``array`` backend interns patterns to dense ids over packed codes.  The
public surface (``get``/``count``/``__contains__``/``patterns``/
``save``/``load``) is backend-agnostic and estimates are bit-identical
across backends.

Zero semantics matter: a *complete* level contains every occurring
pattern of that size, so a lookup miss at a complete level certifies a
selectivity of exactly 0.  δ-derivable pruning (:mod:`repro.core.pruning`)
removes patterns from levels ≥ 3, making those levels incomplete; the
estimators then fall back to decomposition instead of reporting 0.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from .. import obs
from ..mining.freqt import MiningResult, mine_lattice
from ..mining.sharded import mine_lattice_sharded
from ..store import ArrayStore, SummaryStore, coerce_store, make_store
from ..store.errors import MergeError, TruncatedPayload, UnsupportedVersion
from ..trees.canonical import (
    Canon,
    canon_size,
    decode_canon,
    encode_canon,
)
from ..trees.labeled_tree import LabeledTree
from ..trees.matching import DocumentIndex
from ..trees.twig import TwigQuery

if TYPE_CHECKING:
    from ..resilience import RetryPolicy

__all__ = ["LatticeSummary", "build_lattice", "FORMAT_VERSION"]

#: On-disk summary format version.  Version 1 files (no ``v=`` header
#: field) predate the store layer and still load; version 2 adds the
#: explicit version field and the binary array-backend container.
FORMAT_VERSION = 2

#: Magic prefix of the binary (array-backend) summary container.
_ARRAY_MAGIC = b"#treelattice-bin\x00"


class LatticeSummary:
    """Occurrence statistics of small twigs, keyed by canonical encoding."""

    __slots__ = ("level", "_store", "complete_sizes", "construction_seconds")

    def __init__(
        self,
        level: int,
        counts: Mapping[Canon, int] | SummaryStore,
        *,
        complete_sizes: Iterable[int] | None = None,
        construction_seconds: float = 0.0,
        store: str | None = None,
    ) -> None:
        if level < 2:
            raise ValueError("a lattice summary needs level >= 2")
        self.level = level
        if isinstance(counts, SummaryStore):
            self._store = coerce_store(counts, store)
        else:
            # Copy-on-construct, like the dict copy this replaces.
            self._store = coerce_store(dict(counts).items(), store or "dict")
        if complete_sizes is None:
            complete_sizes = range(1, level + 1)
        self.complete_sizes = frozenset(complete_sizes)
        self.construction_seconds = construction_seconds

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        document: LabeledTree | DocumentIndex,
        level: int,
        *,
        workers: int | None = None,
        store: str = "dict",
        retry: "RetryPolicy | None" = None,
        shards: int | None = None,
    ) -> "LatticeSummary":
        """Mine a document and build its complete ``level``-lattice.

        ``workers`` parallelises candidate counting across processes
        (``None``/``1`` = serial, ``0`` = one per core); ``store`` picks
        the count backend (``"dict"``/``"array"``); ``retry`` gives
        parallel mining a failure budget (default: none — a worker
        failure raises; see ``docs/robustness.md``).  ``shards`` routes
        construction through the shard → merge path
        (:func:`~repro.mining.sharded.mine_lattice_sharded`): the
        document is split into ~``shards`` subtree shards, each mined
        independently (``workers`` then fans out whole shards instead
        of candidate chunks), and the shard stores merged.
        The resulting summary is bit-identical across workers, backends,
        shard counts, and any injected-fault schedule the budget absorbs
        (see ``docs/parallelism.md`` and ``docs/architecture.md``).
        """
        sink = make_store(store)
        start = time.perf_counter()
        # Mining streams each level straight into the sink, so the array
        # backend interns ids as patterns are discovered instead of
        # materialising a tuple-keyed dict first.
        if shards is not None:
            mined = mine_lattice_sharded(
                document,
                level,
                shards=shards,
                workers=workers,
                sink=sink,
                retry=retry,
            )
        else:
            mined = mine_lattice(
                document, level, workers=workers, sink=sink, retry=retry
            )
        elapsed = time.perf_counter() - start
        summary = cls(
            mined.max_size,
            sink,
            complete_sizes=cls._complete_sizes_of(mined),
            construction_seconds=elapsed,
        )
        if obs.enabled:
            obs.registry.timer(
                "lattice_build_seconds", "Full summary construction wall time."
            ).observe(elapsed)
            obs.registry.gauge(
                "summary_store_bytes",
                "Actual summary footprint per store backend (last build wins).",
                labels=("backend",),
            ).set(summary.byte_size(), backend=summary.backend)
            obs.event(
                "lattice_build",
                level=level,
                patterns=summary.num_patterns,
                backend=summary.backend,
                seconds=round(elapsed, 6),
            )
        return summary

    @classmethod
    def from_mining(
        cls,
        mined: MiningResult,
        construction_seconds: float = 0.0,
        *,
        store: str = "dict",
    ) -> "LatticeSummary":
        """Wrap a :class:`~repro.mining.MiningResult` as a summary."""
        sink = make_store(store)
        for level_patterns in mined.levels.values():
            for key, count in level_patterns.items():
                sink.add(key, count)
        return cls(
            mined.max_size,
            sink,
            complete_sizes=cls._complete_sizes_of(mined),
            construction_seconds=construction_seconds,
        )

    @staticmethod
    def _complete_sizes_of(mined: MiningResult) -> list[int]:
        # A level is complete unless the frontier of some *earlier*
        # level was sampled (a level listed in capped_levels was
        # itself fully enumerated; only its successors are partial).
        return [
            size
            for size in mined.levels
            if all(s >= size for s in mined.capped_levels)
        ]

    # ------------------------------------------------------------------
    # Store access
    # ------------------------------------------------------------------

    @property
    def store(self) -> SummaryStore:
        """The count store behind this summary (treat as read-only)."""
        return self._store

    @property
    def backend(self) -> str:
        """Name of the store backend (``"dict"`` / ``"array"``)."""
        return self._store.backend

    def to_store(self, backend: str) -> "LatticeSummary":
        """This summary's contents re-housed on another store backend."""
        if backend == self._store.backend:
            return self
        return LatticeSummary(
            self.level,
            coerce_store(self._store, backend),
            complete_sizes=self.complete_sizes,
            construction_seconds=self.construction_seconds,
        )

    def merge(self, other: "LatticeSummary") -> "LatticeSummary":
        """Combine two summaries of the same level: counts add.

        The corpus-level monoid behind ``repro merge``: merging the
        summaries of two documents yields the summary of their union
        (each pattern's selectivity is a sum over documents).  Both
        summaries must be built at the same lattice level —
        :class:`~repro.store.MergeError` otherwise — and ``other`` is
        converted to this summary's backend first, so the underlying
        store handshake always sees matching representations.  A level
        only stays *complete* when it is complete on both sides;
        construction times add.
        """
        if not isinstance(other, LatticeSummary):
            raise MergeError(
                f"cannot merge a summary with {type(other).__name__!r}"
            )
        if other.level != self.level:
            raise MergeError(
                f"cannot merge a level-{self.level} summary with a "
                f"level-{other.level} summary; rebuild one side first"
            )
        merged = self._store.merge(other.to_store(self.backend)._store)
        return LatticeSummary(
            self.level,
            merged,
            complete_sizes=set(self.complete_sizes) & set(other.complete_sizes),
            construction_seconds=(
                self.construction_seconds + other.construction_seconds
            ),
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, pattern: Canon | LabeledTree | TwigQuery) -> int | None:
        """Stored count of ``pattern``, or ``None`` when not stored.

        ``None`` means "not in the table"; whether that certifies a zero
        depends on :meth:`is_complete_at` for the pattern's size.
        """
        key = self._to_canon(pattern)
        got = self._store.get(key)
        if obs.enabled:
            obs.registry.counter(
                "lattice_gets_total",
                "Raw hash-table probes against the summary.",
                labels=("stored",),
            ).inc(stored="yes" if got is not None else "no")
        return got

    def count(self, pattern: Canon | LabeledTree | TwigQuery) -> int:
        """Count of ``pattern``; a miss at a complete level is 0.

        Raises :class:`KeyError` when the pattern is absent from an
        incomplete level, because the summary genuinely does not know its
        count — estimators must decompose instead.
        """
        key = self._to_canon(pattern)
        got = self._store.get(key)
        if got is not None:
            return got
        if self.is_complete_at(canon_size(key)):
            return 0
        raise KeyError(
            f"pattern {encode_canon(key)} pruned from an incomplete level"
        )

    def __contains__(self, pattern: Canon | LabeledTree | TwigQuery) -> bool:
        return self._to_canon(pattern) in self._store

    def is_complete_at(self, size: int) -> bool:
        """True when the summary stores *every* occurring pattern of ``size``."""
        return size in self.complete_sizes

    @staticmethod
    def _to_canon(pattern: Canon | LabeledTree | TwigQuery) -> Canon:
        if isinstance(pattern, TwigQuery):
            return pattern.canonical()
        if isinstance(pattern, LabeledTree):
            from ..trees.canonical import canon

            return canon(pattern)
        return pattern

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_patterns(self) -> int:
        return len(self._store)

    def patterns(self) -> Iterator[tuple[Canon, int]]:
        """All stored ``(canon, count)`` pairs, in insertion order."""
        return iter(self._store.items())

    def patterns_of_size(self, size: int) -> dict[Canon, int]:
        return {
            c: n for c, n in self._store.items() if canon_size(c) == size
        }

    def level_sizes(self) -> dict[int, int]:
        """``size -> number of stored patterns`` histogram."""
        hist: dict[int, int] = {}
        for c, _ in self._store.items():
            s = canon_size(c)
            hist[s] = hist.get(s, 0) + 1
        return dict(sorted(hist.items()))

    def byte_size(self) -> int:
        """Actual in-memory footprint of the backing store, in bytes.

        Backend-dependent by design: the ``dict`` backend pays Python
        tuple/str overhead per pattern, the ``array`` backend packed
        codes plus an 8-byte count slot.  This replaces the old flat
        "encoded key + 8 bytes" heuristic so that byte budgets and the
        paper's "memory utilization" comparisons reflect reality.
        """
        return self._store.byte_size()

    def replace_counts(
        self, counts: Mapping[Canon, int], complete_sizes: Iterable[int]
    ) -> "LatticeSummary":
        """Derive a new summary (same level, same backend, new contents)."""
        return LatticeSummary(
            self.level,
            counts,
            complete_sizes=complete_sizes,
            construction_seconds=self.construction_seconds,
            store=self._store.backend,
        )

    def __repr__(self) -> str:
        return (
            f"LatticeSummary(level={self.level}, patterns={self.num_patterns}, "
            f"backend={self.backend!r}, bytes={self.byte_size()})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the summary.

        The ``dict`` backend writes the line-oriented text dump (header,
        then ``count\\tkey``); the ``array`` backend writes a compact
        binary container embedding the intern tables.  Both formats
        carry an explicit format-version field and round-trip
        ``complete_sizes``, so δ-pruned summaries survive the trip.
        """
        if isinstance(self._store, ArrayStore):
            payload = {
                "version": FORMAT_VERSION,
                "level": self.level,
                "complete": sorted(self.complete_sizes),
                "store": self._store.to_payload(),
            }
            Path(path).write_bytes(
                _ARRAY_MAGIC + pickle.dumps(payload, protocol=4)
            )
            return
        complete = ",".join(map(str, sorted(self.complete_sizes)))
        lines = [
            f"#treelattice v={FORMAT_VERSION} level={self.level} "
            f"complete={complete}"
        ]
        counts = dict(self._store.items())
        for c in sorted(counts, key=encode_canon):
            lines.append(f"{counts[c]}\t{encode_canon(c)}")
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "LatticeSummary":
        """Read a summary produced by :meth:`save` (either container)."""
        raw = Path(path).read_bytes()
        if raw.startswith(_ARRAY_MAGIC):
            return cls._load_binary(path, raw[len(_ARRAY_MAGIC):])
        try:
            text = raw.decode("utf-8").splitlines()
        except UnicodeDecodeError as exc:
            raise TruncatedPayload(
                f"{path}: not a TreeLattice summary file"
            ) from exc
        if not text or not text[0].startswith("#treelattice"):
            raise TruncatedPayload(f"{path}: not a TreeLattice summary file")
        header = dict(
            item.split("=", 1) for item in text[0].split()[1:] if "=" in item
        )
        version = int(header.get("v", 1))
        if version > FORMAT_VERSION:
            raise UnsupportedVersion(
                f"{path}: summary format version {version} is newer than "
                f"this build supports (reads <= {FORMAT_VERSION})"
            )
        level = int(header["level"])
        complete = [int(s) for s in header.get("complete", "").split(",") if s]
        counts: dict[Canon, int] = {}
        for line in text[1:]:
            if not line.strip():
                continue
            count_str, key = line.split("\t", 1)
            counts[decode_canon(key)] = int(count_str)
        return cls(level, counts, complete_sizes=complete)

    @classmethod
    def _load_binary(cls, path: str | Path, body: bytes) -> "LatticeSummary":
        try:
            payload = pickle.loads(body)
        except Exception as exc:  # pickle raises a zoo of error types
            raise TruncatedPayload(
                f"{path}: corrupt binary summary container: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise TruncatedPayload(
                f"{path}: binary summary container holds "
                f"{type(payload).__name__}, not a payload mapping"
            )
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise UnsupportedVersion(
                f"{path}: unsupported summary format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            store_payload = payload["store"]
            level = int(payload["level"])
            complete = [int(s) for s in payload["complete"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise TruncatedPayload(
                f"{path}: binary summary container is incomplete: {exc}"
            ) from exc
        store = ArrayStore.from_payload(store_payload)
        return cls(level, store, complete_sizes=complete)


def build_lattice(
    document: LabeledTree | DocumentIndex,
    level: int = 4,
    *,
    workers: int | None = None,
    store: str = "dict",
    retry: "RetryPolicy | None" = None,
) -> LatticeSummary:
    """Convenience wrapper: mine ``document`` into a ``level``-lattice."""
    return LatticeSummary.build(
        document, level, workers=workers, store=store, retry=retry
    )
