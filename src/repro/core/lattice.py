"""The lattice summary: TreeLattice's statistics structure (paper §3, §4).

A ``k``-lattice stores the selectivity (exact match count) of occurring
subtree patterns of size ``<= k``, keyed by canonical encoding in a hash
table — the storage layout the paper settled on after finding prefix
trees too pointer-chasing-heavy (§4.2).

Zero semantics matter: a *complete* level contains every occurring
pattern of that size, so a lookup miss at a complete level certifies a
selectivity of exactly 0.  δ-derivable pruning (:mod:`repro.core.pruning`)
removes patterns from levels ≥ 3, making those levels incomplete; the
estimators then fall back to decomposition instead of reporting 0.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Iterator

from .. import obs
from ..mining.freqt import MiningResult, mine_lattice
from ..trees.canonical import (
    Canon,
    canon_size,
    decode_canon,
    encode_canon,
)
from ..trees.labeled_tree import LabeledTree
from ..trees.matching import DocumentIndex
from ..trees.twig import TwigQuery

__all__ = ["LatticeSummary", "build_lattice"]

# Bytes charged per stored count when reporting summary size; matches the
# 8-byte counters a C implementation would use.
_COUNT_BYTES = 8


class LatticeSummary:
    """Occurrence statistics of small twigs, keyed by canonical encoding."""

    __slots__ = ("level", "_counts", "complete_sizes", "construction_seconds")

    def __init__(
        self,
        level: int,
        counts: dict[Canon, int],
        *,
        complete_sizes: Iterable[int] | None = None,
        construction_seconds: float = 0.0,
    ) -> None:
        if level < 2:
            raise ValueError("a lattice summary needs level >= 2")
        self.level = level
        self._counts = dict(counts)
        if complete_sizes is None:
            complete_sizes = range(1, level + 1)
        self.complete_sizes = frozenset(complete_sizes)
        self.construction_seconds = construction_seconds

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        document: LabeledTree | DocumentIndex,
        level: int,
        *,
        workers: int | None = None,
    ) -> "LatticeSummary":
        """Mine a document and build its complete ``level``-lattice.

        ``workers`` parallelises candidate counting across processes
        (``None``/``1`` = serial, ``0`` = one per core); the resulting
        summary is bit-identical either way (see ``docs/parallelism.md``).
        """
        start = time.perf_counter()
        mined = mine_lattice(document, level, workers=workers)
        elapsed = time.perf_counter() - start
        summary = cls.from_mining(mined, construction_seconds=elapsed)
        if obs.enabled:
            obs.registry.timer(
                "lattice_build_seconds", "Full summary construction wall time."
            ).observe(elapsed)
            obs.event(
                "lattice_build",
                level=level,
                patterns=summary.num_patterns,
                seconds=round(elapsed, 6),
            )
        return summary

    @classmethod
    def from_mining(
        cls, mined: MiningResult, construction_seconds: float = 0.0
    ) -> "LatticeSummary":
        """Wrap a :class:`~repro.mining.MiningResult` as a summary."""
        counts: dict[Canon, int] = {}
        complete: list[int] = []
        for size, level_patterns in mined.levels.items():
            counts.update(level_patterns)
            # A level is complete unless the frontier of some *earlier*
            # level was sampled (a level listed in capped_levels was
            # itself fully enumerated; only its successors are partial).
            if all(s >= size for s in mined.capped_levels):
                complete.append(size)
        return cls(
            mined.max_size,
            counts,
            complete_sizes=complete,
            construction_seconds=construction_seconds,
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, pattern: Canon | LabeledTree | TwigQuery) -> int | None:
        """Stored count of ``pattern``, or ``None`` when not stored.

        ``None`` means "not in the table"; whether that certifies a zero
        depends on :meth:`is_complete_at` for the pattern's size.
        """
        key = self._to_canon(pattern)
        got = self._counts.get(key)
        if obs.enabled:
            obs.registry.counter(
                "lattice_gets_total",
                "Raw hash-table probes against the summary.",
                labels=("stored",),
            ).inc(stored="yes" if got is not None else "no")
        return got

    def count(self, pattern: Canon | LabeledTree | TwigQuery) -> int:
        """Count of ``pattern``; a miss at a complete level is 0.

        Raises :class:`KeyError` when the pattern is absent from an
        incomplete level, because the summary genuinely does not know its
        count — estimators must decompose instead.
        """
        key = self._to_canon(pattern)
        got = self._counts.get(key)
        if got is not None:
            return got
        if self.is_complete_at(canon_size(key)):
            return 0
        raise KeyError(
            f"pattern {encode_canon(key)} pruned from an incomplete level"
        )

    def __contains__(self, pattern: Canon | LabeledTree | TwigQuery) -> bool:
        return self._to_canon(pattern) in self._counts

    def is_complete_at(self, size: int) -> bool:
        """True when the summary stores *every* occurring pattern of ``size``."""
        return size in self.complete_sizes

    @staticmethod
    def _to_canon(pattern: Canon | LabeledTree | TwigQuery) -> Canon:
        if isinstance(pattern, TwigQuery):
            return pattern.canonical()
        if isinstance(pattern, LabeledTree):
            from ..trees.canonical import canon

            return canon(pattern)
        return pattern

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_patterns(self) -> int:
        return len(self._counts)

    def patterns(self) -> Iterator[tuple[Canon, int]]:
        """All stored ``(canon, count)`` pairs."""
        return iter(self._counts.items())

    def patterns_of_size(self, size: int) -> dict[Canon, int]:
        return {
            c: n for c, n in self._counts.items() if canon_size(c) == size
        }

    def level_sizes(self) -> dict[int, int]:
        """``size -> number of stored patterns`` histogram."""
        hist: dict[int, int] = {}
        for c in self._counts:
            s = canon_size(c)
            hist[s] = hist.get(s, 0) + 1
        return dict(sorted(hist.items()))

    def byte_size(self) -> int:
        """Approximate serialised size: encoded keys plus 8-byte counts.

        This is the figure the paper reports as "memory utilization"; it
        charges what a compact on-disk hash table would pay, not Python
        object overhead.
        """
        return sum(
            len(encode_canon(c).encode("utf-8")) + _COUNT_BYTES
            for c in self._counts
        )

    def replace_counts(
        self, counts: dict[Canon, int], complete_sizes: Iterable[int]
    ) -> "LatticeSummary":
        """Derive a new summary with the same level but different contents."""
        return LatticeSummary(
            self.level,
            counts,
            complete_sizes=complete_sizes,
            construction_seconds=self.construction_seconds,
        )

    def __repr__(self) -> str:
        return (
            f"LatticeSummary(level={self.level}, patterns={self.num_patterns}, "
            f"bytes={self.byte_size()})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write a line-oriented text dump: header, then ``count\\tkey``."""
        lines = [f"#treelattice level={self.level} "
                 f"complete={','.join(map(str, sorted(self.complete_sizes)))}"]
        for c in sorted(self._counts, key=encode_canon):
            lines.append(f"{self._counts[c]}\t{encode_canon(c)}")
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "LatticeSummary":
        """Read a summary produced by :meth:`save`."""
        text = Path(path).read_text(encoding="utf-8").splitlines()
        if not text or not text[0].startswith("#treelattice"):
            raise ValueError(f"{path}: not a TreeLattice summary file")
        header = dict(
            item.split("=", 1) for item in text[0].split()[1:] if "=" in item
        )
        level = int(header["level"])
        complete = [int(s) for s in header.get("complete", "").split(",") if s]
        counts: dict[Canon, int] = {}
        for line in text[1:]:
            if not line.strip():
                continue
            count_str, key = line.split("\t", 1)
            counts[decode_canon(key)] = int(count_str)
        return cls(level, counts, complete_sizes=complete)


def build_lattice(
    document: LabeledTree | DocumentIndex,
    level: int = 4,
    *,
    workers: int | None = None,
) -> LatticeSummary:
    """Convenience wrapper: mine ``document`` into a ``level``-lattice."""
    return LatticeSummary.build(document, level, workers=workers)
