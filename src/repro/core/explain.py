"""Decomposition traces: explain where an estimate came from.

Estimates produced by recursive decomposition are products and quotients
of stored counts; when an estimate looks off, the first question is
*which* stored patterns and which independence assumptions produced it.
:func:`explain` runs the recursive estimator for real under a
full-sampling flight recorder (:func:`repro.obs.flight_recorder`) and
assembles the derivation tree from the spans that execution emitted —
lattice hit/miss points, memo reuse, decomposition spans with their
measured wall time.  ``render()`` pretty-prints it.

Because the trace *is* the execution (not a re-derivation that mirrors
it), ``explain(...).estimate == estimator.estimate(query)`` bit-for-bit
by construction — still asserted in the test suite — and divergence
between explanation and estimator is impossible by design.  One
behavioural consequence: a decomposition choice whose ``common`` part
evaluated to zero shows only the ``common`` child, because the real
estimator short-circuits and never evaluates ``t1``/``t2`` there.

:func:`explanation_from_spans` is the assembly half on its own: the CLI
feeds it the spans of the *actual* ``repro estimate --explain`` run, so
the printed derivation is the execution that produced the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .. import obs
from ..obs.spans import Span, SpanTracer
from ..trees.canonical import Canon, decode_canon, encode_canon
from .estimator import QueryLike, coerce_query_tree
from .lattice import LatticeSummary

__all__ = ["Explanation", "explain", "explanation_from_spans"]

#: Span capacity for explanation captures: ample for deep voting runs.
_EXPLAIN_SPAN_CAPACITY = 1 << 20

#: Sentinel separating decomposition choices in a sibling sequence.
_CHOICE = "choice"


@dataclass
class Explanation:
    """One node of a decomposition derivation.

    ``kind`` is one of:

    * ``"lookup"`` — the pattern was read from the summary;
    * ``"certified-zero"`` — absent from a complete level, so exactly 0;
    * ``"decomposition"`` — estimated as ``t1 * t2 / common`` from the
      child explanations (averaged over choices when voting).
    """

    pattern: Canon
    estimate: float
    kind: str
    children: list["Explanation"] = field(default_factory=list)
    #: Measured wall time of this step, from the recorded span (``None``
    #: for instantaneous leaves, whose spans are points).
    wall_ms: float | None = None
    #: True when this decomposition ran because δ-pruning evicted the
    #: pattern from the summary (a ``pruned_miss`` fallback).
    fallback: bool = False

    @property
    def pattern_text(self) -> str:
        return encode_canon(self.pattern)

    def depth(self) -> int:
        """Number of decomposition levels below this node."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def lookups(self) -> list["Explanation"]:
        """All leaf lookups feeding this estimate (the evidence used)."""
        if self.kind != "decomposition":
            return [self]
        out: list[Explanation] = []
        for child in self.children:
            out.extend(child.lookups())
        return out

    def render(self, indent: int = 0) -> str:
        """Human-readable multi-line trace."""
        pad = "  " * indent
        if self.kind == "decomposition":
            head = (
                f"{pad}{self.pattern_text} ~= {self.estimate:.4g}"
                f"  [s(t1) * s(t2) / s(common)]"
            )
            if self.fallback:
                head += "  [pruned: decomposed as fallback]"
            if self.wall_ms is not None:
                head += f"  ({self.wall_ms:.3f} ms)"
            return "\n".join(
                [head] + [child.render(indent + 1) for child in self.children]
            )
        marker = "= (summary)" if self.kind == "lookup" else "= 0 (certified absent)"
        return f"{pad}{self.pattern_text} {marker} {self.estimate:.4g}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (``repro estimate --explain-json``)."""
        out: dict[str, object] = {
            "pattern": self.pattern_text,
            "estimate": self.estimate,
            "kind": self.kind,
        }
        if self.wall_ms is not None:
            out["wall_ms"] = self.wall_ms
        if self.fallback:
            out["fallback"] = True
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


def explain(
    lattice: LatticeSummary,
    query: QueryLike,
    *,
    voting: bool = False,
) -> Explanation:
    """Run the recursive estimator under a flight recorder, keep the trace.

    With ``voting=True``, a decomposition node carries the children of
    *every* leaf-pair choice (grouped in triples: t1, t2, common per
    choice) and its estimate is their average.
    """
    # Imported here: recursive.py -> estimator.py -> (no explain), but
    # keeping explain import-light avoids future cycles with estimators.
    from .recursive import RecursiveDecompositionEstimator

    tree = coerce_query_tree(query)
    estimator = RecursiveDecompositionEstimator(lattice, voting=voting)
    with obs.flight_recorder(capacity=_EXPLAIN_SPAN_CAPACITY) as recording:
        estimator.estimate(tree)
    return explanation_from_spans(recording.spans)


def explanation_from_spans(spans: SpanTracer | Sequence[Span]) -> Explanation:
    """Assemble an :class:`Explanation` from one recorded estimate.

    Expects the span stream of a recursive-decomposition estimate
    captured at sampling rate 1.0 (the first ``estimate`` root span is
    used).  Raises ``ValueError`` when no estimate span was recorded —
    the usual cause is a disabled or sampled-out recorder.
    """
    ordered = sorted(
        spans.spans if isinstance(spans, SpanTracer) else spans,
        key=lambda span: span.span_id,
    )
    children: dict[int, list[Span]] = {}
    root_span: Span | None = None
    for span in ordered:
        if span.parent_id is None:
            if root_span is None and span.name == "estimate":
                root_span = span
        else:
            children.setdefault(span.parent_id, []).append(span)
    if root_span is None:
        raise ValueError(
            "no estimate span recorded; explanation needs a flight-recorder "
            "capture at sampling rate 1.0"
        )
    memo: dict[str, Explanation] = {}
    nodes = [
        part
        for part in _consume(children.get(root_span.span_id, []), children, memo)
        if isinstance(part, Explanation)
    ]
    if nodes:
        node = nodes[0]
    else:
        # A warm plan replay records plan_step points but no structural
        # children; surface what the root span knows.
        node = Explanation(
            decode_canon(str(root_span.attrs.get("pattern", "?"))),
            _as_float(root_span.attrs.get("value")),
            "decomposition",
        )
    if node.wall_ms is None:
        node.wall_ms = root_span.wall_ms
    return node


def _as_float(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def _consume(
    siblings: Sequence[Span],
    children: Mapping[int, Sequence[Span]],
    memo: dict[str, Explanation],
) -> list["Explanation | str"]:
    """Turn a sibling span sequence into nodes plus choice markers.

    One estimator ``_compile`` call shows up here as either a
    ``memo_hit`` point, a terminal ``lattice_lookup`` point, a bare
    ``decompose`` span (pattern larger than the lattice level), or a
    ``pruned_miss`` lookup point immediately followed by the fallback
    ``decompose`` span.
    """
    out: list[Explanation | str] = []
    i = 0
    while i < len(siblings):
        span = siblings[i]
        if span.name == _CHOICE:
            out.append(_CHOICE)
        elif span.name == "memo_hit":
            text = str(span.attrs["pattern"])
            node = memo.get(text)
            if node is None:  # pre-warmed memo entry from outside the capture
                node = Explanation(
                    decode_canon(text), _as_float(span.attrs.get("value")), "lookup"
                )
            out.append(node)
        elif span.name == "lattice_lookup":
            outcome = str(span.attrs["outcome"])
            text = str(span.attrs["pattern"])
            if outcome == "pruned_miss":
                follower = siblings[i + 1] if i + 1 < len(siblings) else None
                if follower is not None and follower.name == "decompose":
                    out.append(_decompose_node(follower, children, memo, True))
                    i += 2
                    continue
                # A pruned miss with no decomposition following belongs
                # to a non-recursive caller; nothing to explain here.
            else:
                kind = "lookup" if outcome == "hit" else "certified-zero"
                node = Explanation(
                    decode_canon(text), _as_float(span.attrs.get("value")), kind
                )
                memo[text] = node
                out.append(node)
        elif span.name == "decompose":
            out.append(_decompose_node(span, children, memo, False))
        elif span.name == "estimate":
            # A nested estimator run (the fix-sized scheme's recursive
            # fallback): splice its derivation in.
            out.extend(
                part
                for part in _consume(
                    children.get(span.span_id, []), children, memo
                )
                if isinstance(part, Explanation)
            )
        # Anything else (plan_step, markov_gram_lookup, pruned_fallback)
        # carries no recursive-derivation structure; skip it.
        i += 1
    return out


def _decompose_node(
    span: Span,
    children: Mapping[int, Sequence[Span]],
    memo: dict[str, Explanation],
    fallback: bool,
) -> Explanation:
    parts = _consume(children.get(span.span_id, []), children, memo)
    # Regroup by choice: the estimator evaluates common first and skips
    # t1/t2 on a zero denominator, while the Explanation contract lists
    # children as (t1, t2, common) per choice.
    ordered: list[Explanation] = []
    segment: list[Explanation] = []

    def flush() -> None:
        if len(segment) == 3:
            ordered.extend((segment[1], segment[2], segment[0]))
        else:
            ordered.extend(segment)
        segment.clear()

    for part in parts:
        if isinstance(part, Explanation):
            segment.append(part)
        else:
            flush()
    flush()
    text = str(span.attrs["pattern"])
    node = Explanation(
        decode_canon(text),
        _as_float(span.attrs.get("value")),
        "decomposition",
        ordered,
        wall_ms=span.wall_ms,
        fallback=fallback,
    )
    memo[text] = node
    return node
