"""Decomposition traces: explain where an estimate came from.

Estimates produced by recursive decomposition are products and quotients
of stored counts; when an estimate looks off, the first question is
*which* stored patterns and which independence assumptions produced it.
:func:`explain` replays the recursive estimator and returns the full
derivation tree; ``render()`` pretty-prints it.

The trace mirrors :class:`~repro.core.recursive.RecursiveDecompositionEstimator`
exactly (same first-pair choice, same zero semantics, same voting
average), so ``explain(...).estimate == estimator.estimate(query)``
bit-for-bit — asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trees.canonical import Canon, canon, encode_canon
from ..trees.labeled_tree import LabeledTree
from .decompose import leaf_pair_decompositions
from .estimator import QueryLike, coerce_query_tree
from .lattice import LatticeSummary

__all__ = ["Explanation", "explain"]


@dataclass
class Explanation:
    """One node of a decomposition derivation.

    ``kind`` is one of:

    * ``"lookup"`` — the pattern was read from the summary;
    * ``"certified-zero"`` — absent from a complete level, so exactly 0;
    * ``"decomposition"`` — estimated as ``t1 * t2 / common`` from the
      child explanations (averaged over choices when voting).
    """

    pattern: Canon
    estimate: float
    kind: str
    children: list["Explanation"] = field(default_factory=list)

    @property
    def pattern_text(self) -> str:
        return encode_canon(self.pattern)

    def depth(self) -> int:
        """Number of decomposition levels below this node."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def lookups(self) -> list["Explanation"]:
        """All leaf lookups feeding this estimate (the evidence used)."""
        if self.kind != "decomposition":
            return [self]
        out: list[Explanation] = []
        for child in self.children:
            out.extend(child.lookups())
        return out

    def render(self, indent: int = 0) -> str:
        """Human-readable multi-line trace."""
        pad = "  " * indent
        if self.kind == "decomposition":
            head = (
                f"{pad}{self.pattern_text} ~= {self.estimate:.4g}"
                f"  [s(t1) * s(t2) / s(common)]"
            )
            return "\n".join(
                [head] + [child.render(indent + 1) for child in self.children]
            )
        marker = "= (summary)" if self.kind == "lookup" else "= 0 (certified absent)"
        return f"{pad}{self.pattern_text} {marker} {self.estimate:.4g}"


def explain(
    lattice: LatticeSummary,
    query: QueryLike,
    *,
    voting: bool = False,
) -> Explanation:
    """Replay the recursive decomposition estimator, keeping the trace.

    With ``voting=True``, a decomposition node carries the children of
    *every* leaf-pair choice (grouped in triples: t1, t2, common per
    choice) and its estimate is their average.
    """
    tree = coerce_query_tree(query)
    memo: dict[Canon, Explanation] = {}
    return _explain(tree, lattice, voting, memo)


def _explain(
    tree: LabeledTree,
    lattice: LatticeSummary,
    voting: bool,
    memo: dict[Canon, Explanation],
) -> Explanation:
    key = canon(tree)
    cached = memo.get(key)
    if cached is not None:
        return cached

    size = tree.size
    node: Explanation | None = None
    if size <= lattice.level:
        stored = lattice.get(key)
        if stored is not None:
            node = Explanation(key, float(stored), "lookup")
        elif lattice.is_complete_at(size) or size < 3:
            node = Explanation(key, 0.0, "certified-zero")

    if node is None:
        children: list[Explanation] = []
        total = 0.0
        count = 0
        for split in leaf_pair_decompositions(tree):
            t1 = _explain(split.t1, lattice, voting, memo)
            t2 = _explain(split.t2, lattice, voting, memo)
            common = _explain(split.common, lattice, voting, memo)
            children.extend((t1, t2, common))
            if common.estimate <= 0.0:
                estimate = 0.0
            else:
                estimate = t1.estimate * t2.estimate / common.estimate
            total += estimate
            count += 1
            if not voting:
                break
        node = Explanation(
            key, total / count if count else 0.0, "decomposition", children
        )

    memo[key] = node
    return node
