"""TreeLattice core: lattice summary, decomposition estimators, pruning."""

from .catalog import CatalogError, SummaryCatalog
from .decompose import (
    CoverBlock,
    LeafPairSplit,
    first_leaf_pair_split,
    fixed_cover,
    leaf_pair_decompositions,
)
from .diagnostics import ErrorProfile, EstimateInterval
from .estimator import SelectivityEstimator, coerce_query_tree
from .explain import Explanation, explain, explanation_from_spans
from .fixed import FixedDecompositionEstimator
from .incremental import IncrementalLattice
from .lattice import LatticeSummary, build_lattice
from .markov import MarkovPathEstimator
from .online import WorkloadAwareLattice
from .pruning import PruningReport, prune_derivable, pruning_report
from .recursive import RecursiveDecompositionEstimator
from .streaming import DEFAULT_MAX_PENDING, StreamingSummary

__all__ = [
    "CatalogError",
    "SummaryCatalog",
    "CoverBlock",
    "LeafPairSplit",
    "first_leaf_pair_split",
    "fixed_cover",
    "leaf_pair_decompositions",
    "ErrorProfile",
    "EstimateInterval",
    "SelectivityEstimator",
    "coerce_query_tree",
    "Explanation",
    "explain",
    "explanation_from_spans",
    "FixedDecompositionEstimator",
    "IncrementalLattice",
    "LatticeSummary",
    "build_lattice",
    "MarkovPathEstimator",
    "WorkloadAwareLattice",
    "PruningReport",
    "prune_derivable",
    "pruning_report",
    "RecursiveDecompositionEstimator",
    "StreamingSummary",
    "DEFAULT_MAX_PENDING",
]
