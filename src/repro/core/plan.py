"""Compiled decomposition plans: reusable estimate programs per twig shape.

Estimating a twig is a pure function of ``(canonical form, summary)``:
the decomposition recursion (paper §3.2), the fix-sized cover (§3.3) and
the Markov closed form (Lemma 4) all bottom out in summary lookups whose
values never change while the estimator is alive.  The estimators
therefore *compile* the first evaluation of each canonical shape into a
small plan — the summary lookups resolved to constants, the arithmetic
recorded as a DAG of multiply/divide/average ops — and replay that plan
on every later query with the same shape.  ``estimate_batch`` over a
repeated-shape workload then pays tree decomposition once per distinct
shape instead of once per query.

Plan evaluation replays the *exact* float operations of the original
recursion, in the same order, so warm-path estimates are bit-identical
to cold-path ones (an invariant the test suite asserts, not a rounding
nicety).  Plans are plain picklable values: estimators shipped to worker
processes (:mod:`repro.parallel.batch`) carry their compiled plans with
them.

Plans are keyed by dense pattern ids from an estimator-owned
:class:`~repro.trees.canonical.PatternInterner` (separate from any
id space a summary store may use), and cache traffic is exported via
:mod:`repro.obs` as ``plan_cache_requests_total`` plus the
``plan_cache_size`` / ``intern_table_patterns`` gauges.
"""

from __future__ import annotations

from typing import Sequence

from .. import obs

__all__ = [
    "CompiledPlan",
    "PlanBuilder",
    "CoverPlan",
    "GramPlan",
    "record_plan_request",
    "RATIO_OP",
    "AVG_OP",
]

_OP_RATIO = 0
_OP_AVG = 1

#: Public aliases for the plan opcodes, consumed by the kernel lowerer
#: (:mod:`repro.kernels.program`) when translating plan ops.
RATIO_OP = _OP_RATIO
AVG_OP = _OP_AVG

_OpsT = tuple[tuple[int, int, tuple[int, ...]], ...]
_MemoSlotsT = tuple[tuple[int, int], ...]


def record_plan_request(
    estimator: str, outcome: str, plans: int, interned: int
) -> None:
    """Metrics for one plan-cache probe (only called when obs is on)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "plan_cache_requests_total",
        "Compiled-plan cache probes by outcome (hit / miss).",
        labels=("estimator", "outcome"),
    ).inc(estimator=estimator, outcome=outcome)
    obs.registry.gauge(
        "plan_cache_size",
        "Compiled plans held per estimator instance (last probe wins).",
        labels=("estimator",),
    ).set(plans, estimator=estimator)
    obs.registry.gauge(
        "intern_table_patterns",
        "Patterns interned by each estimator's plan keyspace.",
        labels=("estimator",),
    ).set(interned, estimator=estimator)


class CompiledPlan:
    """A recursive-decomposition estimate as a replayable op sequence.

    Slots ``0..len(base)-1`` hold constants (summary lookups and values
    that were already memoised at compile time); every op writes one new
    slot.  Two opcodes cover the whole recursion:

    * ``RATIO dst, (t1, t2, common)`` — Theorem 1's step, with the
      original ``denominator <= 0.0 -> 0.0`` guard;
    * ``AVG dst, parts`` — the voting average, accumulated in split
      order (a single-part average reproduces the non-voting path
      exactly: ``(0.0 + r) / 1 == r``).
    """

    __slots__ = ("_base", "_ops", "root", "max_depth", "memo_slots")

    def __init__(
        self,
        base: Sequence[float],
        ops: _OpsT,
        root: int,
        max_depth: int,
        memo_slots: _MemoSlotsT,
    ) -> None:
        self._base = list(base)
        self._ops = ops
        #: Slot holding the query's estimate after evaluation.
        self.root = root
        #: Deepest decomposition level of the original recursion (what a
        #: cold run would have reported as ``recursion_depth``).
        self.max_depth = max_depth
        #: ``(pattern_id, slot)`` pairs: sub-twig values a warm replay
        #: can donate to a batch memo.
        self.memo_slots = memo_slots

    def evaluate(self, memo: dict[int, float] | None = None) -> float:
        """Replay the plan; optionally donate sub-values to ``memo``."""
        slots = list(self._base)
        for opcode, dst, operands in self._ops:
            if opcode == _OP_RATIO:
                t1, t2, common = operands
                denominator = slots[common]
                if denominator <= 0.0:
                    slots[dst] = 0.0
                else:
                    slots[dst] = slots[t1] * slots[t2] / denominator
            else:
                total = 0.0
                for part in operands:
                    total += slots[part]
                slots[dst] = total / len(operands)
        if memo is not None:
            for pattern_id, slot in self.memo_slots:
                if pattern_id not in memo:
                    memo[pattern_id] = slots[slot]
        return slots[self.root]

    def evaluate_traced(self, memo: dict[int, float] | None = None) -> float:
        """Replay the plan, emitting one ``plan_step`` span point per op.

        Same float operations in the same order as :meth:`evaluate` —
        the flight recorder observes the replay, it never changes it.
        Called by the estimators only when the current estimate's root
        span was sampled in (``obs.span_recording()``).  The tracer's
        bound ``point`` method is hoisted out of the op loop: plans run
        to hundreds of ops, and the per-op module-attribute walk is the
        difference between a cheap and a costly sampled estimate.
        """
        if not obs.enabled:
            return self.evaluate(memo)
        tracer = obs.span_tracer
        if tracer is None:
            return self.evaluate(memo)
        point = tracer.point
        slots = list(self._base)
        for opcode, dst, operands in self._ops:
            if opcode == _OP_RATIO:
                t1, t2, common = operands
                denominator = slots[common]
                if denominator <= 0.0:
                    slots[dst] = 0.0
                else:
                    slots[dst] = slots[t1] * slots[t2] / denominator
                point(
                    "plan_step",
                    op="ratio",
                    t1=slots[t1],
                    t2=slots[t2],
                    common=denominator,
                    value=slots[dst],
                )
            else:
                total = 0.0
                for part in operands:
                    total += slots[part]
                slots[dst] = total / len(operands)
                point(
                    "plan_step",
                    op="average",
                    parts=len(operands),
                    value=slots[dst],
                )
        if memo is not None:
            for pattern_id, slot in self.memo_slots:
                if pattern_id not in memo:
                    memo[pattern_id] = slots[slot]
        return slots[self.root]

    @property
    def num_ops(self) -> int:
        return len(self._ops)

    def kernel_parts(self) -> tuple[list[float], _OpsT, int]:
        """``(base, ops, root)`` for kernel lowering.

        The returned base list is the live slot vector — callers must
        copy, never mutate (the kernel lowerer snapshots it into its own
        ``array('d')``).
        """
        return (self._base, self._ops, self.root)

    def __getstate__(
        self,
    ) -> tuple[list[float], _OpsT, int, int, _MemoSlotsT]:
        return (self._base, self._ops, self.root, self.max_depth, self.memo_slots)

    def __setstate__(
        self, state: tuple[list[float], _OpsT, int, int, _MemoSlotsT]
    ) -> None:
        (
            self._base,
            self._ops,
            self.root,
            self.max_depth,
            self.memo_slots,
        ) = state

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(slots={len(self._base)}, ops={len(self._ops)}, "
            f"depth={self.max_depth})"
        )


class PlanBuilder:
    """Accumulates slots and ops while the cold-path recursion runs."""

    __slots__ = ("_values", "_ops", "_memo_slots")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._ops: list[tuple[int, int, tuple[int, ...]]] = []
        self._memo_slots: list[tuple[int, int]] = []

    def const(self, value: float) -> int:
        """New slot pre-loaded with ``value``; returns its index."""
        self._values.append(value)
        return len(self._values) - 1

    def ratio(self, t1: int, t2: int, common: int) -> int:
        """Theorem 1 step over three existing slots; returns the result slot."""
        dst = self.const(0.0)
        self._ops.append((_OP_RATIO, dst, (t1, t2, common)))
        return dst

    def average(self, parts: Sequence[int]) -> int:
        """Voting average over per-split slots; returns the result slot."""
        dst = self.const(0.0)
        self._ops.append((_OP_AVG, dst, tuple(parts)))
        return dst

    def note_memo(self, pattern_id: int, slot: int) -> None:
        """Record that ``slot`` holds the estimate of ``pattern_id``."""
        self._memo_slots.append((pattern_id, slot))

    def build(self, root: int, max_depth: int) -> CompiledPlan:
        return CompiledPlan(
            self._values,
            tuple(self._ops),
            root,
            max_depth,
            tuple(self._memo_slots),
        )


class CoverPlan:
    """A fix-sized cover estimate (§3.3) with its factors pre-resolved.

    ``blocks is None`` marks the small-twig shortcut (the twig fits in
    one lattice lookup and ``factors[0][0]`` is the answer).  Otherwise
    ``factors`` holds one ``(block_count, overlap_count | None)`` pair
    per cover piece, truncated at the piece whose count was zero when
    ``zero`` is set — replay multiplies in the original piece order.
    """

    __slots__ = ("blocks", "factors", "zero")

    def __init__(
        self,
        blocks: int | None,
        factors: tuple[tuple[float, float | None], ...],
        zero: bool,
    ) -> None:
        self.blocks = blocks
        self.factors = factors
        self.zero = zero

    def evaluate(self) -> float:
        if self.blocks is None:
            return self.factors[0][0]
        if self.zero:
            return 0.0
        numerator = 1.0
        denominator = 1.0
        for block, overlap in self.factors:
            numerator *= block
            if overlap is not None:
                denominator *= overlap
        return numerator / denominator

    def evaluate_traced(self) -> float:
        """Replay with one ``plan_step`` span point per cover factor."""
        if not obs.enabled:
            return self.evaluate()
        tracer = obs.span_tracer
        if tracer is None:
            return self.evaluate()
        point = tracer.point
        if self.blocks is None:
            value = self.factors[0][0]
            point("plan_step", op="direct", value=value)
            return value
        numerator = 1.0
        denominator = 1.0
        for block, overlap in self.factors:
            numerator *= block
            if overlap is not None:
                denominator *= overlap
            point("plan_step", op="cover_factor", block=block, overlap=overlap)
        if self.zero:
            point("plan_step", op="zero_block", value=0.0)
            return 0.0
        return numerator / denominator

    def __getstate__(
        self,
    ) -> tuple[int | None, tuple[tuple[float, float | None], ...], bool]:
        return (self.blocks, self.factors, self.zero)

    def __setstate__(
        self,
        state: tuple[int | None, tuple[tuple[float, float | None], ...], bool],
    ) -> None:
        self.blocks, self.factors, self.zero = state

    def __repr__(self) -> str:
        return (
            f"CoverPlan(blocks={self.blocks}, factors={len(self.factors)}, "
            f"zero={self.zero})"
        )


class GramPlan:
    """A Markov path estimate (Lemma 4) with its gram counts pre-resolved.

    ``head`` is the leading ``m``-gram count; ``steps`` the sliding
    ``(window_count, overlap_count)`` pairs.  ``zero`` marks a path
    whose first zero overlap short-circuited the original loop.
    """

    __slots__ = ("head", "steps", "zero")

    def __init__(
        self, head: int, steps: tuple[tuple[int, int], ...], zero: bool
    ) -> None:
        self.head = head
        self.steps = steps
        self.zero = zero

    def evaluate(self) -> float:
        if self.zero:
            return 0.0
        estimate = float(self.head)
        for window, overlap in self.steps:
            estimate *= window / overlap
        return estimate

    def evaluate_traced(self) -> float:
        """Replay with one ``plan_step`` span point per gram ratio."""
        if not obs.enabled:
            return self.evaluate()
        tracer = obs.span_tracer
        if tracer is None:
            return self.evaluate()
        point = tracer.point
        point("plan_step", op="head_gram", value=float(self.head))
        if self.zero:
            point("plan_step", op="zero_overlap", value=0.0)
            return 0.0
        estimate = float(self.head)
        for window, overlap in self.steps:
            estimate *= window / overlap
            point(
                "plan_step",
                op="gram_ratio",
                window=window,
                overlap=overlap,
                value=estimate,
            )
        return estimate

    def __getstate__(self) -> tuple[int, tuple[tuple[int, int], ...], bool]:
        return (self.head, self.steps, self.zero)

    def __setstate__(
        self, state: tuple[int, tuple[tuple[int, int], ...], bool]
    ) -> None:
        self.head, self.steps, self.zero = state

    def __repr__(self) -> str:
        return (
            f"GramPlan(head={self.head}, steps={len(self.steps)}, "
            f"zero={self.zero})"
        )
