"""Incremental lattice maintenance (the paper's stated future work).

The paper notes (§2.2, §6) that TreeLattice "by design is also
incremental in nature and can maintain summaries on-line", in the spirit
of XPathLearner, but does not evaluate it.  This module implements exact
incremental maintenance for the dominant growth pattern of record-style
XML: **appending a record subtree under the document root** (a new
auction, a new protein entry, a new movie).

Correctness argument.  A twig match image is connected (every query edge
maps to a document edge), so after appending record ``R`` under root
``r`` every match falls into exactly one of three disjoint classes:

1. *old-only* — entirely inside the old document: already counted;
2. *record-only* — entirely inside ``R``'s nodes: counted by mining the
   record in isolation (its internal structure is unchanged by the
   graft);
3. *spanning* — uses nodes on both sides, hence contains the edge
   ``r -> root(R)``, hence contains ``r``; and since ``r`` has no
   parent, the query node mapped to ``r`` must be the query root.  So
   every spanning match is **anchored at the document root**, and the
   class-3 contribution is the change in root-anchored pattern counts.

The maintainer therefore mines the record (class 2) and re-enumerates
root-anchored patterns before and after the graft (class 3).  The
result is bit-exact with a full rebuild — asserted against
:func:`repro.mining.mine_lattice` in the test suite — at a fraction of
the cost when records are small relative to the document.
"""

from __future__ import annotations

import time

from .. import obs
from ..mining.freqt import mine_lattice
from ..mining.sharded import anchored_counts
from ..trees.canonical import Canon
from ..trees.labeled_tree import LabeledTree, TreeBuildError
from ..trees.matching import DocumentIndex
from .lattice import LatticeSummary

__all__ = ["IncrementalLattice"]


class IncrementalLattice:
    """A lattice summary kept exact while records are appended.

    Parameters
    ----------
    document:
        The growing document.  The maintainer takes ownership: grow it
        only through :meth:`append_record` (mutating the tree elsewhere
        invalidates the summary).
    level:
        Lattice level ``k``.
    """

    def __init__(self, document: LabeledTree, level: int) -> None:
        if level < 2:
            raise ValueError("a lattice summary needs level >= 2")
        self._document = document
        self.level = level
        self._pattern_counts: dict[Canon, int] = dict(
            mine_lattice(document, level).all_patterns()
        )
        self._appends = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def document(self) -> LabeledTree:
        return self._document

    @property
    def appends(self) -> int:
        """Number of records appended since construction."""
        return self._appends

    def summary(self) -> LatticeSummary:
        """Snapshot the current counts as an immutable summary."""
        return LatticeSummary(
            self.level,
            {c: n for c, n in self._pattern_counts.items() if n > 0},
        )

    def count(self, pattern: Canon) -> int:
        """Current exact count of ``pattern`` (0 when absent)."""
        return self._pattern_counts.get(pattern, 0)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def append_record(self, record: LabeledTree) -> None:
        """Append ``record`` under the document root; update all counts.

        The record is copied — the caller's tree is not retained.
        """
        if record.size < 1:
            raise TreeBuildError("cannot append an empty record")
        started = time.perf_counter()

        # Class 3, before-side.
        before = self._root_anchored_counts()

        _graft(self._document, self._document.root, record)
        self._appends += 1

        # Class 2: patterns entirely inside the new record.
        for pattern, count in mine_lattice(record, self.level).all_patterns().items():
            self._pattern_counts[pattern] = self._pattern_counts.get(pattern, 0) + count

        # Class 3: spanning matches = delta of root-anchored counts.
        after = self._root_anchored_counts()
        touched = 0
        for pattern in after.keys() | before.keys():
            delta = after.get(pattern, 0) - before.get(pattern, 0)
            if delta:
                touched += 1
                self._pattern_counts[pattern] = self._pattern_counts.get(pattern, 0) + delta
        if obs.enabled:
            self._record_append(record.size, touched, started)

    def _record_append(self, record_size: int, spanning: int, started: float) -> None:
        if not obs.enabled:  # call sites check too; this is defence in depth
            return
        elapsed = time.perf_counter() - started
        obs.registry.counter(
            "incremental_appends_total", "Records appended since process start."
        ).inc()
        obs.registry.histogram(
            "incremental_record_size", "Node counts of appended records."
        ).observe(record_size)
        obs.registry.histogram(
            "incremental_spanning_updates",
            "Root-anchored patterns whose counts changed per append.",
        ).observe(spanning)
        obs.registry.timer(
            "incremental_append_seconds", "Wall time per incremental append."
        ).observe(elapsed)
        obs.registry.gauge(
            "incremental_document_nodes", "Document size after the last append."
        ).set(self._document.size)
        obs.event(
            "incremental_append",
            record_size=record_size,
            spanning_updates=spanning,
            document_nodes=self._document.size,
            seconds=round(elapsed, 6),
        )

    def _root_anchored_counts(self) -> dict[Canon, int]:
        """Counts of every lattice-sized pattern *anchored at the root*.

        The single-anchor case of the shared
        :func:`~repro.mining.sharded.anchored_counts` enumeration (the
        sharded miner uses the same routine with a shard plan's residue
        as the anchor set).
        """
        document = self._document
        return anchored_counts(
            DocumentIndex(document), (document.root,), self.level
        )


def _graft(document: LabeledTree, parent: int, record: LabeledTree) -> int:
    """Copy ``record`` as a new child subtree of ``parent``.

    Returns the document id of the copied record root.
    """
    mapping = {
        record.root: document.add_child(parent, record.label(record.root))  # lint: disable=twig-arg-mutation -- grafting IS this helper's job
    }
    for node in record.preorder():
        if node == record.root:
            continue
        mapping[node] = document.add_child(  # lint: disable=twig-arg-mutation -- see above
            mapping[record.parent(node)], record.label(node)
        )
    return mapping[record.root]
