"""Fix-sized decomposition estimator (paper §3.3, Lemmas 2-3).

Cover the twig ``T`` (size ``n``) with exactly ``n - k + 1`` subtrees of
size ``k`` in canonical pre-order.  Consecutive blocks overlap the
already-covered prefix in a ``(k-1)``-subtree, so under the conditional
independence assumption

    s(T)  ≈  Π s(B_i)  /  Π s(B_i ∩ prefix_i)

where every factor is a direct lattice lookup (no recursion) — which is
why this estimator is the fastest of the family, at some accuracy cost
on large twigs because its overlaps are smaller than the recursive
scheme's maximal ones.

The first estimate of each canonical shape compiles the cover into a
:class:`~repro.core.plan.CoverPlan` (every factor pre-resolved against
the summary, including recursive fallbacks for pruned blocks); repeated
shapes replay the factor products without re-deriving the cover.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ContextManager, Sequence

if TYPE_CHECKING:
    from ..kernels.program import PlanT

from .. import obs
from ..trees.canonical import PatternInterner, canon, encode_canon
from ..trees.labeled_tree import LabeledTree
from .decompose import fixed_cover
from .estimator import SelectivityEstimator
from .lattice import LatticeSummary
from .plan import CoverPlan, record_plan_request
from .recursive import RecursiveDecompositionEstimator, _record_lookup

__all__ = ["FixedDecompositionEstimator"]


class FixedDecompositionEstimator(SelectivityEstimator):
    """TreeLattice's fix-sized decomposition estimator.

    Parameters
    ----------
    lattice:
        The summary to draw block counts from (treated as immutable;
        compiled cover plans bake its counts in).
    block_size:
        Size ``k`` of covering blocks; defaults to the lattice level
        (the largest size with direct counts).
    """

    name = "fix-sized decomp"

    def __init__(self, lattice: LatticeSummary, *, block_size: int | None = None) -> None:
        if block_size is None:
            block_size = lattice.level
        if not 2 <= block_size <= lattice.level:
            raise ValueError(
                f"block_size must be in [2, {lattice.level}], got {block_size}"
            )
        self.lattice = lattice
        self.block_size = block_size
        # Pruned summaries can lack a block's count; the recursive
        # estimator reconstructs it from what remains.
        self._fallback = RecursiveDecompositionEstimator(lattice)
        self._plan_keys = PatternInterner()
        self._plans: dict[int, CoverPlan] = {}

    def clear_cache(self) -> None:
        """Drop compiled cover plans (and the fallback's caches)."""
        self._plans.clear()
        self._fallback.clear_cache()
        if self._kernels is not None:
            self._kernels.clear()

    def _estimate_trees(self, trees: Sequence[LabeledTree]) -> list[float]:
        """Batch hook: pruned-block fallbacks share one memo per batch."""
        with self._fallback.batch_cache():
            return [self._estimate_tree(tree) for tree in trees]

    # ------------------------------------------------------------------
    # Kernel batch hooks (see SelectivityEstimator._estimate_trees_kernel)
    # ------------------------------------------------------------------

    supports_kernels = True

    def _kernel_probe(self, tree: LabeledTree) -> tuple[int, "PlanT | None"]:
        pattern_id = self._plan_keys.intern(canon(tree))
        return pattern_id, self._plans.get(pattern_id)

    def _kernel_warm_plans(self) -> Sequence[tuple[int, "PlanT"]]:
        return list(self._plans.items())

    def _kernel_batch_scope(self) -> ContextManager[None]:
        # Cold covers fall back to the recursive estimator for pruned
        # blocks; share its memo across the batch, exactly like the
        # legacy batch hook.  Cover plans donate nothing to that memo,
        # so no pending-flush bookkeeping is needed here.
        return self._fallback.batch_cache()

    def _note_kernel_hit(self, tree: LabeledTree, plan: "PlanT") -> None:
        assert isinstance(plan, CoverPlan)
        if obs.enabled:
            record_plan_request(
                self.name, "hit", len(self._plans), len(self._plan_keys)
            )
            if plan.blocks is not None:
                self._record_cover(tree, plan.blocks)

    def _estimate_tree(self, tree: LabeledTree) -> float:
        pattern_id = self._plan_keys.intern(canon(tree))
        plan = self._plans.get(pattern_id)
        if plan is not None:
            if not obs.enabled:
                return plan.evaluate()
            record_plan_request(
                self.name, "hit", len(self._plans), len(self._plan_keys)
            )
            with obs.span("estimate", estimator=self.name, plan="hit") as root_span:
                with obs.registry.timer(
                    "estimate_seconds", "Per-query estimation wall time."
                ).time() as frame:
                    value = (
                        plan.evaluate_traced()
                        if obs.span_recording()
                        else plan.evaluate()
                    )
                root_span.set(value=value)
            obs.registry.quantile(
                "estimate_latency_seconds",
                "Per-query estimation latency quantiles.",
            ).observe(frame.elapsed)
            if plan.blocks is not None:
                self._record_cover(tree, plan.blocks)
            return value
        if not obs.enabled:
            value, plan = self._compile_cover(tree)
            self._plans[pattern_id] = plan
            return value
        with obs.span("estimate", estimator=self.name, plan="miss") as root_span:
            with obs.registry.timer(
                "estimate_seconds", "Per-query estimation wall time."
            ).time() as frame:
                value, plan = self._compile_cover(tree)
            root_span.set(value=value)
        obs.registry.quantile(
            "estimate_latency_seconds",
            "Per-query estimation latency quantiles.",
        ).observe(frame.elapsed)
        self._plans[pattern_id] = plan
        record_plan_request(
            self.name, "miss", len(self._plans), len(self._plan_keys)
        )
        return value

    def _compile_cover(self, tree: LabeledTree) -> tuple[float, CoverPlan]:
        """The original cover estimate, recording each factor as it goes."""
        if tree.size <= self.block_size:
            value = self._pattern_count(tree)
            return value, CoverPlan(None, ((value, None),), False)
        factors: list[tuple[float, float | None]] = []
        numerator = 1.0
        denominator = 1.0
        blocks = 0
        for piece in fixed_cover(tree, self.block_size):
            blocks += 1
            block_count = self._pattern_count(piece.block)
            if block_count <= 0.0:
                self._record_cover(tree, blocks)
                return 0.0, CoverPlan(blocks, tuple(factors), True)
            numerator *= block_count
            overlap_count: float | None = None
            if piece.overlap is not None:
                if obs.enabled:
                    obs.registry.counter(
                        "fixed_overlap_lookups_total",
                        "Overlap-subtree counts read by the fix-sized cover.",
                    ).inc()
                overlap_count = self._pattern_count(piece.overlap)
                if overlap_count <= 0.0:
                    self._record_cover(tree, blocks)
                    return 0.0, CoverPlan(blocks, tuple(factors), True)
                denominator *= overlap_count
            factors.append((block_count, overlap_count))
        self._record_cover(tree, blocks)
        return numerator / denominator, CoverPlan(blocks, tuple(factors), False)

    @staticmethod
    def _record_cover(tree: LabeledTree, blocks: int) -> None:
        if obs.enabled:
            obs.registry.histogram(
                "fixed_cover_blocks", "Covering blocks per fix-sized estimate."
            ).observe(blocks)
            obs.event("fixed_cover", size=tree.size, blocks=blocks)

    def _pattern_count(self, pattern: LabeledTree) -> float:
        stored = self.lattice.get(pattern)
        if stored is not None:
            if obs.enabled:
                _record_lookup("hit", canon(pattern), pattern.size, float(stored))
            return float(stored)
        if self.lattice.is_complete_at(pattern.size):
            if obs.enabled:
                _record_lookup("complete_zero", canon(pattern), pattern.size, 0.0)
            return 0.0
        if obs.enabled:
            _record_lookup("pruned_miss", canon(pattern), pattern.size)
            # The nested recursive estimate below opens its own child
            # span; this point marks *why* it runs (δ-pruning fallback).
            obs.span_point(
                "pruned_fallback",
                pattern=encode_canon(canon(pattern)),
                size=pattern.size,
            )
        return self._fallback.estimate(pattern)

    def __repr__(self) -> str:
        return f"FixedDecompositionEstimator(k={self.block_size})"
