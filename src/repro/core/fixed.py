"""Fix-sized decomposition estimator (paper §3.3, Lemmas 2-3).

Cover the twig ``T`` (size ``n``) with exactly ``n - k + 1`` subtrees of
size ``k`` in canonical pre-order.  Consecutive blocks overlap the
already-covered prefix in a ``(k-1)``-subtree, so under the conditional
independence assumption

    s(T)  ≈  Π s(B_i)  /  Π s(B_i ∩ prefix_i)

where every factor is a direct lattice lookup (no recursion) — which is
why this estimator is the fastest of the family, at some accuracy cost
on large twigs because its overlaps are smaller than the recursive
scheme's maximal ones.
"""

from __future__ import annotations

from typing import Sequence

from .. import obs
from ..trees.canonical import canon
from ..trees.labeled_tree import LabeledTree
from .decompose import fixed_cover
from .estimator import SelectivityEstimator
from .lattice import LatticeSummary
from .recursive import RecursiveDecompositionEstimator, _record_lookup

__all__ = ["FixedDecompositionEstimator"]


class FixedDecompositionEstimator(SelectivityEstimator):
    """TreeLattice's fix-sized decomposition estimator.

    Parameters
    ----------
    lattice:
        The summary to draw block counts from.
    block_size:
        Size ``k`` of covering blocks; defaults to the lattice level
        (the largest size with direct counts).
    """

    name = "fix-sized decomp"

    def __init__(self, lattice: LatticeSummary, *, block_size: int | None = None) -> None:
        if block_size is None:
            block_size = lattice.level
        if not 2 <= block_size <= lattice.level:
            raise ValueError(
                f"block_size must be in [2, {lattice.level}], got {block_size}"
            )
        self.lattice = lattice
        self.block_size = block_size
        # Pruned summaries can lack a block's count; the recursive
        # estimator reconstructs it from what remains.
        self._fallback = RecursiveDecompositionEstimator(lattice)

    def _estimate_trees(self, trees: Sequence[LabeledTree]) -> list[float]:
        """Batch hook: pruned-block fallbacks share one memo per batch."""
        with self._fallback.batch_cache():
            return [self._estimate_tree(tree) for tree in trees]

    def _estimate_tree(self, tree: LabeledTree) -> float:
        if not obs.enabled:
            return self._cover_estimate(tree)
        with obs.registry.timer(
            "estimate_seconds", "Per-query estimation wall time."
        ).time():
            return self._cover_estimate(tree)

    def _cover_estimate(self, tree: LabeledTree) -> float:
        if tree.size <= self.block_size:
            return self._pattern_count(tree)
        numerator = 1.0
        denominator = 1.0
        blocks = 0
        for piece in fixed_cover(tree, self.block_size):
            blocks += 1
            block_count = self._pattern_count(piece.block)
            if block_count <= 0.0:
                self._record_cover(tree, blocks)
                return 0.0
            numerator *= block_count
            if piece.overlap is not None:
                if obs.enabled:
                    obs.registry.counter(
                        "fixed_overlap_lookups_total",
                        "Overlap-subtree counts read by the fix-sized cover.",
                    ).inc()
                overlap_count = self._pattern_count(piece.overlap)
                if overlap_count <= 0.0:
                    self._record_cover(tree, blocks)
                    return 0.0
                denominator *= overlap_count
        self._record_cover(tree, blocks)
        return numerator / denominator

    @staticmethod
    def _record_cover(tree: LabeledTree, blocks: int) -> None:
        if obs.enabled:
            obs.registry.histogram(
                "fixed_cover_blocks", "Covering blocks per fix-sized estimate."
            ).observe(blocks)
            obs.event("fixed_cover", size=tree.size, blocks=blocks)

    def _pattern_count(self, pattern: LabeledTree) -> float:
        stored = self.lattice.get(pattern)
        if stored is not None:
            if obs.enabled:
                _record_lookup("hit", canon(pattern), pattern.size)
            return float(stored)
        if self.lattice.is_complete_at(pattern.size):
            if obs.enabled:
                _record_lookup("complete_zero", canon(pattern), pattern.size)
            return 0.0
        if obs.enabled:
            _record_lookup("pruned_miss", canon(pattern), pattern.size)
        return self._fallback.estimate(pattern)

    def __repr__(self) -> str:
        return f"FixedDecompositionEstimator(k={self.block_size})"
