"""Estimator interface shared by TreeLattice estimators and baselines.

Every estimator consumes a twig query — as a :class:`TwigQuery`, a
:class:`LabeledTree`, a canon tuple, or query text in either supported
syntax — and returns a non-negative float estimate of its selectivity
(the number of matches per Definition 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager, Sequence

from .. import obs
from ..trees.canonical import Canon, canon_to_tree
from ..trees.labeled_tree import LabeledTree
from ..trees.twig import TwigQuery

if TYPE_CHECKING:
    from ..kernels import KernelState
    from ..kernels.program import PlanT
    from ..resilience import RetryPolicy

__all__ = ["QueryLike", "SelectivityEstimator", "coerce_query_tree"]

#: Any accepted query form (see :func:`coerce_query_tree`).
QueryLike = TwigQuery | LabeledTree | Canon | str


def coerce_query_tree(query: QueryLike) -> LabeledTree:
    """Normalise any accepted query form to a :class:`LabeledTree`."""
    if isinstance(query, TwigQuery):
        return query.tree
    if isinstance(query, LabeledTree):
        return query
    if isinstance(query, str):
        return TwigQuery.parse(query).tree
    if isinstance(query, tuple):
        return canon_to_tree(query)
    raise TypeError(f"cannot interpret {type(query).__name__} as a twig query")


class SelectivityEstimator(ABC):
    """Common surface of all selectivity estimators.

    Subclasses implement :meth:`_estimate_tree`; the public
    :meth:`estimate` handles input coercion, and :meth:`estimate_count`
    rounds to the nearest non-negative integer for callers that want an
    approximate COUNT answer rather than a raw estimate.
    """

    #: Short human-readable name used in benchmark reports.
    name: str = "estimator"

    #: Whether this estimator can lower its compiled plans to flat
    #: kernel programs (:mod:`repro.kernels`).  Baselines leave this
    #: False; ``backend="auto"`` then degrades to the legacy path.
    supports_kernels: bool = False

    #: Lazily-created kernel caches (lowered programs + prepared numpy
    #: batches); ``None`` until a kernel backend is first used.
    _kernels: "KernelState | None" = None

    def estimate(self, query: QueryLike) -> float:
        """Estimated selectivity of ``query`` (non-negative float)."""
        return self._estimate_tree(coerce_query_tree(query))

    def estimate_count(self, query: QueryLike) -> int:
        """Estimate rounded to an integer count (approximate COUNT answer)."""
        return max(0, round(self.estimate(query)))

    def estimate_batch(
        self,
        queries: Sequence[QueryLike],
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        backend: str | None = None,
        retry: "RetryPolicy | None" = None,
    ) -> list[float]:
        """Estimate a whole workload in one call.

        The values are exactly ``[self.estimate(q) for q in queries]`` —
        batching never changes an estimate — but subclasses share work
        across the batch (the recursive/voting estimator reuses sub-twig
        selectivities through one cross-query memo, see
        :meth:`~repro.core.recursive.RecursiveDecompositionEstimator.
        _estimate_trees`), and ``workers`` fans large batches out over
        worker processes in deterministic chunks (``0`` = one worker per
        core; ``chunk_size`` pins queries per task).

        ``backend`` picks how warm (already-compiled) shapes replay:
        ``None``/``"plan"`` keeps the legacy per-query plan replay;
        ``"array"`` and ``"numpy"`` run lowered flat-array kernel
        programs (:mod:`repro.kernels`), ``"auto"`` the fastest backend
        available.  Every backend is bit-identical — same float ops in
        the same order per query — so this is purely a throughput knob.

        ``retry`` sets the parallel path's per-chunk failure budget
        (:class:`~repro.resilience.RetryPolicy`; ignored when serial).
        By default nothing is retried, but a worker crash or hang still
        surfaces as a chained
        :class:`~repro.resilience.ChunkFailureError` naming the failing
        chunk; with ``fallback=True`` exhausted chunks degrade to an
        in-process serial replay instead.  See ``docs/robustness.md``.
        """
        trees = [coerce_query_tree(query) for query in queries]
        resolved = "plan"
        if backend is not None:
            from ..kernels import resolve_backend

            resolved = resolve_backend(backend)
            if resolved != "plan" and not self.supports_kernels:
                if backend != "auto":
                    raise ValueError(
                        f"estimator {self.name!r} does not support kernel "
                        f"backend {backend!r} (it compiles no plans)"
                    )
                resolved = "plan"
        n_workers = 1
        if workers is not None:
            from ..parallel.pool import resolve_workers

            n_workers = resolve_workers(workers)

        def run() -> list[float]:
            if n_workers > 1 and len(trees) > 1:
                from ..parallel.batch import estimate_trees_parallel

                return estimate_trees_parallel(
                    self,
                    trees,
                    workers=n_workers,
                    chunk_size=chunk_size,
                    backend=resolved,
                    retry=retry,
                )
            if resolved != "plan":
                return self._estimate_trees_kernel(trees, resolved)
            return self._estimate_trees(trees)

        if not obs.enabled:
            return run()
        with obs.registry.timer(
            "estimate_batch_seconds", "Whole-batch estimation wall time."
        ).time():
            values = run()
        obs.registry.counter(
            "estimate_batch_queries_total",
            "Queries estimated through the batch API.",
        ).inc(len(values))
        return values

    def _estimate_trees(self, trees: Sequence[LabeledTree]) -> list[float]:
        """Batch hook: estimate coerced query trees sequentially.

        Subclasses override this to share state across the batch; the
        parallel fan-out calls it once per chunk inside each worker.
        """
        return [self._estimate_tree(tree) for tree in trees]

    # ------------------------------------------------------------------
    # Kernel batch path (backend="array" / "numpy")
    # ------------------------------------------------------------------

    def _kernel_state(self) -> "KernelState":
        """The estimator's kernel caches, created on first kernel use."""
        state = self._kernels
        if state is None:
            from ..kernels import KernelState

            state = KernelState()
            self._kernels = state
        return state

    def _estimate_trees_kernel(
        self, trees: Sequence[LabeledTree], backend: str
    ) -> list[float]:
        """Batch hook for kernel backends: vectorise the warm shapes.

        Warm queries (shape already compiled) are deferred and executed
        together through :meth:`KernelState.execute`; cold queries run
        the untouched legacy :meth:`_estimate_tree` (which compiles the
        plan, so the shape is warm for every later batch).  The
        :meth:`_before_kernel_cold` hook lets estimators reproduce
        legacy cross-query state (the recursive memo donations) before
        each cold compile, keeping values *and* observability counters
        identical to the plan-replay path.
        """
        state = self._kernel_state()
        if not obs.enabled:
            return self._run_kernel_batch(trees, backend, state)
        with obs.span(
            "kernel_batch",
            backend=backend,
            estimator=self.name,
            queries=len(trees),
        ) as batch_span:
            values = self._run_kernel_batch(trees, backend, state)
            batch_span.set(programs=state.program_count)
        from ..kernels.record import record_kernel_batch

        record_kernel_batch(backend, self.name, len(trees), state.program_count)
        return values

    def _run_kernel_batch(
        self,
        trees: Sequence[LabeledTree],
        backend: str,
        state: "KernelState",
    ) -> list[float]:
        results = [0.0] * len(trees)
        warm_indices: list[int] = []
        warm_ids: list[int] = []
        warm_plans: list["PlanT"] = []
        with self._kernel_batch_scope():
            for index, tree in enumerate(trees):
                pattern_id, plan = self._kernel_probe(tree)
                if plan is not None:
                    self._note_kernel_hit(tree, plan)
                    warm_indices.append(index)
                    warm_ids.append(pattern_id)
                    warm_plans.append(plan)
                else:
                    self._before_kernel_cold()
                    results[index] = self._estimate_tree(tree)
            if warm_indices:
                values = state.execute(backend, warm_ids, warm_plans)
                for index, value in zip(warm_indices, values):
                    results[index] = value
        return results

    def _kernel_probe(self, tree: LabeledTree) -> tuple[int, "PlanT | None"]:
        """Intern the query shape; return ``(pattern_id, cached plan)``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support kernel backends"
        )

    def _kernel_warm_plans(self) -> Sequence[tuple[int, "PlanT"]]:
        """Every ``(pattern_id, plan)`` already compiled on this instance.

        The parallel fan-out lowers these to kernel programs *before*
        pickling the estimator to workers, so programs ship once per
        worker instead of being re-lowered per chunk.
        """
        return ()

    def _kernel_batch_scope(self) -> ContextManager[None]:
        """Cross-query state scope for one kernel batch (memo, pending)."""
        return nullcontext()

    def _note_kernel_hit(self, tree: LabeledTree, plan: "PlanT") -> None:
        """A warm query was deferred to the kernel executor."""

    def _before_kernel_cold(self) -> None:
        """Restore legacy cross-query state before a cold compile."""

    @abstractmethod
    def _estimate_tree(self, tree: LabeledTree) -> float:
        """Estimate the selectivity of a coerced query tree."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
