"""Estimator interface shared by TreeLattice estimators and baselines.

Every estimator consumes a twig query — as a :class:`TwigQuery`, a
:class:`LabeledTree`, a canon tuple, or query text in either supported
syntax — and returns a non-negative float estimate of its selectivity
(the number of matches per Definition 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from .. import obs
from ..trees.canonical import Canon, canon_to_tree
from ..trees.labeled_tree import LabeledTree
from ..trees.twig import TwigQuery

__all__ = ["QueryLike", "SelectivityEstimator", "coerce_query_tree"]

#: Any accepted query form (see :func:`coerce_query_tree`).
QueryLike = TwigQuery | LabeledTree | Canon | str


def coerce_query_tree(query: QueryLike) -> LabeledTree:
    """Normalise any accepted query form to a :class:`LabeledTree`."""
    if isinstance(query, TwigQuery):
        return query.tree
    if isinstance(query, LabeledTree):
        return query
    if isinstance(query, str):
        return TwigQuery.parse(query).tree
    if isinstance(query, tuple):
        return canon_to_tree(query)
    raise TypeError(f"cannot interpret {type(query).__name__} as a twig query")


class SelectivityEstimator(ABC):
    """Common surface of all selectivity estimators.

    Subclasses implement :meth:`_estimate_tree`; the public
    :meth:`estimate` handles input coercion, and :meth:`estimate_count`
    rounds to the nearest non-negative integer for callers that want an
    approximate COUNT answer rather than a raw estimate.
    """

    #: Short human-readable name used in benchmark reports.
    name: str = "estimator"

    def estimate(self, query: QueryLike) -> float:
        """Estimated selectivity of ``query`` (non-negative float)."""
        return self._estimate_tree(coerce_query_tree(query))

    def estimate_count(self, query: QueryLike) -> int:
        """Estimate rounded to an integer count (approximate COUNT answer)."""
        return max(0, round(self.estimate(query)))

    def estimate_batch(
        self,
        queries: Sequence[QueryLike],
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
    ) -> list[float]:
        """Estimate a whole workload in one call.

        The values are exactly ``[self.estimate(q) for q in queries]`` —
        batching never changes an estimate — but subclasses share work
        across the batch (the recursive/voting estimator reuses sub-twig
        selectivities through one cross-query memo, see
        :meth:`~repro.core.recursive.RecursiveDecompositionEstimator.
        _estimate_trees`), and ``workers`` fans large batches out over
        worker processes in deterministic chunks (``0`` = one worker per
        core; ``chunk_size`` pins queries per task).
        """
        trees = [coerce_query_tree(query) for query in queries]
        n_workers = 1
        if workers is not None:
            from ..parallel.pool import resolve_workers

            n_workers = resolve_workers(workers)

        def run() -> list[float]:
            if n_workers > 1 and len(trees) > 1:
                from ..parallel.batch import estimate_trees_parallel

                return estimate_trees_parallel(
                    self, trees, workers=n_workers, chunk_size=chunk_size
                )
            return self._estimate_trees(trees)

        if not obs.enabled:
            return run()
        with obs.registry.timer(
            "estimate_batch_seconds", "Whole-batch estimation wall time."
        ).time():
            values = run()
        obs.registry.counter(
            "estimate_batch_queries_total",
            "Queries estimated through the batch API.",
        ).inc(len(values))
        return values

    def _estimate_trees(self, trees: Sequence[LabeledTree]) -> list[float]:
        """Batch hook: estimate coerced query trees sequentially.

        Subclasses override this to share state across the batch; the
        parallel fan-out calls it once per chunk inside each worker.
        """
        return [self._estimate_tree(tree) for tree in trees]

    @abstractmethod
    def _estimate_tree(self, tree: LabeledTree) -> float:
        """Estimate the selectivity of a coerced query tree."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
