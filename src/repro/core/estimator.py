"""Estimator interface shared by TreeLattice estimators and baselines.

Every estimator consumes a twig query — as a :class:`TwigQuery`, a
:class:`LabeledTree`, a canon tuple, or query text in either supported
syntax — and returns a non-negative float estimate of its selectivity
(the number of matches per Definition 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..trees.canonical import Canon, canon_to_tree
from ..trees.labeled_tree import LabeledTree
from ..trees.twig import TwigQuery

__all__ = ["QueryLike", "SelectivityEstimator", "coerce_query_tree"]

#: Any accepted query form (see :func:`coerce_query_tree`).
QueryLike = TwigQuery | LabeledTree | Canon | str


def coerce_query_tree(query: QueryLike) -> LabeledTree:
    """Normalise any accepted query form to a :class:`LabeledTree`."""
    if isinstance(query, TwigQuery):
        return query.tree
    if isinstance(query, LabeledTree):
        return query
    if isinstance(query, str):
        return TwigQuery.parse(query).tree
    if isinstance(query, tuple):
        return canon_to_tree(query)
    raise TypeError(f"cannot interpret {type(query).__name__} as a twig query")


class SelectivityEstimator(ABC):
    """Common surface of all selectivity estimators.

    Subclasses implement :meth:`_estimate_tree`; the public
    :meth:`estimate` handles input coercion, and :meth:`estimate_count`
    rounds to the nearest non-negative integer for callers that want an
    approximate COUNT answer rather than a raw estimate.
    """

    #: Short human-readable name used in benchmark reports.
    name: str = "estimator"

    def estimate(self, query: QueryLike) -> float:
        """Estimated selectivity of ``query`` (non-negative float)."""
        return self._estimate_tree(coerce_query_tree(query))

    def estimate_count(self, query: QueryLike) -> int:
        """Estimate rounded to an integer count (approximate COUNT answer)."""
        return max(0, round(self.estimate(query)))

    @abstractmethod
    def _estimate_tree(self, tree: LabeledTree) -> float:
        """Estimate the selectivity of a coerced query tree."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
