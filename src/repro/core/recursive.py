"""Recursive decomposition estimator (paper §3.2, Theorem 1, Lemma 1).

To estimate a twig ``T`` larger than the lattice level, remove two
degree-1 nodes ``u`` and ``v``:

    s(T)  ≈  s(T - u) * s(T - v) / s(T - u - v)

and recurse on the three parts until every pattern fits in the lattice.
The formula is the expected count under the assumption that growing
``T - u - v`` by the ``u``-edge is conditionally independent of growing
it by the ``v``-edge (Theorem 1).

The **voting** extension evaluates *every* leaf-pair choice at each
recursion level and averages, using the averaged value as the estimate
fed into the next level up.  Memoisation on canonical forms makes this
the bottom-up scheme the paper describes and keeps the cost polynomial
in the number of distinct sub-patterns instead of exponential in the
recursion depth.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from .. import obs
from ..trees.canonical import Canon, canon, encode_canon
from ..trees.labeled_tree import LabeledTree
from .decompose import leaf_pair_decompositions
from .estimator import SelectivityEstimator
from .lattice import LatticeSummary

__all__ = ["RecursiveDecompositionEstimator"]


def _record_lookup(outcome: str, key: Canon, size: int) -> None:
    """Metrics + trace for one summary lookup (only called when enabled)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "lattice_lookups_total",
        "Summary lookups by outcome (hit / complete_zero / pruned_miss).",
        labels=("outcome",),
    ).inc(outcome=outcome)
    obs.event(
        "lattice_lookup", outcome=outcome, pattern=encode_canon(key), size=size
    )


class RecursiveDecompositionEstimator(SelectivityEstimator):
    """TreeLattice's recursive decomposition estimator.

    Parameters
    ----------
    lattice:
        The summary to draw small-twig counts from.
    voting:
        When true, average over all leaf-pair decompositions at every
        recursion level (the paper's "+ Voting" variant); otherwise use
        the first pair only.
    shared_cache:
        When true, keep one memo of sub-twig selectivities across *all*
        queries this instance estimates (instead of one fresh memo per
        query), so a workload of related twigs pays each distinct
        sub-pattern once.  Memoisation never changes a value — every
        entry is a deterministic function of (canon, lattice) — so
        estimates are bit-identical with the cache on or off.  Drop the
        memo with :meth:`clear_cache` after mutating the summary.
    """

    def __init__(
        self,
        lattice: LatticeSummary,
        *,
        voting: bool = False,
        shared_cache: bool = False,
    ) -> None:
        self.lattice = lattice
        self.voting = voting
        self.name = (
            "recursive-decomp + voting" if voting else "recursive-decomp"
        )
        self._max_depth = 0
        self._shared_memo: dict[Canon, float] | None = {} if shared_cache else None

    def clear_cache(self) -> None:
        """Forget cached sub-twig selectivities (no-op without a cache)."""
        if self._shared_memo is not None:
            self._shared_memo.clear()

    @contextmanager
    def batch_cache(self) -> Iterator[None]:
        """Scope a shared cross-query memo for the duration of one batch.

        With a persistent ``shared_cache`` this is a no-op; otherwise a
        temporary memo is installed and dropped on exit.  Used by the
        batch path here and by the fix-sized estimator's fallback.
        """
        if self._shared_memo is not None:
            yield
            return
        self._shared_memo = {}
        try:
            yield
        finally:
            self._shared_memo = None

    def _estimate_trees(self, trees: Sequence[LabeledTree]) -> list[float]:
        """Batch hook: one memo shared by every query in the batch."""
        with self.batch_cache():
            return [self._estimate_tree(tree) for tree in trees]

    def _estimate_tree(self, tree: LabeledTree) -> float:
        memo = self._shared_memo if self._shared_memo is not None else {}
        if not obs.enabled:
            return self._estimate(tree, memo, 0)
        self._max_depth = 0
        with obs.registry.timer(
            "estimate_seconds", "Per-query estimation wall time."
        ).time():
            value = self._estimate(tree, memo, 0)
        obs.registry.histogram(
            "recursion_depth", "Deepest decomposition level reached per query."
        ).observe(self._max_depth)
        return value

    def _estimate(
        self, tree: LabeledTree, memo: dict[Canon, float], depth: int
    ) -> float:
        key = canon(tree)
        cached = memo.get(key)
        if cached is not None:
            if obs.enabled:
                self._record_memo("hit")
            return cached
        if obs.enabled:
            self._record_memo("miss")
        value = self._lookup(key, tree.size)
        if value is None:
            value = self._decompose(tree, memo, depth)
        memo[key] = value
        return value

    @staticmethod
    def _record_memo(outcome: str) -> None:
        if not obs.enabled:  # call sites check too; this is defence in depth
            return
        obs.registry.counter(
            "memo_lookups_total",
            "Per-query memo table lookups by outcome.",
            labels=("outcome",),
        ).inc(outcome=outcome)

    def _lookup(self, key: Canon, size: int) -> float | None:
        """Try the summary; ``None`` means "must decompose"."""
        if size > self.lattice.level:
            return None
        stored = self.lattice.get(key)
        if stored is not None:
            if obs.enabled:
                _record_lookup("hit", key, size)
            return float(stored)
        if self.lattice.is_complete_at(size):
            # The summary stores every occurring pattern of this size, so
            # absence certifies a true zero (the negative-workload case).
            if obs.enabled:
                _record_lookup("complete_zero", key, size)
            return 0.0
        if size < 3:
            # Defensive: pruned summaries always retain levels 1-2; a
            # missing 1- or 2-pattern therefore does not occur.
            if obs.enabled:
                _record_lookup("complete_zero", key, size)
            return 0.0
        if obs.enabled:
            _record_lookup("pruned_miss", key, size)
        return None  # pruned away: fall through to decomposition

    def _decompose(
        self, tree: LabeledTree, memo: dict[Canon, float], depth: int
    ) -> float:
        total = 0.0
        count = 0
        for split in leaf_pair_decompositions(tree):
            denominator = self._estimate(split.common, memo, depth + 1)
            if denominator <= 0.0:
                estimate = 0.0
            else:
                estimate = (
                    self._estimate(split.t1, memo, depth + 1)
                    * self._estimate(split.t2, memo, depth + 1)
                    / denominator
                )
            total += estimate
            count += 1
            if not self.voting:
                break
        if obs.enabled:
            if depth + 1 > self._max_depth:
                self._max_depth = depth + 1
            obs.registry.counter(
                "decompose_steps_total", "Decomposition nodes expanded."
            ).inc()
            obs.registry.histogram(
                "voting_fanout",
                "Leaf-pair decompositions averaged per expanded node.",
            ).observe(count)
            obs.event(
                "decompose_step", size=tree.size, depth=depth, fanout=count
            )
        return total / count if count else 0.0

    def __repr__(self) -> str:
        return (
            f"RecursiveDecompositionEstimator(level={self.lattice.level}, "
            f"voting={self.voting})"
        )
