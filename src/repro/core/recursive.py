"""Recursive decomposition estimator (paper §3.2, Theorem 1, Lemma 1).

To estimate a twig ``T`` larger than the lattice level, remove two
degree-1 nodes ``u`` and ``v``:

    s(T)  ≈  s(T - u) * s(T - v) / s(T - u - v)

and recurse on the three parts until every pattern fits in the lattice.
The formula is the expected count under the assumption that growing
``T - u - v`` by the ``u``-edge is conditionally independent of growing
it by the ``v``-edge (Theorem 1).

The **voting** extension evaluates *every* leaf-pair choice at each
recursion level and averages, using the averaged value as the estimate
fed into the next level up.  Memoisation on canonical forms makes this
the bottom-up scheme the paper describes and keeps the cost polynomial
in the number of distinct sub-patterns instead of exponential in the
recursion depth.

The first estimate of each canonical shape additionally *compiles* the
recursion into a :class:`~repro.core.plan.CompiledPlan` — summary
lookups resolved to constants, the Theorem 1 arithmetic recorded as a
replayable op DAG — so repeated-shape workloads skip tree decomposition
entirely on later queries.  Warm replays are bit-identical to cold runs
(see ``docs/architecture.md`` for the plan lifecycle).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:
    from ..kernels.program import PlanT

from .. import obs
from ..trees.canonical import Canon, PatternInterner, canon, encode_canon
from ..trees.labeled_tree import LabeledTree
from .decompose import leaf_pair_decompositions
from .estimator import SelectivityEstimator
from .lattice import LatticeSummary
from .plan import CompiledPlan, PlanBuilder, record_plan_request

__all__ = ["RecursiveDecompositionEstimator"]


def _record_lookup(
    outcome: str, key: Canon, size: int, value: float | None = None
) -> None:
    """Metrics + trace + span for one summary lookup (when enabled)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "lattice_lookups_total",
        "Summary lookups by outcome (hit / complete_zero / pruned_miss).",
        labels=("outcome",),
    ).inc(outcome=outcome)
    pattern = encode_canon(key)
    obs.event("lattice_lookup", outcome=outcome, pattern=pattern, size=size)
    obs.span_point(
        "lattice_lookup",
        outcome=outcome,
        pattern=pattern,
        size=size,
        value=value,
    )


class RecursiveDecompositionEstimator(SelectivityEstimator):
    """TreeLattice's recursive decomposition estimator.

    Parameters
    ----------
    lattice:
        The summary to draw small-twig counts from.  Treated as
        immutable: compiled plans bake its counts in (call
        :meth:`clear_cache` in the unusual case the summary object is
        swapped out underneath the estimator).
    voting:
        When true, average over all leaf-pair decompositions at every
        recursion level (the paper's "+ Voting" variant); otherwise use
        the first pair only.
    shared_cache:
        When true, keep one memo of sub-twig selectivities across *all*
        queries this instance estimates (instead of one fresh memo per
        query), so a workload of related twigs pays each distinct
        sub-pattern once.  Memoisation never changes a value — every
        entry is a deterministic function of (canon, lattice) — so
        estimates are bit-identical with the cache on or off.  Drop the
        memo with :meth:`clear_cache` after mutating the summary.
    """

    def __init__(
        self,
        lattice: LatticeSummary,
        *,
        voting: bool = False,
        shared_cache: bool = False,
    ) -> None:
        self.lattice = lattice
        self.voting = voting
        self.name = (
            "recursive-decomp + voting" if voting else "recursive-decomp"
        )
        self._max_depth = 0
        self._shared_memo: dict[int, float] | None = {} if shared_cache else None
        # Plan cache: canonical shape (as a dense id from the
        # estimator-owned interner) -> compiled evaluation plan.
        self._plan_keys = PatternInterner()
        self._plans: dict[int, CompiledPlan] = {}
        # Warm plans seen by the current kernel batch whose memo
        # donations have not been replayed yet (see _before_kernel_cold).
        self._kernel_pending: list[CompiledPlan] = []

    def clear_cache(self) -> None:
        """Forget memoised selectivities *and* compiled plans.

        Both caches are pure functions of (canon, summary); dropping them
        never changes an estimate, it only makes the next query per shape
        pay compilation again.
        """
        if self._shared_memo is not None:
            self._shared_memo.clear()
        self._plans.clear()
        if self._kernels is not None:
            self._kernels.clear()

    @contextmanager
    def batch_cache(self) -> Iterator[None]:
        """Scope a shared cross-query memo for the duration of one batch.

        With a persistent ``shared_cache`` this is a no-op; otherwise a
        temporary memo is installed and dropped on exit.  Used by the
        batch path here and by the fix-sized estimator's fallback.
        """
        if self._shared_memo is not None:
            yield
            return
        self._shared_memo = {}
        try:
            yield
        finally:
            self._shared_memo = None

    def _estimate_trees(self, trees: Sequence[LabeledTree]) -> list[float]:
        """Batch hook: one memo shared by every query in the batch."""
        with self.batch_cache():
            return [self._estimate_tree(tree) for tree in trees]

    # ------------------------------------------------------------------
    # Kernel batch hooks (see SelectivityEstimator._estimate_trees_kernel)
    # ------------------------------------------------------------------

    supports_kernels = True

    def _kernel_probe(self, tree: LabeledTree) -> tuple[int, "PlanT | None"]:
        pattern_id = self._plan_keys.intern(canon(tree))
        return pattern_id, self._plans.get(pattern_id)

    def _kernel_warm_plans(self) -> Sequence[tuple[int, "PlanT"]]:
        return list(self._plans.items())

    @contextmanager
    def _kernel_batch_scope(self) -> Iterator[None]:
        """Batch memo plus the pending-donation list for this batch.

        On exit, warm plans whose donations were never needed by a cold
        compile are flushed only when the memo is *persistent*
        (``shared_cache=True``): a later batch's cold compile must see
        exactly the memo a legacy batch would have left behind.  With a
        per-batch memo the leftover donations die with the scope, so the
        flush (which replays plans scalar-ly) is skipped — that is what
        keeps all-warm kernel batches free of per-query Python work.
        """
        persistent = self._shared_memo is not None
        self._kernel_pending = []
        with self.batch_cache():
            try:
                yield
            finally:
                if persistent:
                    self._before_kernel_cold()
                self._kernel_pending = []

    def _note_kernel_hit(self, tree: LabeledTree, plan: "PlanT") -> None:
        assert isinstance(plan, CompiledPlan)
        self._kernel_pending.append(plan)
        if obs.enabled:
            record_plan_request(
                self.name, "hit", len(self._plans), len(self._plan_keys)
            )

    def _before_kernel_cold(self) -> None:
        """Replay pending warm plans' memo donations (legacy order).

        In the legacy batch loop every warm replay donates its sub-twig
        values to the shared memo *before* later queries run.  The
        kernel path defers warm queries, so right before a cold compile
        it re-establishes the exact memo a legacy run would have: each
        pending plan's ``evaluate(memo)`` — bit-identical to the kernel
        result — donates in the original query order.  All-warm batches
        never pay this.
        """
        if not self._kernel_pending:
            return
        memo = self._shared_memo
        if memo is not None:
            for plan in self._kernel_pending:
                plan.evaluate(memo)
        self._kernel_pending.clear()

    def _estimate_tree(self, tree: LabeledTree) -> float:
        memo = self._shared_memo if self._shared_memo is not None else {}
        key = canon(tree)
        pattern_id = self._plan_keys.intern(key)
        plan = self._plans.get(pattern_id)
        if plan is not None:
            if not obs.enabled:
                return plan.evaluate(memo)
            record_plan_request(
                self.name, "hit", len(self._plans), len(self._plan_keys)
            )
            with obs.span("estimate", estimator=self.name, plan="hit") as root_span:
                traced = obs.span_recording()
                if traced:
                    root_span.set(pattern=encode_canon(key))
                with obs.registry.timer(
                    "estimate_seconds", "Per-query estimation wall time."
                ).time() as frame:
                    value = (
                        plan.evaluate_traced(memo)
                        if traced
                        else plan.evaluate(memo)
                    )
                root_span.set(value=value, depth=plan.max_depth)
            obs.registry.histogram(
                "recursion_depth",
                "Deepest decomposition level reached per query.",
            ).observe(plan.max_depth)
            obs.registry.quantile(
                "estimate_latency_seconds",
                "Per-query estimation latency quantiles.",
            ).observe(frame.elapsed)
            return value
        builder = PlanBuilder()
        self._max_depth = 0
        if not obs.enabled:
            value, root = self._compile(tree, memo, 0, builder)
            self._plans[pattern_id] = builder.build(root, self._max_depth)
            return value
        with obs.span("estimate", estimator=self.name, plan="miss") as root_span:
            if obs.span_recording():
                root_span.set(pattern=encode_canon(key))
            with obs.registry.timer(
                "estimate_seconds", "Per-query estimation wall time."
            ).time() as frame:
                value, root = self._compile(tree, memo, 0, builder)
            root_span.set(value=value, depth=self._max_depth)
        obs.registry.histogram(
            "recursion_depth", "Deepest decomposition level reached per query."
        ).observe(self._max_depth)
        obs.registry.quantile(
            "estimate_latency_seconds",
            "Per-query estimation latency quantiles.",
        ).observe(frame.elapsed)
        self._plans[pattern_id] = builder.build(root, self._max_depth)
        record_plan_request(
            self.name, "miss", len(self._plans), len(self._plan_keys)
        )
        return value

    def _compile(
        self,
        tree: LabeledTree,
        memo: dict[int, float],
        depth: int,
        builder: PlanBuilder,
    ) -> tuple[float, int]:
        """One recursion node: return ``(estimate, slot holding it)``.

        This *is* the original estimation recursion — same lookups, same
        float operations, same observability — it just records every
        value and operation into ``builder`` as a side effect.
        """
        key = canon(tree)
        pattern_id = self._plan_keys.intern(key)
        cached = memo.get(pattern_id)
        if cached is not None:
            if obs.enabled:
                self._record_memo("hit")
                if obs.span_recording():
                    obs.span_point(
                        "memo_hit", pattern=encode_canon(key), value=cached
                    )
            return cached, builder.const(cached)
        if obs.enabled:
            self._record_memo("miss")
        value = self._lookup(key, tree.size)
        if value is None:
            if obs.enabled:
                with obs.span("decompose", size=tree.size, depth=depth) as dspan:
                    if obs.span_recording():
                        dspan.set(pattern=encode_canon(key))
                    value, slot = self._compile_decompose(
                        tree, memo, depth, builder
                    )
                    dspan.set(value=value)
            else:
                value, slot = self._compile_decompose(tree, memo, depth, builder)
        else:
            slot = builder.const(value)
        memo[pattern_id] = value
        builder.note_memo(pattern_id, slot)
        return value, slot

    @staticmethod
    def _record_memo(outcome: str) -> None:
        if not obs.enabled:  # call sites check too; this is defence in depth
            return
        obs.registry.counter(
            "memo_lookups_total",
            "Per-query memo table lookups by outcome.",
            labels=("outcome",),
        ).inc(outcome=outcome)

    def _lookup(self, key: Canon, size: int) -> float | None:
        """Try the summary; ``None`` means "must decompose"."""
        if size > self.lattice.level:
            return None
        stored = self.lattice.get(key)
        if stored is not None:
            if obs.enabled:
                _record_lookup("hit", key, size, float(stored))
            return float(stored)
        if self.lattice.is_complete_at(size):
            # The summary stores every occurring pattern of this size, so
            # absence certifies a true zero (the negative-workload case).
            if obs.enabled:
                _record_lookup("complete_zero", key, size, 0.0)
            return 0.0
        if size < 3:
            # Defensive: pruned summaries always retain levels 1-2; a
            # missing 1- or 2-pattern therefore does not occur.
            if obs.enabled:
                _record_lookup("complete_zero", key, size, 0.0)
            return 0.0
        if obs.enabled:
            _record_lookup("pruned_miss", key, size)
        return None  # pruned away: fall through to decomposition

    def _compile_decompose(
        self,
        tree: LabeledTree,
        memo: dict[int, float],
        depth: int,
        builder: PlanBuilder,
    ) -> tuple[float, int]:
        total = 0.0
        count = 0
        parts: list[int] = []
        for split in leaf_pair_decompositions(tree):
            if obs.enabled:
                obs.span_point("choice", index=count)
            denominator, denominator_slot = self._compile(
                split.common, memo, depth + 1, builder
            )
            if denominator <= 0.0:
                # The original recursion never evaluates t1/t2 here, so
                # neither does the compiler; the plan keeps the folded 0.
                estimate = 0.0
                part = builder.const(0.0)
            else:
                t1_value, t1_slot = self._compile(
                    split.t1, memo, depth + 1, builder
                )
                t2_value, t2_slot = self._compile(
                    split.t2, memo, depth + 1, builder
                )
                estimate = t1_value * t2_value / denominator
                part = builder.ratio(t1_slot, t2_slot, denominator_slot)
            parts.append(part)
            total += estimate
            count += 1
            if not self.voting:
                break
        # Tracked unconditionally (not only under obs): the compiled
        # plan's max_depth must match what a cold observed run reports.
        if depth + 1 > self._max_depth:
            self._max_depth = depth + 1
        if obs.enabled:
            obs.registry.counter(
                "decompose_steps_total", "Decomposition nodes expanded."
            ).inc()
            obs.registry.histogram(
                "voting_fanout",
                "Leaf-pair decompositions averaged per expanded node.",
            ).observe(count)
            obs.event(
                "decompose_step", size=tree.size, depth=depth, fanout=count
            )
        if not count:
            return 0.0, builder.const(0.0)
        return total / count, builder.average(parts)

    def __repr__(self) -> str:
        return (
            f"RecursiveDecompositionEstimator(level={self.lattice.level}, "
            f"voting={self.voting})"
        )
