"""Workload-aware on-line summary maintenance (XPathLearner-style).

The paper's third future-work item (§6): "adapt TreeLattice, in a manner
similar to XPathLearner, where information learned from an on-line
workload can guide what is to be maintained in the summary structure."

:class:`WorkloadAwareLattice` implements that design point:

* it starts from only the cheap, always-complete levels 1-2 of the
  lattice (label counts and parent-child edge counts — one document
  pass);
* every answered query feeds back its *true* count via
  :meth:`observe` (query processors know it after execution for free),
  and the pattern is added to the store;
* the store lives under a byte budget: when full, the patterns with the
  lowest utility (hits per byte, halved on every eviction sweep so
  stale entries age out) are dropped — levels 1-2 are never evicted;
* estimation decomposes recursively through whatever is currently
  stored, so accuracy on the *observed* workload converges toward the
  full lattice's while memory tracks the working set instead of the
  whole pattern space.
"""

from __future__ import annotations

from .. import obs
from ..mining.freqt import mine_lattice
from ..store.dict_store import DictStore
from ..trees.canonical import Canon, canon_size, encode_canon
from ..trees.labeled_tree import LabeledTree
from .estimator import QueryLike, SelectivityEstimator, coerce_query_tree
from .lattice import LatticeSummary
from .recursive import RecursiveDecompositionEstimator

__all__ = ["WorkloadAwareLattice"]

_COUNT_BYTES = 8


class WorkloadAwareLattice(SelectivityEstimator):
    """An on-line, feedback-driven lattice summary under a byte budget.

    Parameters
    ----------
    document:
        The document; only its levels 1-2 statistics are read up front.
    level:
        Maximum pattern size accepted from feedback (the usual ``k``).
    budget_bytes:
        Cap on the stored statistics (base levels included).
    voting:
        Whether estimation averages over all decompositions.
    """

    name = "workload-aware lattice"

    def __init__(
        self,
        document: LabeledTree,
        level: int = 4,
        *,
        budget_bytes: int = 64 * 1024,
        voting: bool = False,
    ) -> None:
        if level < 2:
            raise ValueError("level must be >= 2")
        self.level = level
        self.budget_bytes = budget_bytes
        self.voting = voting
        base = mine_lattice(document, 2).all_patterns()
        self._base: dict[Canon, int] = dict(base)
        self._learned: dict[Canon, int] = {}
        self._hits: dict[Canon, float] = {}
        self.observations = 0
        self.evictions = 0
        self._view: LatticeSummary | None = None
        base_bytes = self._bytes_of(self._base)
        if base_bytes > budget_bytes:
            raise ValueError(
                f"budget {budget_bytes} cannot hold the base statistics "
                f"({base_bytes} bytes)"
            )

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------

    def observe(self, query: QueryLike, true_count: int) -> bool:
        """Feed back the true count of an executed query.

        Returns True when the pattern was stored (within the level cap).
        """
        if true_count < 0:
            raise ValueError("true_count must be non-negative")
        tree = coerce_query_tree(query)
        if tree.size > self.level or tree.size <= 2:
            # Too large to store; too small to need storing.
            self.observations += 1
            if obs.enabled:
                self._record_observation(tree.size, stored=False)
            return False
        from ..trees.canonical import canon

        key = canon(tree)
        self.observations += 1
        self._learned[key] = true_count
        self._hits[key] = self._hits.get(key, 0.0) + 1.0
        self._view = None
        self._enforce_budget()
        if obs.enabled:
            self._record_observation(tree.size, stored=True)
        return True

    def _record_observation(self, size: int, *, stored: bool) -> None:
        if not obs.enabled:  # call sites check too; this is defence in depth
            return
        obs.registry.counter(
            "online_observations_total",
            "Query feedback observations by storage outcome.",
            labels=("stored",),
        ).inc(stored="yes" if stored else "no")
        obs.registry.histogram(
            "online_observed_pattern_size",
            "Pattern sizes arriving via query feedback.",
        ).observe(size)
        obs.registry.gauge(
            "online_learned_patterns", "Patterns currently learned from feedback."
        ).set(len(self._learned))
        obs.registry.gauge(
            "online_bytes", "Bytes held by the workload-aware store."
        ).set(self.byte_size())
        obs.event(
            "online_observe",
            size=size,
            stored=stored,
            learned=len(self._learned),
            evictions=self.evictions,
        )

    def _enforce_budget(self) -> None:
        while (
            self._bytes_of(self._base) + self._bytes_of(self._learned)
            > self.budget_bytes
            and self._learned
        ):
            # Drop the lowest-utility learned pattern; age the rest.
            # The canon itself breaks utility ties, so eviction order
            # never depends on dict insertion order.
            victim = min(
                self._learned,
                key=lambda c: (
                    self._hits.get(c, 0.0) / (len(encode_canon(c)) + _COUNT_BYTES),
                    c,
                ),
            )
            del self._learned[victim]
            self._hits.pop(victim, None)
            self.evictions += 1
            if obs.enabled:
                obs.registry.counter(
                    "online_evictions_total",
                    "Learned patterns evicted to stay under budget.",
                ).inc()
            for key in self._hits:
                self._hits[key] *= 0.5
            self._view = None

    @staticmethod
    def _bytes_of(counts: dict[Canon, int]) -> int:
        return sum(
            len(encode_canon(c).encode("utf-8")) + _COUNT_BYTES for c in counts
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def _estimate_tree(self, tree: LabeledTree) -> float:
        estimator = RecursiveDecompositionEstimator(
            self._summary(), voting=self.voting
        )
        # Count a hit for every learned pattern the estimate touches:
        # approximate by crediting the query pattern itself when stored.
        from ..trees.canonical import canon

        key = canon(tree)
        if key in self._learned:
            self._hits[key] = self._hits.get(key, 0.0) + 1.0
        return estimator._estimate_tree(tree)

    def _summary(self) -> LatticeSummary:
        if self._view is None:
            # Base (sizes 1-2) and learned (sizes 3..level) are disjoint
            # by construction, so the monoid's count-add is an overlay.
            merged = DictStore.from_counts(self._base).merge(
                DictStore.from_counts(self._learned)
            )
            self._view = LatticeSummary(
                self.level, merged, complete_sizes=(1, 2)
            )
        return self._view

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def learned_patterns(self) -> int:
        return len(self._learned)

    def byte_size(self) -> int:
        return self._bytes_of(self._base) + self._bytes_of(self._learned)

    def knows(self, query: QueryLike) -> bool:
        """True when the exact pattern is currently stored."""
        from ..trees.canonical import canon

        return canon(coerce_query_tree(query)) in self._learned

    def __repr__(self) -> str:
        return (
            f"WorkloadAwareLattice(level={self.level}, "
            f"learned={self.learned_patterns}, bytes={self.byte_size()}, "
            f"budget={self.budget_bytes})"
        )
