"""Streaming summary maintenance: insert/delete deltas as monoid merges.

:class:`~repro.core.incremental.IncrementalLattice` keeps one mutable
count table exact after every append.  This module re-layers that idea
on the store monoid (:meth:`~repro.store.SummaryStore.merge`): the
summary is a **base** :class:`~repro.core.lattice.LatticeSummary` plus a
**pending** :class:`~repro.store.DictStore` of *signed* deltas.  Every
:meth:`~StreamingSummary.insert` / :meth:`~StreamingSummary.delete`
computes its exact count delta (the incremental layer's three-class
argument, run forward or backward) and folds it into the pending store
with one monoid merge — so a batch of updates composes exactly like
shard stores do in :mod:`repro.mining.sharded`.

Bounded staleness contract
--------------------------
Point lookups (:meth:`~StreamingSummary.count`) are always exact: they
read base + pending.  The materialised :meth:`~StreamingSummary.summary`
snapshot may lag behind by at most ``max_pending`` update operations;
once the pending store has absorbed that many, the next update
compacts automatically (``max_pending=0`` compacts after every update,
i.e. no staleness).  :meth:`~StreamingSummary.summary` with
``fresh=True`` forces a compaction first, and
:meth:`~StreamingSummary.save` always compacts, so persisted summaries
never carry pending deltas — :meth:`~StreamingSummary.restore` reads
the standard versioned summary container straight back.
"""

from __future__ import annotations

import time
from pathlib import Path

from .. import obs
from ..mining.freqt import mine_lattice
from ..mining.sharded import anchored_counts
from ..store.dict_store import DictStore
from ..trees.canonical import Canon
from ..trees.labeled_tree import LabeledTree, TreeBuildError
from ..trees.matching import DocumentIndex
from .incremental import _graft
from .lattice import LatticeSummary

__all__ = ["StreamingSummary", "DEFAULT_MAX_PENDING"]

#: Default staleness bound: pending update operations tolerated before a
#: summary snapshot is recompacted.
DEFAULT_MAX_PENDING = 64


class StreamingSummary:
    """A lattice summary maintained under record inserts *and* deletes.

    Parameters
    ----------
    document:
        The evolving document.  The maintainer takes ownership: mutate
        it only through :meth:`insert` / :meth:`delete` (a delete
        renumbers node ids, so hold on to root-child *positions*, not
        ids).
    level:
        Lattice level ``k``.
    store:
        Backend of the base summary (``"dict"`` / ``"array"``).
    max_pending:
        Staleness bound — see the module docstring.
    """

    def __init__(
        self,
        document: LabeledTree,
        level: int,
        *,
        store: str = "dict",
        max_pending: int = DEFAULT_MAX_PENDING,
        shards: int | None = None,
        workers: int | None = None,
    ) -> None:
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self._document = document
        self.level = level
        self.max_pending = max_pending
        base = LatticeSummary.build(
            document, level, store=store, shards=shards, workers=workers
        )
        if set(base.complete_sizes) != set(range(1, level + 1)):
            # The miner stops at the first empty level and only marks
            # mined levels complete; an empty level makes every deeper
            # level vacuously complete, and exact maintenance preserves
            # completeness, so assert the full range up front.
            base = base.replace_counts(
                dict(base.patterns()), complete_sizes=range(1, level + 1)
            )
        self._base = base
        self._pending = DictStore()
        self._pending_ops = 0
        self._updates = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def document(self) -> LabeledTree:
        return self._document

    @property
    def pending_ops(self) -> int:
        """Update operations folded into the pending store since the
        last compaction (the snapshot's current staleness)."""
        return self._pending_ops

    @property
    def updates(self) -> int:
        """Total inserts + deletes applied since construction."""
        return self._updates

    def count(self, pattern: Canon) -> int:
        """Current exact count of ``pattern`` — never stale (0 if absent)."""
        base = self._base.get(pattern) or 0
        return base + (self._pending.get(pattern) or 0)

    def summary(self, *, fresh: bool = False) -> LatticeSummary:
        """The materialised summary snapshot.

        Stale by at most ``max_pending`` update operations;
        ``fresh=True`` compacts first and is therefore always exact.
        """
        if fresh and self._pending_ops:
            self.compact()
        return self._base

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, record: LabeledTree) -> None:
        """Append ``record`` under the document root; stage its delta.

        The record is copied — the caller's tree is not retained.
        """
        if record.size < 1:
            raise TreeBuildError("cannot insert an empty record")
        started = time.perf_counter()
        before = self._root_anchored()
        _graft(self._document, self._document.root, record)
        delta: dict[Canon, int] = dict(
            mine_lattice(record, self.level).all_patterns()
        )
        self._span_delta(delta, before, sign=1)
        self._apply_delta(delta)
        if obs.enabled:
            self._record_update("insert", record.size, started)

    def delete(self, child_index: int) -> LabeledTree:
        """Remove the ``child_index``-th record under the root; stage its delta.

        The index counts the document root's children left to right
        (the order :meth:`insert` appends in).  Returns a copy of the
        removed record.  Node ids of the remaining document are
        renumbered.
        """
        document = self._document
        children = document.child_ids(document.root)
        if not 0 <= child_index < len(children):
            raise TreeBuildError(
                f"no record at root-child index {child_index} "
                f"(root has {len(children)} children)"
            )
        started = time.perf_counter()
        node = children[child_index]
        record = document.subtree_at(node)
        before = self._root_anchored()
        drop = [node]
        stack = [node]
        while stack:
            for child in document.child_ids(stack.pop()):
                drop.append(child)
                stack.append(child)
        self._document = document.remove_nodes(drop)
        delta = {
            pattern: -count
            for pattern, count in mine_lattice(
                record, self.level
            ).all_patterns().items()
        }
        self._span_delta(delta, before, sign=1)
        self._apply_delta(delta)
        if obs.enabled:
            self._record_update("delete", record.size, started)
        return record

    def compact(self) -> LatticeSummary:
        """Fold the pending deltas into the base summary.

        One monoid application: base counts plus pending deltas, with
        patterns whose count reaches zero dropped.  Order is
        deterministic — the base's insertion order, then pending-only
        patterns in the order their first delta arrived — so compacting
        the same update sequence always yields byte-identical snapshots.
        """
        if self._pending_ops:
            counts: dict[Canon, int] = dict(self._base.patterns())
            for pattern, delta in self._pending.items():
                counts[pattern] = counts.get(pattern, 0) + delta
            self._base = self._base.replace_counts(
                {c: n for c, n in counts.items() if n > 0},
                complete_sizes=self._base.complete_sizes,
            )
            self._pending = DictStore()
            self._pending_ops = 0
            if obs.enabled:
                obs.registry.counter(
                    "streaming_compactions_total",
                    "Pending-delta compactions since process start.",
                ).inc()
        return self._base

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Compact, then persist via :meth:`LatticeSummary.save`.

        The file is the standard versioned summary container — pending
        deltas never reach disk.
        """
        self.compact().save(path)

    @classmethod
    def restore(
        cls,
        path: str | Path,
        document: LabeledTree,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> "StreamingSummary":
        """Resume streaming from a saved summary of ``document``.

        The caller asserts that ``document`` is the tree the summary at
        ``path`` was saved for (the container stores counts, not the
        document); updates applied after restore are exact under that
        assumption.
        """
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        base = LatticeSummary.load(path)
        self = cls.__new__(cls)
        self._document = document
        self.level = base.level
        self.max_pending = max_pending
        self._base = base
        self._pending = DictStore()
        self._pending_ops = 0
        self._updates = 0
        return self

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _root_anchored(self) -> dict[Canon, int]:
        document = self._document
        return anchored_counts(
            DocumentIndex(document), (document.root,), self.level
        )

    def _span_delta(
        self, delta: dict[Canon, int], before: dict[Canon, int], *, sign: int
    ) -> None:
        """Add the spanning-match (class 3) delta against ``before``."""
        after = self._root_anchored()
        for pattern in after.keys() | before.keys():
            change = after.get(pattern, 0) - before.get(pattern, 0)
            if change:
                delta[pattern] = delta.get(pattern, 0) + sign * change

    def _apply_delta(self, delta: dict[Canon, int]) -> None:
        """Fold one update's signed delta into the pending store."""
        step = DictStore.from_counts(
            (pattern, change) for pattern, change in delta.items() if change
        )
        self._pending = self._pending.merge(step)
        self._pending_ops += 1
        self._updates += 1
        if self._pending_ops > self.max_pending:
            self.compact()

    def _record_update(self, kind: str, record_size: int, started: float) -> None:
        if not obs.enabled:  # call sites check too; this is defence in depth
            return
        elapsed = time.perf_counter() - started
        obs.registry.counter(
            "streaming_updates_total",
            "Streaming record updates by kind.",
            labels=("kind",),
        ).inc(kind=kind)
        obs.registry.gauge(
            "streaming_pending_ops",
            "Update deltas pending since the last compaction.",
        ).set(self._pending_ops)
        obs.registry.timer(
            "streaming_update_seconds", "Wall time per streaming update."
        ).observe(elapsed)
        obs.event(
            "streaming_update",
            kind=kind,
            record_size=record_size,
            pending_ops=self._pending_ops,
            document_nodes=self._document.size,
            seconds=round(elapsed, 6),
        )
