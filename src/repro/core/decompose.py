"""Twig decomposition primitives (paper §3.1-§3.3).

Two ways to take a twig apart:

* :func:`leaf_pair_decompositions` — the recursive scheme's step: pick
  two degree-1 nodes ``u, v`` and produce ``T1 = T - u``, ``T2 = T - v``
  and their maximal overlap ``T∩ = T - u - v`` (Lemma 1).
* :func:`fixed_cover` — the fix-sized scheme: cover the twig with exactly
  ``n - k + 1`` subtrees of size ``k`` in canonical pre-order, each new
  block overlapping the covered prefix in a ``(k-1)``-subtree (Lemma 2,
  whose constructive proof is this function).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from .. import obs
from ..trees.canonical import canonical_preorder
from ..trees.labeled_tree import LabeledTree, TreeBuildError

__all__ = [
    "LeafPairSplit",
    "CoverBlock",
    "leaf_pair_decompositions",
    "first_leaf_pair_split",
    "fixed_cover",
]


@dataclass(frozen=True)
class LeafPairSplit:
    """One recursive-decomposition step: ``s(T) ≈ s(t1) * s(t2) / s(common)``."""

    t1: LabeledTree
    t2: LabeledTree
    common: LabeledTree


@dataclass(frozen=True)
class CoverBlock:
    """One block of a fix-sized cover.

    ``overlap`` is the block's intersection with the previously covered
    prefix — always a ``(k-1)``-subtree, or ``None`` for the first block
    (which has no predecessor).
    """

    block: LabeledTree
    overlap: LabeledTree | None


def leaf_pair_decompositions(tree: LabeledTree) -> Iterator[LeafPairSplit]:
    """Yield every leaf-pair decomposition of ``tree``.

    ``tree`` must have at least three nodes, otherwise removing two
    degree-1 nodes would leave nothing.  Each yielded split removes a
    distinct unordered pair of removable nodes; the voting estimator
    averages over all of them, the plain estimator takes the first.
    """
    if tree.size < 3:
        raise TreeBuildError(
            f"cannot leaf-pair decompose a tree of size {tree.size}"
        )
    nodes = tree.removable_nodes()
    for u, v in combinations(nodes, 2):
        if obs.enabled:
            obs.registry.counter(
                "decompose_splits_total",
                "Leaf-pair splits materialised by the decomposers.",
            ).inc()
        yield LeafPairSplit(
            t1=tree.remove_node(u),
            t2=tree.remove_node(v),
            common=tree.remove_nodes((u, v)),
        )


def first_leaf_pair_split(tree: LabeledTree) -> LeafPairSplit:
    """The deterministic first decomposition (non-voting estimator)."""
    return next(iter(leaf_pair_decompositions(tree)))


def fixed_cover(tree: LabeledTree, k: int) -> list[CoverBlock]:
    """Cover ``tree`` with ``size - k + 1`` subtrees of ``k`` nodes.

    Implements the paper's Figure 5.  Nodes are taken in canonical
    pre-order; the first block is the pre-order prefix of ``k`` nodes
    (always a valid subtree), and each subsequent block covers exactly
    one new node ``v`` together with ``k-1`` already-covered nodes chosen
    from ``v``'s ancestor chain first, then nearest covered neighbours.

    Requires ``2 <= k <= tree.size``.
    """
    n = tree.size
    if k < 2:
        raise ValueError("fix-sized covering needs k >= 2")
    if k > n:
        raise ValueError(f"cannot cover a {n}-node tree with {k}-node blocks")

    order = canonical_preorder(tree)
    position = {node: i for i, node in enumerate(order)}

    covered = set(order[:k])
    blocks = [CoverBlock(block=tree.induced_subtree(order[:k]), overlap=None)]

    for v in order[k:]:
        members = {v}
        walk = tree.parent(v)
        while walk != -1 and len(members) < k:
            members.add(walk)
            walk = tree.parent(walk)
        # Too few ancestors: pad with the nearest covered neighbours of
        # the current member set (deterministically, by pre-order rank).
        while len(members) < k:
            frontier = _covered_neighbours(tree, members, covered)
            if not frontier:  # pragma: no cover - impossible: covered >= k
                raise TreeBuildError("covering ran out of adjacent nodes")
            members.add(min(frontier, key=position.__getitem__))
        block = tree.induced_subtree(members)
        overlap = tree.induced_subtree(members - {v})
        covered.add(v)
        blocks.append(CoverBlock(block=block, overlap=overlap))

    if obs.enabled:
        obs.registry.counter(
            "fixed_cover_builds_total",
            "Fix-sized covers derived (cold cover compilations).",
        ).inc()
    return blocks


def _covered_neighbours(
    tree: LabeledTree, members: set[int], covered: set[int]
) -> list[int]:
    """Covered nodes adjacent to ``members`` but not in it."""
    out: list[int] = []
    for node in sorted(members):
        parent = tree.parent(node)
        if parent != -1 and parent in covered and parent not in members:
            out.append(parent)
        for child in tree.child_ids(node):
            if child in covered and child not in members:
                out.append(child)
    return out
