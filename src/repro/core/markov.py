"""Markov path estimator: the special case TreeLattice generalises.

Lemma 4 of the paper shows that on *linear path* queries both
decomposition schemes collapse to the classical ``m``-gram Markov
estimator used by Lore, Markov tables and XPathLearner:

    ŝ(t1/.../tn)  =  s(t1..tm) * Π_{i=2}^{n-m+1}  s(t_i .. t_{i+m-1})
                                                / s(t_i .. t_{i+m-2})

This module implements that closed form directly on top of the lattice
summary (whose path-shaped patterns *are* the Markov statistics).  It is
used by the Lemma 4 equivalence tests and by the path-selectivity
ablation benchmarks; it rejects branching queries by design.
"""

from __future__ import annotations

from .. import obs
from ..trees.labeled_tree import LabeledTree
from .estimator import SelectivityEstimator
from .lattice import LatticeSummary


def _record_gram(outcome: str, labels: list[str]) -> None:
    """Metrics + trace for one m-gram lookup (only called when enabled)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "markov_gram_lookups_total",
        "Markov m-gram path lookups by outcome.",
        labels=("outcome",),
    ).inc(outcome=outcome)
    obs.event(
        "markov_gram_lookup",
        outcome=outcome,
        path="/".join(labels),
        length=len(labels),
    )

__all__ = ["MarkovPathEstimator"]


class MarkovPathEstimator(SelectivityEstimator):
    """Closed-form Markov estimator for linear path queries.

    Parameters
    ----------
    lattice:
        Summary holding path statistics (any :class:`LatticeSummary`;
        paths are just linear patterns).
    order:
        Markov window size ``m``; defaults to the lattice level.
    """

    name = "markov-path"

    def __init__(self, lattice: LatticeSummary, *, order: int | None = None) -> None:
        if order is None:
            order = lattice.level
        if not 2 <= order <= lattice.level:
            raise ValueError(
                f"order must be in [2, {lattice.level}], got {order}"
            )
        self.lattice = lattice
        self.order = order

    def _estimate_tree(self, tree: LabeledTree) -> float:
        if not obs.enabled:
            return self._path_estimate(tree)
        with obs.registry.timer(
            "estimate_seconds", "Per-query estimation wall time."
        ).time():
            return self._path_estimate(tree)

    def _path_estimate(self, tree: LabeledTree) -> float:
        labels = self._path_labels(tree)
        m = self.order
        if len(labels) <= m:
            return float(self._path_count(labels))
        estimate = float(self._path_count(labels[:m]))
        for i in range(1, len(labels) - m + 1):
            window = labels[i : i + m]
            overlap = labels[i : i + m - 1]
            overlap_count = self._path_count(overlap)
            if overlap_count == 0:
                return 0.0
            estimate *= self._path_count(window) / overlap_count
        return estimate

    @staticmethod
    def _path_labels(tree: LabeledTree) -> list[str]:
        labels: list[str] = []
        node = tree.root
        while True:
            labels.append(tree.label(node))
            kids = tree.child_ids(node)
            if not kids:
                return labels
            if len(kids) > 1:
                raise ValueError(
                    "MarkovPathEstimator only handles linear path queries; "
                    "use the decomposition estimators for branching twigs"
                )
            node = kids[0]

    def _path_count(self, labels: list[str]) -> int:
        stored = self.lattice.get(LabeledTree.path(labels))
        if stored is not None:
            if obs.enabled:
                _record_gram("hit", labels)
            return stored
        if self.lattice.is_complete_at(len(labels)):
            if obs.enabled:
                _record_gram("complete_zero", labels)
            return 0
        if obs.enabled:
            _record_gram("pruned_miss", labels)
        raise KeyError(
            f"path {'/'.join(labels)} pruned from an incomplete lattice level; "
            "Markov estimation needs the full path statistics"
        )

    def __repr__(self) -> str:
        return f"MarkovPathEstimator(order={self.order})"
