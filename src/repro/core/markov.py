"""Markov path estimator: the special case TreeLattice generalises.

Lemma 4 of the paper shows that on *linear path* queries both
decomposition schemes collapse to the classical ``m``-gram Markov
estimator used by Lore, Markov tables and XPathLearner:

    ŝ(t1/.../tn)  =  s(t1..tm) * Π_{i=2}^{n-m+1}  s(t_i .. t_{i+m-1})
                                                / s(t_i .. t_{i+m-2})

This module implements that closed form directly on top of the lattice
summary (whose path-shaped patterns *are* the Markov statistics).  It is
used by the Lemma 4 equivalence tests and by the path-selectivity
ablation benchmarks; it rejects branching queries by design.

The first estimate of each path compiles the gram products into a
:class:`~repro.core.plan.GramPlan`; repeated paths replay the plan.
Error cases are never cached: branching queries raise ``ValueError``
before the plan cache is consulted, and a pruned gram raises
``KeyError`` during compilation, leaving no plan behind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .. import obs

if TYPE_CHECKING:
    from ..kernels.program import PlanT
from ..trees.canonical import Canon, PatternInterner
from ..trees.labeled_tree import LabeledTree
from .estimator import SelectivityEstimator
from .lattice import LatticeSummary
from .plan import GramPlan, record_plan_request


def _record_gram(outcome: str, labels: list[str]) -> None:
    """Metrics + trace + span for one m-gram lookup (when enabled)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    obs.registry.counter(
        "markov_gram_lookups_total",
        "Markov m-gram path lookups by outcome.",
        labels=("outcome",),
    ).inc(outcome=outcome)
    path = "/".join(labels)
    obs.event(
        "markov_gram_lookup", outcome=outcome, path=path, length=len(labels)
    )
    obs.span_point(
        "markov_gram_lookup", outcome=outcome, path=path, length=len(labels)
    )


def _path_canon(labels: list[str]) -> Canon:
    """Canonical form of the linear path with these labels."""
    node: Canon = (labels[-1], ())
    for label in reversed(labels[:-1]):
        node = (label, (node,))
    return node


__all__ = ["MarkovPathEstimator"]


class MarkovPathEstimator(SelectivityEstimator):
    """Closed-form Markov estimator for linear path queries.

    Parameters
    ----------
    lattice:
        Summary holding path statistics (any :class:`LatticeSummary`;
        paths are just linear patterns).  Treated as immutable; compiled
        gram plans bake its counts in.
    order:
        Markov window size ``m``; defaults to the lattice level.
    """

    name = "markov-path"

    def __init__(self, lattice: LatticeSummary, *, order: int | None = None) -> None:
        if order is None:
            order = lattice.level
        if not 2 <= order <= lattice.level:
            raise ValueError(
                f"order must be in [2, {lattice.level}], got {order}"
            )
        self.lattice = lattice
        self.order = order
        self._plan_keys = PatternInterner()
        self._plans: dict[int, GramPlan] = {}

    def clear_cache(self) -> None:
        """Drop compiled gram plans."""
        self._plans.clear()
        if self._kernels is not None:
            self._kernels.clear()

    # ------------------------------------------------------------------
    # Kernel batch hooks (see SelectivityEstimator._estimate_trees_kernel)
    # ------------------------------------------------------------------

    supports_kernels = True

    def _kernel_probe(self, tree: LabeledTree) -> tuple[int, "PlanT | None"]:
        # Branching rejection runs on every probe, exactly like the
        # legacy warm path (labels are needed to key the cache anyway).
        labels = self._path_labels(tree)
        pattern_id = self._plan_keys.intern(_path_canon(labels))
        return pattern_id, self._plans.get(pattern_id)

    def _kernel_warm_plans(self) -> Sequence[tuple[int, "PlanT"]]:
        return list(self._plans.items())

    def _note_kernel_hit(self, tree: LabeledTree, plan: "PlanT") -> None:
        if obs.enabled:
            record_plan_request(
                self.name, "hit", len(self._plans), len(self._plan_keys)
            )

    def _estimate_tree(self, tree: LabeledTree) -> float:
        # Branching rejection runs on every call (warm included): the
        # labels are needed to key the plan cache anyway.
        labels = self._path_labels(tree)
        pattern_id = self._plan_keys.intern(_path_canon(labels))
        plan = self._plans.get(pattern_id)
        if plan is not None:
            if not obs.enabled:
                return plan.evaluate()
            record_plan_request(
                self.name, "hit", len(self._plans), len(self._plan_keys)
            )
            with obs.span("estimate", estimator=self.name, plan="hit") as root_span:
                with obs.registry.timer(
                    "estimate_seconds", "Per-query estimation wall time."
                ).time() as frame:
                    value = (
                        plan.evaluate_traced()
                        if obs.span_recording()
                        else plan.evaluate()
                    )
                root_span.set(value=value)
            obs.registry.quantile(
                "estimate_latency_seconds",
                "Per-query estimation latency quantiles.",
            ).observe(frame.elapsed)
            return value
        if not obs.enabled:
            value, plan = self._compile_path(labels)
            self._plans[pattern_id] = plan
            return value
        with obs.span("estimate", estimator=self.name, plan="miss") as root_span:
            with obs.registry.timer(
                "estimate_seconds", "Per-query estimation wall time."
            ).time() as frame:
                value, plan = self._compile_path(labels)
            root_span.set(value=value)
        obs.registry.quantile(
            "estimate_latency_seconds",
            "Per-query estimation latency quantiles.",
        ).observe(frame.elapsed)
        self._plans[pattern_id] = plan
        record_plan_request(
            self.name, "miss", len(self._plans), len(self._plan_keys)
        )
        return value

    def _compile_path(self, labels: list[str]) -> tuple[float, GramPlan]:
        """The original closed form, recording each gram as it goes."""
        m = self.order
        if len(labels) <= m:
            head = self._path_count(labels)
            return float(head), GramPlan(head, (), False)
        head = self._path_count(labels[:m])
        estimate = float(head)
        steps: list[tuple[int, int]] = []
        for i in range(1, len(labels) - m + 1):
            window = labels[i : i + m]
            overlap = labels[i : i + m - 1]
            overlap_count = self._path_count(overlap)
            if overlap_count == 0:
                return 0.0, GramPlan(head, tuple(steps), True)
            window_count = self._path_count(window)
            estimate *= window_count / overlap_count
            steps.append((window_count, overlap_count))
        return estimate, GramPlan(head, tuple(steps), False)

    @staticmethod
    def _path_labels(tree: LabeledTree) -> list[str]:
        labels: list[str] = []
        node = tree.root
        while True:
            labels.append(tree.label(node))
            kids = tree.child_ids(node)
            if not kids:
                return labels
            if len(kids) > 1:
                raise ValueError(
                    "MarkovPathEstimator only handles linear path queries; "
                    "use the decomposition estimators for branching twigs"
                )
            node = kids[0]

    def _path_count(self, labels: list[str]) -> int:
        stored = self.lattice.get(LabeledTree.path(labels))
        if stored is not None:
            if obs.enabled:
                _record_gram("hit", labels)
            return stored
        if self.lattice.is_complete_at(len(labels)):
            if obs.enabled:
                _record_gram("complete_zero", labels)
            return 0
        if obs.enabled:
            _record_gram("pruned_miss", labels)
        raise KeyError(
            f"path {'/'.join(labels)} pruned from an incomplete lattice level; "
            "Markov estimation needs the full path statistics"
        )

    def __repr__(self) -> str:
        return f"MarkovPathEstimator(order={self.order})"
