"""Empirical error profiles for decomposition estimates.

The paper lists "an error bound associated with the estimation" as
future work (§6) and reports only initial progress.  A rigorous
worst-case bound is impossible without distributional assumptions (a
single decomposition step can err arbitrarily when the conditional
independence assumption fails), so this module provides the honest
empirical counterpart:

* calibrate on the summary itself — every stored pattern of size
  ``>= 3`` is re-estimated from *smaller* stored patterns, giving the
  observed distribution of one-step decomposition error ratios
  (``estimate / true``) on exactly the document at hand;
* estimating a twig of size ``n`` with a ``k``-lattice chains
  ``n - k`` decomposition steps, so the per-step ratio quantiles are
  propagated multiplicatively to an interval for the full estimate.

The resulting :class:`ErrorProfile` turns a point estimate into a
``(low, high)`` band whose empirical coverage is what the calibration
measured — no more, no less.  On independence-friendly documents the
band is tight (most one-step ratios are exactly 1); on correlated
documents it widens, which is itself useful diagnostic signal (compare
Figure 10(a): the same documents resist δ-derivable pruning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import obs
from ..trees.canonical import Canon, canon_size
from .estimator import QueryLike, coerce_query_tree
from .lattice import LatticeSummary
from .recursive import RecursiveDecompositionEstimator

__all__ = ["ErrorProfile", "EstimateInterval"]


@dataclass(frozen=True)
class EstimateInterval:
    """A point estimate with an empirical uncertainty band."""

    estimate: float
    low: float
    high: float
    steps: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def relative_width(self) -> float:
        """Band width relative to the estimate (0 for exact lookups)."""
        if self.estimate <= 0:
            return 0.0
        return (self.high - self.low) / self.estimate


class ErrorProfile:
    """Per-step decomposition error ratios calibrated on a summary.

    Parameters
    ----------
    lattice:
        A complete summary (calibration needs true counts).
    coverage:
        Central coverage of the band, e.g. ``0.9`` keeps the 5th-95th
        percentile of observed one-step ratios.
    voting:
        Calibrate (and predict for) the voting estimator.
    """

    def __init__(
        self,
        lattice: LatticeSummary,
        *,
        coverage: float = 0.9,
        voting: bool = False,
    ) -> None:
        if not 0.0 < coverage < 1.0:
            raise ValueError("coverage must be in (0, 1)")
        self.lattice = lattice
        self.coverage = coverage
        self.voting = voting
        self._estimator = RecursiveDecompositionEstimator(lattice, voting=voting)
        self.ratios = self._calibrate()
        if self.ratios:
            tail = (1.0 - coverage) / 2.0
            self.low_ratio = _quantile(self.ratios, tail)
            self.high_ratio = _quantile(self.ratios, 1.0 - tail)
        else:  # degenerate summary: no size >= 3 patterns to calibrate on
            self.low_ratio = 1.0
            self.high_ratio = 1.0
            if obs.enabled:
                obs.registry.counter(
                    "error_profile_uncalibrated_total",
                    "ErrorProfiles built without calibration samples; their "
                    "[1.0, 1.0] bands carry no coverage guarantee.",
                ).inc()
                obs.event(
                    "error_profile_uncalibrated",
                    level=lattice.level,
                    patterns=lattice.num_patterns,
                )

    @property
    def calibrated(self) -> bool:
        """False when no size >= 3 pattern existed to calibrate on.

        An uncalibrated profile degenerates to the ``[1.0, 1.0]`` band:
        every prediction collapses to its point estimate and
        :meth:`EstimateInterval.contains` tells you nothing.  Check this
        before trusting interval coverage.
        """
        return bool(self.ratios)

    def _calibrate(self) -> list[float]:
        """Observed one-step ratios on every stored pattern of size >= 3.

        Each pattern is estimated from a summary *capped one level below
        its size*, so the measurement isolates a single decomposition
        step against exact sub-counts.
        """
        ratios: list[float] = []
        by_size: dict[int, dict[Canon, int]] = {}
        for pattern, count in self.lattice.patterns():
            by_size.setdefault(canon_size(pattern), {})[pattern] = count
        for size in sorted(by_size):
            if size < 3:
                continue
            smaller: dict[Canon, int] = {}
            for s in range(1, size):
                smaller.update(by_size.get(s, {}))
            capped = LatticeSummary(
                max(2, size - 1), smaller, complete_sizes=range(1, size)
            )
            estimator = RecursiveDecompositionEstimator(capped, voting=self.voting)
            for pattern, true_count in sorted(by_size[size].items()):
                estimate = estimator.estimate(pattern)
                ratio = estimate / true_count
                ratios.append(ratio)
                if obs.enabled and ratio > 0.0:
                    # q-error is the symmetric over/under-estimation
                    # factor (>= 1); its quantiles are the calibration
                    # summary the serving layer exports.
                    obs.registry.quantile(
                        "calibration_qerror",
                        "One-step q-error (max(ratio, 1/ratio)) observed "
                        "during error-profile calibration.",
                    ).observe(max(ratio, 1.0 / ratio))
        return ratios

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, query: QueryLike) -> EstimateInterval:
        """Point estimate plus the empirically calibrated band."""
        tree = coerce_query_tree(query)
        estimate = self._estimator.estimate(tree)
        steps = max(0, tree.size - self.lattice.level)
        if steps == 0 or estimate <= 0.0:
            return EstimateInterval(estimate, estimate, estimate, steps)
        # Multiplicative propagation: each chained step contributes an
        # independent ratio draw, so the band endpoints compound.
        low = estimate * self.low_ratio**steps
        high = estimate * self.high_ratio**steps
        return EstimateInterval(estimate, min(low, high), max(low, high), steps)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def samples(self) -> int:
        return len(self.ratios)

    def geometric_mean_ratio(self) -> float:
        """Bias diagnostic: 1.0 means unbiased one-step estimation."""
        positives = [r for r in self.ratios if r > 0]
        if not positives:
            return 1.0
        return math.exp(sum(math.log(r) for r in positives) / len(positives))

    def __repr__(self) -> str:
        return (
            f"ErrorProfile(samples={self.samples}, "
            f"band=[{self.low_ratio:.3f}, {self.high_ratio:.3f}] "
            f"@ {self.coverage:.0%})"
        )


def _quantile(values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an unsorted sample."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight
