"""Summary catalog: manage lattice summaries for a set of documents.

The deployment surface a query optimizer actually talks to.  A
:class:`SummaryCatalog` owns a directory of persisted summaries, one per
registered document, and answers selectivity estimates by name:

* :meth:`register` — mine (or re-mine) a document into the catalog,
  optionally δ-pruned to fit a per-summary byte budget;
* :meth:`estimate` / :meth:`explain` — estimation against a registered
  summary, with the estimator family chosen per call;
* summaries persist via the lattice text format, so a catalog directory
  survives process restarts and can be shipped to the node that plans
  queries without shipping the documents.

This is deliberately thin glue — every capability is the core library's
— but it pins down the multi-document API (naming, persistence layout,
staleness) that downstream users otherwise each reinvent.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..trees.labeled_tree import LabeledTree
from ..trees.twig import TwigQuery
from .estimator import QueryLike, SelectivityEstimator
from .explain import Explanation, explain
from .fixed import FixedDecompositionEstimator
from .lattice import LatticeSummary
from .markov import MarkovPathEstimator
from .pruning import prune_derivable
from .recursive import RecursiveDecompositionEstimator

__all__ = ["SummaryCatalog", "CatalogError"]

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class CatalogError(KeyError):
    """Raised for unknown catalog entries or invalid names."""


class SummaryCatalog:
    """A named collection of lattice summaries backed by a directory.

    Parameters
    ----------
    directory:
        Where summaries are persisted (created if missing).  Pass
        ``None`` for a purely in-memory catalog.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._summaries: dict[str, LatticeSummary] = {}
        if self.directory is not None:
            for path in sorted(self.directory.glob("*.lattice")):
                self._summaries[path.stem] = LatticeSummary.load(path)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        document: LabeledTree,
        *,
        level: int = 4,
        budget_bytes: int | None = None,
        voting: bool = True,
    ) -> LatticeSummary:
        """Mine ``document`` and store its summary under ``name``.

        When ``budget_bytes`` is given and the full summary exceeds it,
        δ-derivable pruning is applied with increasing δ (0, then 5%
        steps) until the summary fits; the lossless δ=0 pass is always
        tried first.  Raises :class:`ValueError` when even heavy pruning
        cannot fit the budget.
        """
        self._check_name(name)
        summary = LatticeSummary.build(document, level)
        if budget_bytes is not None and summary.byte_size() > budget_bytes:
            summary = self._fit_to_budget(summary, budget_bytes, voting)
        self._summaries[name] = summary
        self._persist(name, summary)
        return summary

    @staticmethod
    def _fit_to_budget(
        summary: LatticeSummary, budget_bytes: int, voting: bool
    ) -> LatticeSummary:
        pruned = summary
        for delta in (0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50):
            pruned = prune_derivable(summary, delta, voting=voting)
            if pruned.byte_size() <= budget_bytes:
                return pruned
        raise ValueError(
            f"summary cannot be pruned into {budget_bytes} bytes "
            f"(delta=0.5 still needs {pruned.byte_size()})"
        )

    def publish(self, name: str, summary: LatticeSummary) -> None:
        """Store a pre-built summary under ``name`` (and persist it).

        The streaming-ingest path: an :class:`IncrementalLattice` (or any
        other producer) snapshots its summary and publishes it here for
        planners to consume.
        """
        self._check_name(name)
        self._summaries[name] = summary
        self._persist(name, summary)

    def forget(self, name: str) -> None:
        """Remove a summary from the catalog (and its persisted file)."""
        self._require(name)
        del self._summaries[name]
        if self.directory is not None:
            path = self._path(name)
            if path.exists():
                path.unlink()

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------

    def estimate(
        self,
        name: str,
        query: TwigQuery | str,
        *,
        estimator: str = "voting",
    ) -> float:
        """Estimate a twig against the named summary.

        ``estimator`` ∈ {"recursive", "voting", "fixed", "markov"}.
        """
        return self._estimator(name, estimator).estimate(query)

    def estimate_count(
        self, name: str, query: TwigQuery | str, *, estimator: str = "voting"
    ) -> int:
        return self._estimator(name, estimator).estimate_count(query)

    def explain(
        self, name: str, query: QueryLike, *, voting: bool = True
    ) -> Explanation:
        """Decomposition trace of an estimate against the named summary."""
        return explain(self._require(name), query, voting=voting)

    def _estimator(self, name: str, kind: str) -> SelectivityEstimator:
        summary = self._require(name)
        if kind == "recursive":
            return RecursiveDecompositionEstimator(summary)
        if kind == "voting":
            return RecursiveDecompositionEstimator(summary, voting=True)
        if kind == "fixed":
            return FixedDecompositionEstimator(summary)
        if kind == "markov":
            return MarkovPathEstimator(summary)
        raise CatalogError(f"unknown estimator kind: {kind!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._summaries)

    def summary(self, name: str) -> LatticeSummary:
        return self._require(name)

    def __contains__(self, name: str) -> bool:
        return name in self._summaries

    def __len__(self) -> int:
        return len(self._summaries)

    def describe(self) -> list[dict[str, object]]:
        """One metadata row per entry (what a SHOW CATALOG would print)."""
        rows: list[dict[str, object]] = []
        for name in self.names():
            summary = self._summaries[name]
            rows.append(
                {
                    "name": name,
                    "level": summary.level,
                    "patterns": summary.num_patterns,
                    "bytes": summary.byte_size(),
                    "pruned": not summary.is_complete_at(summary.level),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _path(self, name: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{name}.lattice"

    def _persist(self, name: str, summary: LatticeSummary) -> None:
        if self.directory is not None:
            summary.save(self._path(name))

    def _require(self, name: str) -> LatticeSummary:
        got = self._summaries.get(name)
        if got is None:
            known = ", ".join(self.names()) or "(empty catalog)"
            raise CatalogError(f"no summary named {name!r}; known: {known}")
        return got

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise CatalogError(
                f"invalid catalog name {name!r} (use letters, digits, . _ -)"
            )

    def __repr__(self) -> str:
        return f"SummaryCatalog(entries={len(self)}, directory={self.directory})"
