"""δ-derivable pattern pruning (paper §4.3, Definition 2, Figure 6).

A stored pattern is *δ-derivable* when the count TreeLattice would
estimate for it from the smaller retained patterns is within a relative
error tolerance ``δ`` of its true count.  Storing such a pattern buys
nothing — the estimator reconstructs it — so it can be dropped, freeing
summary space for non-derivable patterns (Lemma 5: with ``δ = 0`` the
estimates are unchanged on occurring queries).

The pruning pass mirrors Figure 6: initialise the compressed summary
with all 1- and 2-subtree patterns, then walk levels ``3..k`` in order,
keeping only the patterns whose estimate from the summary built *so far*
misses the true count by more than ``δ``.
"""

from __future__ import annotations

from .. import obs
from ..trees.canonical import Canon, canon_size, encode_canon
from .lattice import LatticeSummary
from .recursive import RecursiveDecompositionEstimator

__all__ = ["prune_derivable", "PruningReport", "pruning_report"]

# Slack absorbing float round-off so exactly-derivable patterns pass the
# delta = 0 test despite the estimate being computed in floating point.
_FLOAT_SLACK = 1e-9


def prune_derivable(
    lattice: LatticeSummary, delta: float = 0.0, *, voting: bool = False
) -> LatticeSummary:
    """Return a copy of ``lattice`` with δ-derivable patterns removed.

    Parameters
    ----------
    lattice:
        A complete summary (levels ``1..k`` all present).
    delta:
        Relative error tolerance as a fraction (``0.1`` keeps a pattern
        only when the estimate misses by more than 10%).  ``0.0`` is the
        lossless pruning of Lemma 5.
    voting:
        Whether the estimator used to test derivability averages over
        all decompositions (must match the estimator that will consume
        the pruned summary for Lemma 5 to hold exactly).
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")

    kept: dict[Canon, int] = {
        c: n for c, n in lattice.patterns() if canon_size(c) <= 2
    }
    for size in range(3, lattice.level + 1):
        interim = lattice.replace_counts(kept, complete_sizes=(1, 2))
        estimator = RecursiveDecompositionEstimator(interim, voting=voting)
        for pattern, true_count in sorted(lattice.patterns_of_size(size).items()):
            estimate = estimator.estimate(pattern)
            error = abs(true_count - estimate) / true_count
            derivable = error <= delta + _FLOAT_SLACK
            if not derivable:
                kept[pattern] = true_count
            if obs.enabled:
                _record_decision(pattern, size, derivable, error)
    return lattice.replace_counts(kept, complete_sizes=(1, 2))


def _record_decision(
    pattern: Canon, size: int, derivable: bool, error: float
) -> None:
    """Metrics + trace for one keep/drop verdict (only when enabled)."""
    if not obs.enabled:  # call sites check too; this is defence in depth
        return
    decision = "dropped" if derivable else "kept"
    obs.registry.counter(
        "prune_decisions_total",
        "δ-derivability verdicts per level.",
        labels=("size", "decision"),
    ).inc(size=size, decision=decision)
    obs.event(
        "prune_decision",
        pattern=encode_canon(pattern),
        size=size,
        decision=decision,
        error=round(error, 9),
    )


class PruningReport:
    """Before/after sizes of a pruning pass (Figure 10a/10c reporting)."""

    __slots__ = (
        "delta",
        "patterns_before",
        "patterns_after",
        "bytes_before",
        "bytes_after",
    )

    def __init__(
        self, delta: float, before: LatticeSummary, after: LatticeSummary
    ) -> None:
        self.delta = delta
        self.patterns_before = before.num_patterns
        self.patterns_after = after.num_patterns
        self.bytes_before = before.byte_size()
        self.bytes_after = after.byte_size()

    @property
    def patterns_removed(self) -> int:
        return self.patterns_before - self.patterns_after

    @property
    def space_saving(self) -> float:
        """Fraction of summary bytes recovered by pruning."""
        if self.bytes_before == 0:
            return 0.0
        return 1.0 - self.bytes_after / self.bytes_before

    def __repr__(self) -> str:
        return (
            f"PruningReport(delta={self.delta}, "
            f"patterns {self.patterns_before}->{self.patterns_after}, "
            f"bytes {self.bytes_before}->{self.bytes_after})"
        )


def pruning_report(
    lattice: LatticeSummary, delta: float = 0.0, *, voting: bool = False
) -> tuple[LatticeSummary, PruningReport]:
    """Prune and report in one step."""
    pruned = prune_derivable(lattice, delta, voting=voting)
    return pruned, PruningReport(delta, lattice, pruned)
