"""TreeLattice: decomposition-based selectivity estimation for XML twig queries.

A full reproduction of *"A Decomposition-Based Probabilistic Framework
for Estimating the Selectivity of XML Twig Queries"* (Wang, Jin,
Parthasarathy; EDBT 2006): the lattice summary built by level-wise
frequent-tree mining, the recursive and fix-sized decomposition
estimators (with voting), δ-derivable pruning, the Markov path special
case, the TreeSketches comparator, dataset stand-ins, workload
generation, and the full experiment harness.

Quickstart::

    from repro import LabeledTree, TwigQuery, build_lattice
    from repro import RecursiveDecompositionEstimator, count_matches

    doc = LabeledTree.from_nested(
        ("site", [("people", [("person", ["name", "address"])])])
    )
    lattice = build_lattice(doc, level=3)
    estimator = RecursiveDecompositionEstimator(lattice, voting=True)
    query = TwigQuery.parse("/people/person[name][address]")
    print(estimator.estimate(query), count_matches(query.tree, doc))

See README.md for the architecture overview and DESIGN.md for the paper
mapping.
"""

from . import obs
from .baselines import CorrelatedPathTree, MarkovTable, PathTree, TreeSketch, XSketch
from .core import (
    ErrorProfile,
    EstimateInterval,
    Explanation,
    FixedDecompositionEstimator,
    IncrementalLattice,
    LatticeSummary,
    MarkovPathEstimator,
    PruningReport,
    RecursiveDecompositionEstimator,
    SelectivityEstimator,
    StreamingSummary,
    WorkloadAwareLattice,
    build_lattice,
    explain,
    explanation_from_spans,
    first_leaf_pair_split,
    fixed_cover,
    leaf_pair_decompositions,
    prune_derivable,
    pruning_report,
)
from .trees.values import tree_from_xml_with_values, value_twig
from .trees.histograms import RangeHistogram, tree_from_xml_with_ranges
from .core.catalog import SummaryCatalog
from .trees.twigjoin import match_candidates
from .trees.twigstack import TwigStackJoin
from .datasets import generate_treebank
from .datasets import (
    DocumentGenerator,
    Schema,
    generate_dataset,
    generate_imdb,
    generate_nasa,
    generate_psd,
    generate_xmark,
)
from .mining import (
    MiningResult,
    mine_lattice,
    mine_lattice_sharded,
    pattern_counts_by_level,
)
from .resilience import ChunkFailureError, RetryBudgetExhausted, RetryPolicy
from .store import (
    ArrayStore,
    ChecksumMismatch,
    DictStore,
    MergeError,
    StoreError,
    StorePayloadError,
    SummaryStore,
    TruncatedPayload,
    UnknownBackendError,
    UnsupportedVersion,
    make_store,
)
from .trees import (
    DocumentIndex,
    PatternInterner,
    PathJoin,
    enumerate_matches,
    LabeledTree,
    TreeBuildError,
    TwigParseError,
    TwigQuery,
    canon,
    count_matches,
    count_matches_descendant,
    decode_tree,
    encode_tree,
    tree_from_xml,
    tree_from_xml_file,
    tree_to_xml,
)
from .workload import (
    EstimatorEvaluation,
    QueryWorkload,
    absolute_relative_error,
    error_cdf,
    evaluate_estimator,
    negative_workload,
    positive_workloads,
    sanity_bound,
)

__version__ = "1.0.0"

__all__ = [
    # observability
    "obs",
    # trees
    "LabeledTree",
    "TreeBuildError",
    "TwigQuery",
    "TwigParseError",
    "DocumentIndex",
    "canon",
    "count_matches",
    "count_matches_descendant",
    "encode_tree",
    "decode_tree",
    "tree_from_xml",
    "tree_from_xml_file",
    "tree_to_xml",
    # mining
    "MiningResult",
    "mine_lattice",
    "mine_lattice_sharded",
    "pattern_counts_by_level",
    # store
    "SummaryStore",
    "DictStore",
    "ArrayStore",
    "make_store",
    "PatternInterner",
    "StoreError",
    "StorePayloadError",
    "TruncatedPayload",
    "ChecksumMismatch",
    "UnsupportedVersion",
    "UnknownBackendError",
    "MergeError",
    # resilience (policy surface; injection hooks stay in repro.resilience)
    "RetryPolicy",
    "ChunkFailureError",
    "RetryBudgetExhausted",
    # core
    "LatticeSummary",
    "build_lattice",
    "SelectivityEstimator",
    "RecursiveDecompositionEstimator",
    "FixedDecompositionEstimator",
    "MarkovPathEstimator",
    "leaf_pair_decompositions",
    "first_leaf_pair_split",
    "fixed_cover",
    "prune_derivable",
    "pruning_report",
    "PruningReport",
    "Explanation",
    "explain",
    "explanation_from_spans",
    "ErrorProfile",
    "EstimateInterval",
    "IncrementalLattice",
    "StreamingSummary",
    "tree_from_xml_with_values",
    "value_twig",
    "RangeHistogram",
    "tree_from_xml_with_ranges",
    "SummaryCatalog",
    "match_candidates",
    "TwigStackJoin",
    "generate_treebank",
    # baselines
    "TreeSketch",
    "MarkovTable",
    "PathTree",
    "CorrelatedPathTree",
    "XSketch",
    "WorkloadAwareLattice",
    "PathJoin",
    "enumerate_matches",
    # datasets
    "Schema",
    "DocumentGenerator",
    "generate_dataset",
    "generate_nasa",
    "generate_imdb",
    "generate_psd",
    "generate_xmark",
    # workload
    "QueryWorkload",
    "positive_workloads",
    "negative_workload",
    "EstimatorEvaluation",
    "evaluate_estimator",
    "absolute_relative_error",
    "error_cdf",
    "sanity_bound",
    "__version__",
]
