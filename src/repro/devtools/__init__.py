"""Developer tooling for the TreeLattice reproduction.

This package carries the project's static-analysis gates — tools that
run on the *source* of the library rather than as part of it:

:mod:`repro.devtools.lint`
    A dependency-free AST lint engine with project-specific checkers
    that encode the paper's structural invariants (immutable query
    trees, opaque canonical encodings, guarded observability calls, …).
    Run it as ``python -m repro.devtools.lint <paths...>``.

Nothing in here is imported by the library at runtime; ``repro``
itself never depends on ``repro.devtools``.
"""

from __future__ import annotations

__all__: list[str] = []
