"""``--changed`` mode: lint only files differing from the merge base.

Pre-commit wants sub-second feedback, so instead of the whole tree we
lint the Python files that differ from ``git merge-base HEAD
origin/main`` (falling back to a local ``main`` when no remote-tracking
ref exists) plus untracked files.  The whole-program model still loads
the changed files' *entire* enclosing packages, so cross-module
resolution keeps working on a partial lint.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

__all__ = ["ChangedModeError", "changed_python_files"]

_BASE_CANDIDATES = ("origin/main", "main")


class ChangedModeError(RuntimeError):
    """git could not answer; the caller should exit with a usage error."""


def _git(args: list[str], cwd: Path) -> str:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=False,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ChangedModeError(f"git {args[0]} failed: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        raise ChangedModeError(f"git {' '.join(args)} failed: {detail}")
    return proc.stdout


def _merge_base(cwd: Path) -> str:
    last_error: ChangedModeError | None = None
    for candidate in _BASE_CANDIDATES:
        try:
            return _git(["merge-base", "HEAD", candidate], cwd).strip()
        except ChangedModeError as exc:
            last_error = exc
    raise ChangedModeError(
        "cannot find a merge base against origin/main or main"
        + (f" ({last_error})" if last_error else "")
    )


def changed_python_files(cwd: Path | str = ".") -> list[Path]:
    """Python files changed since the merge base, plus untracked ones.

    Paths are returned relative to ``cwd`` (git's own convention is
    repo-root-relative; we ask git to re-root them).  Files deleted in
    the working tree are excluded.  Raises :class:`ChangedModeError`
    when git is unavailable or the merge base cannot be determined.
    """
    root = Path(cwd)
    base = _merge_base(root)
    diff = _git(["diff", "--name-only", "--relative", base, "--", "*.py"], root)
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard", "--", "*.py"], root
    )
    seen: dict[Path, None] = {}
    for line in (*diff.splitlines(), *untracked.splitlines()):
        name = line.strip()
        if not name or not name.endswith(".py"):
            continue
        path = root / name
        if path.is_file():
            seen.setdefault(path, None)
    return sorted(seen)
