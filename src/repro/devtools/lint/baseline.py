"""Findings baseline: land strict rules without blocking on old debt.

A baseline file (conventionally ``lint-baseline.json``) records known
findings together with a written justification.  The CLI subtracts
baselined findings from a run, so new rules gate *new* code immediately
while the accepted exceptions stay documented in review-able form.

Matching is on ``(path, rule, message)`` — line numbers shift too often
to key on, but they are kept in the file for human navigation.  Each
entry is consumed at most once per run (two identical violations need
two entries), and entries that no longer match anything are reported as
**stale** so the baseline shrinks as debt is paid down
(``--fail-stale`` turns that into a CI gate).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .engine import Finding

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

_FORMAT_VERSION = 1
_DEFAULT_JUSTIFICATION = "TODO: justify this accepted finding"


class BaselineError(ValueError):
    """The baseline file exists but cannot be understood."""


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, with the reason it is accepted."""

    rule: str
    path: str
    message: str
    line: int = 0
    justification: str = _DEFAULT_JUSTIFICATION

    @property
    def key(self) -> tuple[str, str, str]:
        return (_normalise(self.path), self.rule, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "justification": self.justification,
        }


def _normalise(path: str) -> str:
    return Path(path).as_posix()


def _entry_key(finding: Finding) -> tuple[str, str, str]:
    return (_normalise(finding.path), finding.rule, finding.message)


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Read a baseline file; raises :class:`BaselineError` on bad shape."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise BaselineError(f"baseline {path} has no 'entries' list")
    entries_raw = payload["entries"]
    if not isinstance(entries_raw, list):
        raise BaselineError(f"baseline {path} has no 'entries' list")
    entries: list[BaselineEntry] = []
    for raw in entries_raw:
        if not isinstance(raw, dict):
            raise BaselineError(f"baseline {path}: entry is not an object")
        try:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    line=int(raw.get("line", 0)),
                    justification=str(raw.get("justification", _DEFAULT_JUSTIFICATION)),
                )
            )
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path}: entry missing required field {exc}"
            ) from exc
    return entries


def write_baseline(
    path: Path, findings: list[Finding], previous: list[BaselineEntry] | None = None
) -> list[BaselineEntry]:
    """Write ``findings`` as the new baseline, keeping old justifications.

    Entries whose ``(path, rule, message)`` key already existed inherit
    the written justification; genuinely new entries get a TODO marker
    that review is expected to replace.  Returns what was written.
    """
    inherited: dict[tuple[str, str, str], list[str]] = {}
    for entry in previous or []:
        inherited.setdefault(entry.key, []).append(entry.justification)
    entries: list[BaselineEntry] = []
    for finding in sorted(findings):
        key = _entry_key(finding)
        pool = inherited.get(key)
        justification = pool.pop(0) if pool else _DEFAULT_JUSTIFICATION
        entries.append(
            BaselineEntry(
                rule=finding.rule,
                path=_normalise(finding.path),
                message=finding.message,
                line=finding.line,
                justification=justification,
            )
        )
    payload = {
        "version": _FORMAT_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Subtract baselined findings.

    Returns ``(new_findings, stale_entries)`` — findings not covered by
    the baseline, and entries that matched nothing this run.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for entry in entries:
        budget[entry.key] = budget.get(entry.key, 0) + 1
    new_findings: list[Finding] = []
    for finding in findings:
        key = _entry_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new_findings.append(finding)
    stale: list[BaselineEntry] = []
    remaining = dict(budget)
    for entry in entries:
        if remaining.get(entry.key, 0) > 0:
            remaining[entry.key] -= 1
            stale.append(entry)
    return new_findings, stale
