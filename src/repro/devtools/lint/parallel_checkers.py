"""Parallel-determinism checker suite: purity, pickling, merge order.

The paper reproduction holds one invariant the test suite can only
sample: serial and process-pool runs are bit-identical — counts *and*
dict order.  These checkers machine-check the three ways parallel code
breaks that promise, using the whole-program model
(:mod:`~repro.devtools.lint.project`) and the call graph
(:mod:`~repro.devtools.lint.callgraph`) instead of name heuristics:

``worker-purity``
    Any function reachable from an executor submission site must not
    write module/class globals (pool initializers are the sanctioned
    exception — installing per-process state is their job), must not
    call wall-clock/entropy sources (``random.*``, ``uuid.*``,
    ``secrets.*``, ``time.time``, ``datetime.now``, ``os.environ``,
    ``os.urandom`` — monotonic clocks like ``perf_counter`` stay legal:
    they feed telemetry, which merges deterministically), and must not
    iterate a ``set``/``frozenset`` without ``sorted(...)``.
``pickle-safety``
    Objects crossing a process-pool boundary must not carry lambdas,
    locally-defined functions/classes, open file handles, or
    generators; thread pools are exempt (nothing pickles).
``order-discipline``
    Results must be consumed in submission order: flag
    ``as_completed`` consumption loops (with a sharper message when a
    telemetry merge happens inside one, per the PR 6 contract) and
    ``dict.update`` calls fed from unordered sets.

All three stay silent when resolution fails — a missed exotic call is
cheaper than drowning the build in false positives.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable, ClassVar, Iterator

from .callgraph import CallGraph, SubmissionSite, callgraph_for
from .engine import Checker, register
from .project import ClassInfo, FunctionInfo, ModuleInfo, ProjectModel

__all__ = [
    "WorkerAnalysis",
    "worker_analysis_for",
    "WorkerPurityChecker",
    "PickleSafetyChecker",
    "OrderDisciplineChecker",
]

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef
_AnnotationProbe = Callable[[ast.expr], bool]

#: External call targets that make worker output depend on anything but
#: the inputs.  Exact matches.
_FORBIDDEN_CALLS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "os.urandom": "draws entropy",
    "os.getenv": "reads the process environment",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
}

#: Seeded constructors are fine — a ``random.Random(seed)`` stream is
#: deterministic; the module-level functions share hidden global state.
_ALLOWED_RANDOM = {"random.Random", "random.SystemRandom"}

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "sort",
    "reverse",
}


def _forbidden_call_reason(target: str) -> str | None:
    """Why calling external ``target`` breaks worker determinism."""
    reason = _FORBIDDEN_CALLS.get(target)
    if reason is not None:
        return reason
    if target.startswith("random.") and target not in _ALLOWED_RANDOM:
        return "draws from the process-global random generator"
    if target == "uuid" or target.startswith("uuid."):
        return "generates process-unique ids"
    if target.startswith("secrets."):
        return "draws entropy"
    return None


# ----------------------------------------------------------------------
# Worker reachability (memoised per project model)
# ----------------------------------------------------------------------


@dataclasses.dataclass
class WorkerAnalysis:
    """Which functions can run inside a worker, and via which entry."""

    graph: CallGraph
    #: function ident -> task-submission root that reaches it.
    task_origin: dict[str, str]
    #: function ident -> pool-initializer root that reaches it.
    init_origin: dict[str, str]

    def origin(self, ident: str) -> str | None:
        """Worker entry-point ident that first reaches ``ident``."""
        return self.task_origin.get(ident) or self.init_origin.get(ident)

    def is_worker(self, ident: str) -> bool:
        return ident in self.task_origin or ident in self.init_origin

    def initializer_only(self, ident: str) -> bool:
        """Reachable solely through ``initializer=`` roots.

        Installing per-process state is exactly what an initializer is
        for, so these functions are exempt from the global-write check
        (but not from the nondeterminism or set-iteration checks).
        """
        return ident in self.init_origin and ident not in self.task_origin


def build_worker_analysis(project: ProjectModel) -> WorkerAnalysis:
    graph = callgraph_for(project)
    task_roots: dict[str, None] = {}
    init_roots: dict[str, None] = {}
    for site in graph.sites:
        if site.target is None:
            continue
        if site.kind == "initializer":
            init_roots.setdefault(site.target.ident, None)
        else:
            task_roots.setdefault(site.target.ident, None)
    return WorkerAnalysis(
        graph=graph,
        task_origin=graph.reachable(list(task_roots)),
        init_origin=graph.reachable(list(init_roots)),
    )


def worker_analysis_for(project: ProjectModel) -> WorkerAnalysis:
    analysis = project.analysis("worker-analysis", build_worker_analysis)
    assert isinstance(analysis, WorkerAnalysis)
    return analysis


def _root_label(analysis: WorkerAnalysis, ident: str) -> str:
    """Human-readable worker entry name for messages."""
    root = analysis.origin(ident)
    if root is None:
        return "an executor submission"
    module, _, qualname = root.partition(":")
    return f"worker entry '{module}.{qualname}'"


def _module_functions(module: ModuleInfo) -> Iterator[FunctionInfo]:
    yield from module.functions.values()
    for cls in module.classes.values():
        yield from cls.methods.values()


# ----------------------------------------------------------------------
# Conservative expression typing shared by the checkers
# ----------------------------------------------------------------------


class _ExprTypes:
    """Answers "is this expression a set / a dict" from static tables."""

    def __init__(
        self,
        project: ProjectModel,
        module: ModuleInfo,
        function: FunctionInfo | None,
    ) -> None:
        self.project = project
        self.module = module
        self.function = function
        self.owner: ClassInfo | None = (
            module.classes.get(function.owner)
            if function is not None and function.owner is not None
            else None
        )
        #: local name -> annotation expr (params, AnnAssign).
        self.local_annotations: dict[str, ast.expr] = {}
        #: local name -> last assigned value expr.
        self.local_values: dict[str, ast.expr] = {}
        #: every name bound locally (shadows module globals).
        self.local_names: set[str] = set()
        if function is not None:
            self._seed(function.node)

    def _seed(self, node: _FunctionNode) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.local_names.add(arg.arg)
            if arg.annotation is not None:
                self.local_annotations[arg.arg] = arg.annotation
        if args.vararg is not None:
            self.local_names.add(args.vararg.arg)
        if args.kwarg is not None:
            self.local_names.add(args.kwarg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self.local_names.add(name_node.id)
                            self.local_values.setdefault(name_node.id, sub.value)
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                self.local_names.add(sub.target.id)
                self.local_annotations[sub.target.id] = sub.annotation
                if sub.value is not None:
                    self.local_values.setdefault(sub.target.id, sub.value)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(sub.target):
                    if isinstance(name_node, ast.Name):
                        self.local_names.add(name_node.id)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is not None:
                        for name_node in ast.walk(item.optional_vars):
                            if isinstance(name_node, ast.Name):
                                self.local_names.add(name_node.id)
            elif isinstance(sub, ast.comprehension):
                for name_node in ast.walk(sub.target):
                    if isinstance(name_node, ast.Name):
                        self.local_names.add(name_node.id)

    def is_shadowed(self, name: str) -> bool:
        return name in self.local_names

    # -- set-ness ------------------------------------------------------

    def is_set(self, expr: ast.expr, _depth: int = 0) -> bool:
        if _depth > 4:
            return False
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return not self.is_shadowed(func.id)
            # ``a.union(b)`` / ``a.intersection(b)`` on a known set.
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("union", "intersection", "difference", "symmetric_difference", "copy")
            ):
                return self.is_set(func.value, _depth + 1)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(expr.left, _depth + 1) or self.is_set(expr.right, _depth + 1)
        if isinstance(expr, ast.Name):
            annotation = self.local_annotations.get(expr.id)
            if annotation is not None:
                return self.project.annotation_is_set(annotation)
            value = self.local_values.get(expr.id)
            if value is not None and value is not expr:
                return self.is_set(value, _depth + 1)
            if not self.is_shadowed(expr.id):
                return self._module_var_is(expr.id, self.project.annotation_is_set)
            return False
        if isinstance(expr, ast.Attribute):
            return self._attr_is(expr, self.project.annotation_is_set)
        return False

    # -- dict-ness -----------------------------------------------------

    def is_dict(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "dict":
                return not self.is_shadowed(func.id)
            return False
        if isinstance(expr, ast.Name):
            annotation = self.local_annotations.get(expr.id)
            if annotation is not None:
                return self.project.annotation_is_dict(annotation)
            value = self.local_values.get(expr.id)
            if value is not None and value is not expr:
                return self.is_dict(value)
            if not self.is_shadowed(expr.id):
                return self._module_var_is(expr.id, self.project.annotation_is_dict)
            return False
        if isinstance(expr, ast.Attribute):
            return self._attr_is(expr, self.project.annotation_is_dict)
        return False

    # -- shared lookups ------------------------------------------------

    def _module_var_is(self, name: str, probe: _AnnotationProbe) -> bool:
        annotation = self.module.var_annotations.get(name)
        if annotation is not None:
            return probe(annotation)
        return False

    def _attr_is(self, expr: ast.Attribute, probe: _AnnotationProbe) -> bool:
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.owner is not None
        ):
            annotation = self.owner.attr_annotations.get(expr.attr)
            if annotation is not None:
                return probe(annotation)
            return False
        resolved = self.project.resolve_expr(self.module, expr)
        if resolved is not None and resolved.kind == "variable":
            owner, _, attr = resolved.qualname.rpartition(".")
            target_module = self.project.modules.get(resolved.module)
            if target_module is None:
                return False
            if owner:
                cls = target_module.classes.get(owner)
                annotation = cls.attr_annotations.get(attr) if cls is not None else None
            else:
                annotation = target_module.var_annotations.get(resolved.qualname)
            if annotation is not None:
                return probe(annotation)
        return False


# ----------------------------------------------------------------------
# Shared base: project checkers scoped to production code
# ----------------------------------------------------------------------


class _ProjectChecker(Checker):
    """Base for the suite: needs the model, skips test/bench trees."""

    requires_project: ClassVar[bool] = True

    @classmethod
    def applies_to(cls, path: str) -> bool:
        # Tests and benchmarks exercise executors on purpose (seeded
        # violations, scaling rigs); the contract protects `src/repro`.
        normalized = path.replace("\\", "/")
        parts = normalized.split("/")
        filename = parts[-1]
        return (
            "tests" not in parts
            and "benchmarks" not in parts
            and not filename.startswith(("test_", "bench_"))
        )

    def run(self) -> None:
        project = self.ctx.project
        if project is None:
            return
        module = project.module_for_path(self.ctx.path)
        if module is None:
            return
        self.project = project
        self.module = module
        self.analysis = worker_analysis_for(project)
        self.check()

    def check(self) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# worker-purity
# ----------------------------------------------------------------------


@register
class WorkerPurityChecker(_ProjectChecker):
    rule = "worker-purity"
    description = (
        "functions reachable from executor submissions must not write "
        "globals, call entropy/wall-clock sources, or iterate sets unsorted"
    )

    def check(self) -> None:
        if self.module.name == "repro.resilience" or self.module.name.startswith(
            "repro.resilience."
        ):
            # Sanctioned impurity: the chaos harness's whole job is to
            # crash, hang, and sleep inside workers on command.  Its
            # blast radius is bounded by the fault-site-purity rule
            # instead, which fences the injection hooks into
            # repro/resilience/ (plus baselined, justified fault sites).
            return
        for function in _module_functions(self.module):
            if not self.analysis.is_worker(function.ident):
                continue
            _PurityScan(
                self,
                function,
                exempt_global_writes=self.analysis.initializer_only(function.ident),
            ).run()


class _PurityScan(ast.NodeVisitor):
    """Check one worker-reachable function body for impurities."""

    def __init__(
        self,
        checker: WorkerPurityChecker,
        function: FunctionInfo,
        exempt_global_writes: bool,
    ) -> None:
        self.checker = checker
        self.project = checker.project
        self.module = checker.module
        self.function = function
        self.exempt_global_writes = exempt_global_writes
        self.types = _ExprTypes(self.project, self.module, function)
        self.declared_global: set[str] = set()
        self.root = _root_label(checker.analysis, function.ident)
        for sub in ast.walk(function.node):
            if isinstance(sub, ast.Global):
                self.declared_global.update(sub.names)

    def run(self) -> None:
        for stmt in self.function.node.body:
            self.visit(stmt)

    def _report(self, node: ast.AST, message: str) -> None:
        self.checker.report(
            node, f"{self.function.qualname!r} (reachable from {self.root}) {message}"
        )

    # -- nested scopes: do not descend (they get their own idents only
    # -- if module-level; nested defs are part of this body's effects
    # -- when called, but scanning them here double-reports closures).

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- global writes -------------------------------------------------

    def _flag_global_write(self, node: ast.AST, what: str) -> None:
        if self.exempt_global_writes:
            return
        self._report(
            node,
            f"writes {what}; worker results must depend only on the "
            "task arguments — return the value or move the write into "
            "the pool initializer",
        )

    def _check_write_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self._flag_global_write(target, f"module global {target.id!r}")
            return
        if isinstance(target, ast.Subscript) or isinstance(target, ast.Attribute):
            base = target.value
            self._check_mutation_base(target, base)

    def _check_mutation_base(self, node: ast.AST, base: ast.expr) -> None:
        """Writes through ``base[...]``/``base.attr`` hitting shared state."""
        if isinstance(base, ast.Name):
            if self.types.is_shadowed(base.id) and base.id not in self.declared_global:
                return
            if base.id in self.declared_global or self._is_module_state(base.id):
                self._flag_global_write(node, f"module global {base.id!r}")
            return
        resolved = self.project.resolve_expr(self.module, base)
        if resolved is None:
            return
        if resolved.kind == "variable":
            self._flag_global_write(
                node, f"module-level state {resolved.module}.{resolved.qualname!r}"
            )
        elif resolved.kind == "class":
            self._flag_global_write(node, f"class attribute on {resolved.qualname!r}")
        elif resolved.kind == "module":
            self._flag_global_write(node, f"attribute of module {resolved.module!r}")

    def _is_module_state(self, name: str) -> bool:
        return (
            name in self.module.var_annotations or name in self.module.var_values
        ) and not self.types.is_shadowed(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    # -- calls: mutators on globals + nondeterminism sources -----------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            self._check_mutation_base(node, func.value)
        resolved = self.project.resolve_expr(self.module, func)
        if resolved is not None and resolved.kind == "external":
            reason = _forbidden_call_reason(resolved.target)
            if reason is not None:
                self._report(
                    node,
                    f"calls {resolved.target}() which {reason}; worker "
                    "output would differ between runs and from serial",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # ``os.environ`` reads differ per worker environment.
        resolved = self.project.resolve_expr(self.module, node)
        if resolved is not None and resolved.kind == "external":
            if resolved.target == "os.environ":
                self._report(
                    node,
                    "reads os.environ; worker behaviour must not depend "
                    "on per-process environment",
                )
        self.generic_visit(node)

    # -- unordered set iteration ---------------------------------------

    def _check_iteration(self, node: ast.AST, iterable: ast.expr) -> None:
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id == "sorted":
                return  # the endorsed spelling
        if self.types.is_set(iterable):
            self._report(
                node,
                "iterates a set/frozenset without sorted(); set order "
                "varies across processes — wrap the iterable in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension_node(self, node: ast.AST, generators: list[ast.comprehension]) -> None:
        for gen in generators:
            self._check_iteration(node, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_node(node, node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_node(node, node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_node(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_node(node, node.generators)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# pickle-safety
# ----------------------------------------------------------------------


@register
class PickleSafetyChecker(_ProjectChecker):
    rule = "pickle-safety"
    description = (
        "no lambdas, local functions/classes, open handles, or generators "
        "may cross a process-pool pickle boundary"
    )

    def check(self) -> None:
        for site in self.analysis.graph.sites:
            if site.module != self.module.name:
                continue
            if not site.crosses_pickle_boundary:
                continue
            self._check_site(site)

    def _check_site(self, site: SubmissionSite) -> None:
        local_defs = self._local_definitions(site.enclosing)
        bindings = self._local_bindings(site.enclosing)
        if site.func_expr is not None:
            self._check_callable(site, site.func_expr, local_defs, bindings)
        for expr in site.payload:
            self._check_payload(site, expr, local_defs, bindings)

    def _local_definitions(self, enclosing: FunctionInfo | None) -> dict[str, str]:
        """Names defined *inside* the enclosing function: not picklable."""
        out: dict[str, str] = {}
        if enclosing is None:
            return out
        for sub in ast.walk(enclosing.node):
            if sub is enclosing.node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out[sub.name] = "function"
            elif isinstance(sub, ast.ClassDef):
                out[sub.name] = "class"
        return out

    def _local_bindings(self, enclosing: FunctionInfo | None) -> dict[str, ast.expr]:
        out: dict[str, ast.expr] = {}
        if enclosing is None:
            return out
        for sub in ast.walk(enclosing.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    out[target.id] = sub.value
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if isinstance(item.optional_vars, ast.Name):
                        out[item.optional_vars.id] = item.context_expr
        return out

    def _check_callable(
        self,
        site: SubmissionSite,
        expr: ast.expr,
        local_defs: dict[str, str],
        bindings: dict[str, ast.expr],
    ) -> None:
        where = f"{site.kind}() on a {site.executor_target or 'process pool'}"
        if isinstance(expr, ast.Lambda):
            self.report(
                expr,
                f"lambda passed to {where} cannot pickle; define a "
                "module-level function instead",
            )
            return
        if isinstance(expr, ast.Name):
            kind = local_defs.get(expr.id)
            if kind is not None:
                self.report(
                    expr,
                    f"locally-defined {kind} {expr.id!r} passed to {where} "
                    "cannot pickle; move it to module level",
                )
                return
            bound = bindings.get(expr.id)
            if bound is not None and isinstance(bound, ast.Lambda):
                self.report(
                    expr,
                    f"{expr.id!r} is a lambda and cannot pickle across "
                    f"{where}; define a module-level function instead",
                )

    def _check_payload(
        self,
        site: SubmissionSite,
        expr: ast.expr,
        local_defs: dict[str, str],
        bindings: dict[str, ast.expr],
    ) -> None:
        where = f"the {site.executor_target or 'process pool'} boundary"
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                self.report(node, f"lambda crosses {where} and cannot pickle")
            elif isinstance(node, ast.GeneratorExp):
                self.report(
                    node,
                    f"generator expression crosses {where}; generators "
                    "cannot pickle — materialise it (list(...)) first",
                )
            elif isinstance(node, ast.Call):
                self._check_payload_call(node, where)
            elif isinstance(node, ast.Name):
                self._check_payload_name(node, where, local_defs, bindings)

    def _check_payload_call(self, node: ast.Call, where: str) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            self.report(
                node,
                f"open file handle crosses {where}; handles cannot pickle "
                "— pass the path and open inside the worker",
            )
            return
        resolved = self.project.resolve_expr(self.module, func)
        if resolved is not None and resolved.kind == "function":
            info = self.project.get_function(resolved.ident)
            if info is not None and info.is_generator:
                self.report(
                    node,
                    f"call to generator function {info.qualname!r} crosses "
                    f"{where}; generators cannot pickle — materialise the "
                    "values first",
                )

    def _check_payload_name(
        self,
        node: ast.Name,
        where: str,
        local_defs: dict[str, str],
        bindings: dict[str, ast.expr],
    ) -> None:
        kind = local_defs.get(node.id)
        if kind is not None:
            self.report(
                node,
                f"locally-defined {kind} {node.id!r} crosses {where} and "
                "cannot pickle; move it to module level",
            )
            return
        bound = bindings.get(node.id)
        if bound is None:
            return
        if isinstance(bound, ast.Lambda):
            self.report(node, f"{node.id!r} is a lambda and cannot pickle across {where}")
        elif isinstance(bound, ast.GeneratorExp):
            self.report(
                node,
                f"{node.id!r} is a generator expression and cannot pickle "
                f"across {where}; materialise it first",
            )
        elif isinstance(bound, ast.Call):
            func = bound.func
            if isinstance(func, ast.Name) and func.id == "open":
                self.report(
                    node,
                    f"{node.id!r} is an open file handle and cannot pickle "
                    f"across {where}; pass the path instead",
                )
                return
            resolved = self.project.resolve_expr(self.module, func)
            if resolved is not None and resolved.kind == "function":
                info = self.project.get_function(resolved.ident)
                if info is not None and info.is_generator:
                    self.report(
                        node,
                        f"{node.id!r} holds a generator (from "
                        f"{info.qualname!r}) and cannot pickle across {where}",
                    )


# ----------------------------------------------------------------------
# order-discipline
# ----------------------------------------------------------------------


@register
class OrderDisciplineChecker(_ProjectChecker):
    rule = "order-discipline"
    description = (
        "consume executor results in submission order: no as_completed "
        "loops, no dict.update merges fed from unordered sets"
    )

    _MERGE_NAMES = frozenset({"update", "merge", "absorb_worker_telemetry"})

    def check(self) -> None:
        self._function: FunctionInfo | None = None
        self._types = _ExprTypes(self.project, self.module, None)
        self._scan_body(self.module.tree.body, None)

    def _scan_body(self, body: list[ast.stmt], function: FunctionInfo | None) -> None:
        for stmt in body:
            self._scan_stmt(stmt, function)

    def _scan_stmt(self, stmt: ast.stmt, function: FunctionInfo | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = self._function_info(stmt, function)
            if info is not None:
                previous = self._types
                self._types = _ExprTypes(self.project, self.module, info)
                self._scan_body(stmt.body, info)
                self._types = previous
            else:
                self._scan_body(stmt.body, function)
            return
        if isinstance(stmt, ast.ClassDef):
            self._scan_body(stmt.body, function)
            return
        self._visit_exprs(stmt)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self._is_as_completed(stmt.iter):
                merge = self._merge_call_in(stmt.body)
                if merge is not None:
                    self.report(
                        merge,
                        "telemetry merged inside an as_completed loop runs "
                        "in completion order; merge worker results in "
                        "submission order (iterate the futures list)",
                    )
                else:
                    self.report(
                        stmt,
                        "results consumed via as_completed() arrive in "
                        "completion order, which varies run to run; iterate "
                        "the futures in submission order instead",
                    )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child, function)
            elif hasattr(child, "body") and isinstance(getattr(child, "body"), list):
                # except handlers / match cases
                for sub in getattr(child, "body"):
                    if isinstance(sub, ast.stmt):
                        self._scan_stmt(sub, function)

    def _visit_exprs(self, stmt: ast.stmt) -> None:
        # Walk only this statement's own expressions; nested statements
        # are scanned by their own _scan_stmt visit (no double reports).
        for node in self._own_nodes(stmt):
            if isinstance(node, ast.Call):
                self._check_update(node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_as_completed(gen.iter):
                        self.report(
                            node,
                            "comprehension over as_completed() consumes "
                            "results in completion order; iterate the "
                            "futures in submission order instead",
                        )

    def _own_nodes(self, stmt: ast.stmt) -> Iterator[ast.AST]:
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                    continue
                yield child
                stack.append(child)

    def _function_info(
        self, node: _FunctionNode, parent: FunctionInfo | None
    ) -> FunctionInfo | None:
        if parent is not None:
            return None  # nested defs share the enclosing table
        info = self.module.functions.get(node.name)
        if info is not None and info.node is node:
            return info
        for cls in self.module.classes.values():
            method = cls.methods.get(node.name)
            if method is not None and method.node is node:
                return method
        return None

    def _is_as_completed(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        resolved = self.project.resolve_expr(self.module, expr.func)
        return (
            resolved is not None
            and resolved.kind == "external"
            and resolved.target
            in (
                "concurrent.futures.as_completed",
                "concurrent.futures._base.as_completed",
                "asyncio.as_completed",
            )
        )

    def _merge_call_in(self, body: list[ast.stmt]) -> ast.Call | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = None
                if isinstance(func, ast.Attribute):
                    name = func.attr
                elif isinstance(func, ast.Name):
                    name = func.id
                if name in self._MERGE_NAMES:
                    return node
        return None

    def _check_update(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "update"):
            return
        if not node.args:
            return
        if not self._types.is_dict(func.value):
            return
        argument = node.args[0]
        unordered = self._types.is_set(argument)
        if not unordered and isinstance(argument, ast.DictComp):
            unordered = any(self._types.is_set(gen.iter) for gen in argument.generators)
        if unordered:
            self.report(
                node,
                "dict.update() fed from a set iterates in unordered set "
                "order; sort the keys first so merges are deterministic",
            )
