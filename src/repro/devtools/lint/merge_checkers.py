"""Store-merge purity: the monoid laws need machine help too.

``store-merge-purity``
    The shard → merge mining path and the ``repro merge`` CLI both rest
    on :meth:`~repro.store.base.SummaryStore.merge` being a *pure*
    commutative-monoid operation: same operands, same result, operands
    untouched.  The property tests sample that promise; this checker
    pins the three ways an implementation quietly breaks it:

    * **mutating an operand** — ``merge`` must build a fresh store;
      writing through ``self``/``other`` (or any parameter) aliases the
      result into its inputs and corrupts re-merges and retries;
    * **reading ``os.environ``** — merged counts must be a function of
      the operands, not of per-process configuration (workers and the
      parent would disagree);
    * **iterating a ``set``/``frozenset`` without ``sorted()``** — the
      merged store's *insertion order* is part of the bit-identical
      contract, so no step of a merge may depend on hash order.

    Roots are every project implementation of ``SummaryStore.merge``
    (base plus subclass overrides, via the whole-program model); the
    operand-mutation check applies to the implementations themselves,
    while the environ and set-order checks follow the call graph
    through the store package (helpers outside it — interner table
    rewrites, observability — are covered by their own rules).
    Genuinely sanctioned exceptions go in the lint baseline like any
    other finding.
"""

from __future__ import annotations

import ast
import dataclasses

from .callgraph import callgraph_for
from .engine import register
from .parallel_checkers import (
    _ExprTypes,
    _MUTATOR_METHODS,
    _ProjectChecker,
    _module_functions,
)
from .project import FunctionInfo, ProjectModel

__all__ = ["MergeAnalysis", "merge_analysis_for", "StoreMergePurityChecker"]


@dataclasses.dataclass
class MergeAnalysis:
    """Merge implementations and their store-package call closure."""

    #: idents of ``SummaryStore.merge`` implementations (operand-mutation
    #: check applies here).
    impls: set[str]
    #: reachable function ident -> merge-impl root, restricted to the
    #: store package(s) (environ / set-order checks apply here).
    closure: dict[str, str]


def _module_of(ident: str) -> str:
    return ident.partition(":")[0]


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def build_merge_analysis(project: ProjectModel) -> MergeAnalysis:
    graph = callgraph_for(project)
    impls: dict[str, None] = {}
    packages: set[str] = set()
    for module in project.modules.values():
        if "SummaryStore" not in module.classes:
            continue
        ident = f"{module.name}:SummaryStore"
        for fn in project.method_implementations(ident, "merge"):
            impls.setdefault(fn.ident, None)
        name = module.name
        packages.add(name.rsplit(".", 1)[0] if "." in name else name)
    reachable = graph.reachable(list(impls))
    closure = {
        ident: root
        for ident, root in reachable.items()
        if any(_in_package(_module_of(ident), pkg) for pkg in packages)
    }
    return MergeAnalysis(impls=set(impls), closure=closure)


def merge_analysis_for(project: ProjectModel) -> MergeAnalysis:
    analysis = project.analysis("merge-analysis", build_merge_analysis)
    assert isinstance(analysis, MergeAnalysis)
    return analysis


@register
class StoreMergePurityChecker(_ProjectChecker):
    rule = "store-merge-purity"
    description = (
        "SummaryStore.merge implementations must not mutate their "
        "operands, read os.environ, or iterate sets unsorted"
    )

    def check(self) -> None:
        merge_analysis = merge_analysis_for(self.project)
        if not merge_analysis.impls:
            return
        for function in _module_functions(self.module):
            if function.ident not in merge_analysis.closure:
                continue
            _MergeScan(
                self,
                function,
                check_operands=function.ident in merge_analysis.impls,
                root=merge_analysis.closure[function.ident],
            ).run()


class _MergeScan(ast.NodeVisitor):
    """Check one merge-reachable function body for monoid breakers."""

    def __init__(
        self,
        checker: StoreMergePurityChecker,
        function: FunctionInfo,
        check_operands: bool,
        root: str,
    ) -> None:
        self.checker = checker
        self.project = checker.project
        self.module = checker.module
        self.function = function
        self.check_operands = check_operands
        self.types = _ExprTypes(self.project, self.module, function)
        if function.ident == root:
            self.origin = "a merge implementation"
        else:
            module, _, qualname = root.partition(":")
            self.origin = f"merge implementation '{module}.{qualname}'"
        args = function.node.args
        self.params = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        }
        if args.vararg is not None:
            self.params.add(args.vararg.arg)
        if args.kwarg is not None:
            self.params.add(args.kwarg.arg)

    def run(self) -> None:
        for stmt in self.function.node.body:
            self.visit(stmt)

    def _report(self, node: ast.AST, message: str) -> None:
        self.checker.report(
            node, f"{self.function.qualname!r} ({self.origin}) {message}"
        )

    # -- nested scopes: closures double-report; skip like _PurityScan --

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- operand mutation ----------------------------------------------

    def _param_root(self, expr: ast.expr) -> str | None:
        """The parameter a write through ``expr`` would reach, if any."""
        node = expr
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name) and node.id in self.params:
            return node.id
        return None

    def _flag_operand_write(self, node: ast.AST, param: str, how: str) -> None:
        self._report(
            node,
            f"{how} operand {param!r}; merge is a pure monoid operation "
            "— build and return a fresh store instead",
        )

    def _check_write_target(self, target: ast.expr) -> None:
        if not self.check_operands:
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            param = self._param_root(target)
            if param is not None:
                self._flag_operand_write(target, param, "writes through")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    # -- calls: operand mutators + environment reads -------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self.check_operands
            and isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            param = self._param_root(func.value)
            if param is not None:
                self._flag_operand_write(
                    node, param, f"calls .{func.attr}() on"
                )
        resolved = self.project.resolve_expr(self.module, func)
        if resolved is not None and resolved.kind == "external":
            if resolved.target == "os.getenv":
                self._report(
                    node,
                    "calls os.getenv(); merged counts must be a function "
                    "of the operands, not the process environment",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self.project.resolve_expr(self.module, node)
        if resolved is not None and resolved.kind == "external":
            if resolved.target == "os.environ":
                self._report(
                    node,
                    "reads os.environ; merged counts must be a function "
                    "of the operands, not the process environment",
                )
        self.generic_visit(node)

    # -- unordered set iteration ---------------------------------------

    def _check_iteration(self, node: ast.AST, iterable: ast.expr) -> None:
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id == "sorted":
                return  # the endorsed spelling
        if self.types.is_set(iterable):
            self._report(
                node,
                "iterates a set/frozenset without sorted(); the merged "
                "store's insertion order is part of the bit-identical "
                "contract — wrap the iterable in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def _check_generators(
        self, node: ast.AST, generators: list[ast.comprehension]
    ) -> None:
        for gen in generators:
            self._check_iteration(node, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_generators(node, node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_generators(node, node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_generators(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_generators(node, node.generators)
        self.generic_visit(node)
