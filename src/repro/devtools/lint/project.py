"""Whole-program project model: modules, imports, symbols, resolution.

The per-file checkers of :mod:`repro.devtools.lint.checkers` see one AST
at a time; the parallel-determinism suite needs to answer questions that
cross file boundaries ("what does ``obs.worker_window`` resolve to",
"which class does this parameter annotation name").  This module builds
that substrate once per lint run:

* a **module graph**: every ``.py`` file reachable from the lint targets'
  enclosing packages, named by its dotted import path;
* per-module **symbol tables**: top-level functions, classes (with their
  methods), variables (with conservative type guesses), and the import
  alias table, including relative imports and re-export chains;
* a **resolver** that maps a dotted name used in one module to the
  project entity (or external stdlib target) it denotes.

Resolution is deliberately conservative: anything the static tables
cannot pin down resolves to ``None`` and downstream checkers stay
silent about it.  Nothing here imports the analysed code — the model is
built purely from source text, so linting never executes project code.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Resolved",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project",
    "package_root",
]

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Annotation heads that denote unordered set types.
_SET_HEADS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
#: Annotation heads that denote dict types.
_DICT_HEADS = {"dict", "Dict", "defaultdict", "OrderedDict", "Counter", "Mapping", "MutableMapping"}


@dataclasses.dataclass(frozen=True)
class Resolved:
    """Outcome of resolving a name: a project entity or an external ref.

    ``kind`` is one of ``"function"``, ``"class"``, ``"variable"``,
    ``"module"`` (project entities — ``module``/``qualname`` locate the
    definition) or ``"external"`` (``target`` is the dotted path outside
    the project, e.g. ``"concurrent.futures.as_completed"``).
    """

    kind: str
    module: str = ""
    qualname: str = ""
    target: str = ""

    @property
    def ident(self) -> str:
        """Stable id for project entities: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str
    node: _FunctionNode
    owner: str | None = None  # enclosing class name for methods
    is_generator: bool = False

    @property
    def ident(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.node.name


@dataclasses.dataclass
class ClassInfo:
    """One class definition with its direct methods and class variables."""

    module: str
    name: str
    node: ast.ClassDef
    base_exprs: list[ast.expr] = dataclasses.field(default_factory=list)
    methods: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    #: attribute name -> annotation expression (class-level or ``self.x:``
    #: annotations found in methods), used for conservative typing.
    attr_annotations: dict[str, ast.expr] = dataclasses.field(default_factory=dict)
    #: attribute name -> value expression assigned to ``self.x`` / class var.
    attr_values: dict[str, ast.expr] = dataclasses.field(default_factory=dict)

    @property
    def ident(self) -> str:
        return f"{self.module}:{self.name}"


@dataclasses.dataclass
class ModuleInfo:
    """Symbol table of one project module."""

    name: str
    path: Path
    source: str
    tree: ast.Module
    #: alias -> ("module", dotted) for ``import x.y as alias`` /
    #: ("from", base, symbol) for ``from base import symbol as alias``.
    imports: dict[str, tuple[str, ...]] = dataclasses.field(default_factory=dict)
    functions: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    #: top-level variable name -> annotation expr (or None).
    var_annotations: dict[str, ast.expr | None] = dataclasses.field(default_factory=dict)
    #: top-level variable name -> last assigned value expr.
    var_values: dict[str, ast.expr] = dataclasses.field(default_factory=dict)

    @property
    def is_package(self) -> bool:
        """True for package ``__init__`` modules.

        Their relative imports resolve against the package itself
        (``from .sub import x`` in ``repro/store/__init__.py`` means
        ``repro.store.sub``), not against the parent package the dotted
        name alone would suggest.
        """
        return self.path.stem == "__init__"


def package_root(path: Path) -> Path | None:
    """Topmost package directory containing ``path``, or ``None``.

    ``src/repro/parallel/pool.py`` maps to ``src/repro``; module names
    are then derived relative to the package root's parent, so the file
    becomes ``repro.parallel.pool``.  A file outside any package has no
    root (its module name is just its stem).
    """
    current = path.resolve().parent
    if not (current / "__init__.py").exists():
        return None
    while (current.parent / "__init__.py").exists() and current.parent != current:
        current = current.parent
    return current


def _module_name(path: Path, root: Path) -> str:
    relative = path.resolve().relative_to(root)
    parts = list(relative.parts)
    parts[-1] = relative.stem
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else relative.stem


class ProjectModel:
    """The resolved whole-program view the project checkers query."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._by_path: dict[Path, ModuleInfo] = {}
        #: class ident -> idents of project classes that list it as a base.
        self.subclasses: dict[str, set[str]] = {}
        self._analysis_cache: dict[str, object] = {}

    # -- construction --------------------------------------------------

    def add_module(self, name: str, path: Path, source: str, tree: ast.Module) -> ModuleInfo:
        info = ModuleInfo(name=name, path=path.resolve(), source=source, tree=tree)
        _populate(info)
        self.modules[name] = info
        self._by_path[info.path] = info
        return info

    def finalize(self) -> None:
        """Resolve the class hierarchy once every module is loaded."""
        self.subclasses = {}
        for module in self.modules.values():
            for cls in module.classes.values():
                for base_expr in cls.base_exprs:
                    base = self.resolve_expr(module, base_expr)
                    if base is not None and base.kind == "class":
                        self.subclasses.setdefault(base.ident, set()).add(cls.ident)

    # -- lookup --------------------------------------------------------

    def module_for_path(self, path: Path | str) -> ModuleInfo | None:
        return self._by_path.get(Path(path).resolve())

    def get_class(self, ident: str) -> ClassInfo | None:
        module_name, _, qualname = ident.partition(":")
        module = self.modules.get(module_name)
        if module is None:
            return None
        return module.classes.get(qualname)

    def get_function(self, ident: str) -> FunctionInfo | None:
        module_name, _, qualname = ident.partition(":")
        module = self.modules.get(module_name)
        if module is None:
            return None
        if qualname in module.functions:
            return module.functions[qualname]
        owner, _, name = qualname.rpartition(".")
        if owner:
            cls = module.classes.get(owner)
            if cls is not None:
                return cls.methods.get(name)
        return None

    # -- resolution ----------------------------------------------------

    def resolve_name(
        self, module: ModuleInfo, name: str, _seen: frozenset[tuple[str, str]] = frozenset()
    ) -> Resolved | None:
        """What top-level ``name`` denotes inside ``module``."""
        if (module.name, name) in _seen:
            return None
        seen = _seen | {(module.name, name)}
        if name in module.classes:
            return Resolved(kind="class", module=module.name, qualname=name)
        if name in module.functions:
            return Resolved(kind="function", module=module.name, qualname=name)
        if name in module.var_annotations or name in module.var_values:
            return Resolved(kind="variable", module=module.name, qualname=name)
        imported = module.imports.get(name)
        if imported is None:
            return None
        if imported[0] == "module":
            dotted = imported[1]
            if dotted in self.modules:
                return Resolved(kind="module", module=dotted, qualname="")
            return Resolved(kind="external", target=dotted)
        base, symbol = imported[1], imported[2]
        target_module = self.modules.get(base)
        if target_module is None:
            submodule = self.modules.get(f"{base}.{symbol}")
            if submodule is not None:
                return Resolved(kind="module", module=submodule.name, qualname="")
            return Resolved(kind="external", target=f"{base}.{symbol}")
        submodule = self.modules.get(f"{base}.{symbol}")
        resolved = self.resolve_name(target_module, symbol, seen)
        if resolved is not None:
            return resolved
        if submodule is not None:
            return Resolved(kind="module", module=submodule.name, qualname="")
        return None

    def resolve_dotted(self, module: ModuleInfo, parts: Sequence[str]) -> Resolved | None:
        """Resolve ``a.b.c`` used inside ``module`` to an entity."""
        if not parts:
            return None
        current = self.resolve_name(module, parts[0])
        for attr in parts[1:]:
            if current is None:
                return None
            current = self.member(current, attr)
        return current

    def member(self, owner: Resolved, attr: str) -> Resolved | None:
        """Member ``attr`` of a resolved entity (module/class/instance)."""
        if owner.kind == "external":
            return Resolved(kind="external", target=f"{owner.target}.{attr}")
        if owner.kind == "module":
            target = self.modules.get(owner.module)
            if target is None:
                return None
            return self.resolve_name(target, attr)
        if owner.kind == "class":
            return self.class_member(owner.ident, attr)
        if owner.kind == "variable":
            cls = self.variable_class(owner)
            if cls is not None:
                return self.class_member(cls.ident, attr)
            return None
        return None

    def class_member(self, class_ident: str, attr: str) -> Resolved | None:
        """Look ``attr`` up on a class, walking project base classes."""
        seen: set[str] = set()
        stack = [class_ident]
        while stack:
            ident = stack.pop(0)
            if ident in seen:
                continue
            seen.add(ident)
            cls = self.get_class(ident)
            if cls is None:
                continue
            if attr in cls.methods:
                info = cls.methods[attr]
                return Resolved(kind="function", module=info.module, qualname=info.qualname)
            if attr in cls.attr_annotations or attr in cls.attr_values:
                return Resolved(
                    kind="variable", module=cls.module, qualname=f"{cls.name}.{attr}"
                )
            module = self.modules[cls.module]
            for base_expr in cls.base_exprs:
                base = self.resolve_expr(module, base_expr)
                if base is not None and base.kind == "class":
                    stack.append(base.ident)
        return None

    def method_implementations(self, class_ident: str, attr: str) -> list[FunctionInfo]:
        """Every project implementation a ``obj.attr()`` call may reach.

        The statically resolved implementation (walking up the bases)
        plus every override in project subclasses — the conservative
        answer for dynamic dispatch.
        """
        out: list[FunctionInfo] = []
        resolved = self.class_member(class_ident, attr)
        if resolved is not None and resolved.kind == "function":
            info = self.get_function(resolved.ident)
            if info is not None:
                out.append(info)
        for sub in sorted(self._descendants(class_ident)):
            cls = self.get_class(sub)
            if cls is not None and attr in cls.methods:
                out.append(cls.methods[attr])
        return out

    def _descendants(self, class_ident: str) -> set[str]:
        out: set[str] = set()
        stack = list(self.subclasses.get(class_ident, ()))
        while stack:
            ident = stack.pop()
            if ident in out:
                continue
            out.add(ident)
            stack.extend(self.subclasses.get(ident, ()))
        return out

    # -- typing helpers ------------------------------------------------

    def variable_class(self, variable: Resolved) -> ClassInfo | None:
        """The class a project variable is an instance of, if inferable."""
        module = self.modules.get(variable.module)
        if module is None:
            return None
        owner, _, attr = variable.qualname.rpartition(".")
        if owner:
            cls = module.classes.get(owner)
            if cls is None:
                return None
            annotation = cls.attr_annotations.get(attr)
            value = cls.attr_values.get(attr)
        else:
            annotation = module.var_annotations.get(variable.qualname)
            value = module.var_values.get(variable.qualname)
        if annotation is not None:
            resolved = self.annotation_class(module, annotation)
            if resolved is not None:
                return resolved
        if value is not None and isinstance(value, ast.Call):
            resolved_value = self.resolve_expr(module, value.func)
            if resolved_value is not None and resolved_value.kind == "class":
                return self.get_class(resolved_value.ident)
        return None

    def annotation_class(self, module: ModuleInfo, annotation: ast.expr) -> ClassInfo | None:
        """Project class named by an annotation (handles strings, unions)."""
        for candidate in _annotation_atoms(annotation):
            resolved = self.resolve_expr(module, candidate)
            if resolved is not None and resolved.kind == "class":
                return self.get_class(resolved.ident)
        return None

    def annotation_head(self, annotation: ast.expr) -> set[str]:
        """Bare head names an annotation mentions (``set[int]`` -> {set})."""
        heads: set[str] = set()
        for atom in _annotation_atoms(annotation):
            if isinstance(atom, ast.Name):
                heads.add(atom.id)
            elif isinstance(atom, ast.Attribute):
                heads.add(atom.attr)
        return heads

    def annotation_is_set(self, annotation: ast.expr) -> bool:
        return bool(self.annotation_head(annotation) & _SET_HEADS)

    def annotation_is_dict(self, annotation: ast.expr) -> bool:
        return bool(self.annotation_head(annotation) & _DICT_HEADS)

    def resolve_expr(self, module: ModuleInfo, expr: ast.expr) -> Resolved | None:
        """Resolve a ``Name``/``Attribute`` chain expression."""
        parts = _dotted_parts(expr)
        if parts is None:
            return None
        return self.resolve_dotted(module, parts)

    # -- analysis memo -------------------------------------------------

    def analysis(self, key: str, build: "Callable[[ProjectModel], object]") -> object:
        """Memoised per-project analysis (the call graph, reachability)."""
        if key not in self._analysis_cache:
            self._analysis_cache[key] = build(self)
        return self._analysis_cache[key]

    def fingerprint_files(self) -> list[tuple[str, str, int]]:
        """``(path, sha256, size)`` per module, for cache keys.

        Content-hashed rather than mtime-keyed so a fresh checkout with
        identical sources (a CI cache restore) still matches.
        """
        out: list[tuple[str, str, int]] = []
        for module in self.modules.values():
            try:
                data = module.path.read_bytes()
            except OSError:
                out.append((str(module.path), "", 0))
                continue
            out.append((str(module.path), hashlib.sha256(data).hexdigest(), len(data)))
        return sorted(out)


def _dotted_parts(expr: ast.expr) -> list[str] | None:
    parts: list[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _annotation_atoms(annotation: ast.expr) -> Iterator[ast.expr]:
    """Name-like atoms of an annotation: unions, subscript heads, strings."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return
        yield from _annotation_atoms(parsed.body)
        return
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        yield from _annotation_atoms(annotation.left)
        yield from _annotation_atoms(annotation.right)
        return
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        if isinstance(head, (ast.Name, ast.Attribute)):
            name = head.id if isinstance(head, ast.Name) else head.attr
            if name in ("Optional", "Union", "Annotated", "Final", "ClassVar"):
                inner = annotation.slice
                if isinstance(inner, ast.Tuple):
                    for element in inner.elts:
                        yield from _annotation_atoms(element)
                else:
                    yield from _annotation_atoms(inner)
                return
        yield from _annotation_atoms(annotation.value)
        return
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        yield annotation


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module body plus one level of ``if``/``try`` nesting.

    Covers the two idioms that hide imports from a flat scan:
    ``if TYPE_CHECKING:`` annotation imports and ``try/except
    ImportError`` optional dependencies.  Both bind module-level names.
    """
    for stmt in tree.body:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from stmt.body
            yield from stmt.orelse
        elif isinstance(stmt, ast.Try):
            yield from stmt.body
            for handler in stmt.handlers:
                yield from handler.body
            yield from stmt.orelse
            yield from stmt.finalbody


def _populate(info: ModuleInfo) -> None:
    """Fill one module's import and symbol tables from its AST."""
    package = info.name if info.is_package else info.name.rpartition(".")[0]
    for stmt in _top_level_statements(info.tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname is not None:
                    info.imports[alias.asname] = ("module", alias.name)
                else:
                    root = alias.name.split(".", 1)[0]
                    info.imports[root] = ("module", root)
        elif isinstance(stmt, ast.ImportFrom):
            base = _import_base(stmt, info.name, package)
            if base is None:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.imports[bound] = ("from", base, alias.name)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = FunctionInfo(
                module=info.name,
                qualname=stmt.name,
                node=stmt,
                is_generator=_is_generator(stmt),
            )
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = _class_info(info.name, stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.var_annotations.setdefault(target.id, None)
                    info.var_values[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.var_annotations[stmt.target.id] = stmt.annotation
            if stmt.value is not None:
                info.var_values[stmt.target.id] = stmt.value


def _import_base(stmt: ast.ImportFrom, module_name: str, package: str) -> str | None:
    if stmt.level == 0:
        return stmt.module
    # Relative import: strip ``level`` trailing components off the
    # current package path (level 1 = current package).
    parts = package.split(".") if package else []
    # ``from . import x`` inside a package __init__ resolves against the
    # package itself, which is ``module_name`` when it has no dot.
    if not parts and module_name:
        parts = [module_name]
    cut = stmt.level - 1
    if cut > len(parts):
        return None
    base_parts = parts[: len(parts) - cut] if cut else parts
    if stmt.module:
        base_parts = base_parts + stmt.module.split(".")
    return ".".join(base_parts) if base_parts else None


def _class_info(module_name: str, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(
        module=module_name,
        name=node.name,
        node=node,
        base_exprs=[b for b in node.bases if isinstance(b, (ast.Name, ast.Attribute))],
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = FunctionInfo(
                module=module_name,
                qualname=f"{node.name}.{stmt.name}",
                node=stmt,
                owner=node.name,
                is_generator=_is_generator(stmt),
            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            cls.attr_annotations[stmt.target.id] = stmt.annotation
            if stmt.value is not None:
                cls.attr_values[stmt.target.id] = stmt.value
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    cls.attr_values[target.id] = stmt.value
    # ``self.x: T = ...`` / ``self.x = ...`` inside methods also declare
    # instance attributes; record them for conservative typing.
    for method in cls.methods.values():
        for sub in ast.walk(method.node):
            if (
                isinstance(sub, ast.AnnAssign)
                and isinstance(sub.target, ast.Attribute)
                and isinstance(sub.target.value, ast.Name)
                and sub.target.value.id == "self"
            ):
                cls.attr_annotations.setdefault(sub.target.attr, sub.annotation)
                if sub.value is not None:
                    cls.attr_values.setdefault(sub.target.attr, sub.value)
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_values.setdefault(target.attr, sub.value)
    return cls


def _is_generator(node: _FunctionNode) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            # Nested functions' yields do not make the outer a generator,
            # but the distinction does not matter for a conservative
            # "may be a generator" answer.
            return True
    return False


def build_project(paths: Iterable[Path]) -> ProjectModel:
    """Build the whole-program model for the packages enclosing ``paths``.

    Every argument file's enclosing package is loaded *entirely*, so a
    partial lint (``--changed``, a single file) still resolves imports
    into unlinted modules.  Files that fail to parse are skipped — the
    per-file lint pass reports the syntax error.
    """
    roots: dict[Path, None] = {}
    loose_files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                _classify(file, roots, loose_files)
        elif path.suffix == ".py":
            _classify(path, roots, loose_files)
    model = ProjectModel()
    seen: set[Path] = set()
    for root in sorted(roots):
        for file in sorted(root.rglob("*.py")):
            _load(model, file, root.parent, seen)
    for file in loose_files:
        _load(model, file, file.parent, seen)
    model.finalize()
    return model


def _classify(file: Path, roots: dict[Path, None], loose: list[Path]) -> None:
    resolved = file.resolve()
    root = package_root(resolved)
    if root is not None:
        roots.setdefault(root, None)
    else:
        loose.append(resolved)


def _load(model: ProjectModel, file: Path, root: Path, seen: set[Path]) -> None:
    resolved = file.resolve()
    if resolved in seen:
        return
    seen.add(resolved)
    try:
        source = resolved.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(resolved))
    except (OSError, SyntaxError):
        return
    model.add_module(_module_name(resolved, root), resolved, source, tree)
