"""Incremental cache (mtime-keyed, content-verified) for the lint pass.

The cache keeps, per file, the post-suppression findings split into two
buckets with different validity rules:

* **local** findings (per-file checkers) are valid while the file's
  ``(mtime_ns, size)`` is unchanged, with a sha256 content check as the
  fallback when only the mtime moved (a fresh checkout restoring a CI
  cache touches every file without changing any);
* **project** findings (checkers with ``requires_project``) additionally
  require the *project fingerprint* — a hash over every modelled
  module's ``(path, sha256, size)`` — to match, because editing module
  A can change what is worker-reachable in module B.

A checker-set fingerprint (rule ids + selected rules + format version)
guards the whole file: upgrading the linter or changing ``--rule``
flags silently drops the cache instead of serving wrong answers.
Corrupt or foreign cache files are treated as empty, never as errors —
a cache must not be able to break a build.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .engine import Finding, all_checkers
from .project import ProjectModel

__all__ = ["LintCache", "checker_fingerprint", "project_fingerprint"]

_FORMAT_VERSION = 3


def checker_fingerprint(rules: list[str] | None) -> str:
    """Identity of the checker set this run will execute."""
    registered = sorted(
        f"{cls.rule}:{int(cls.requires_project)}" for cls in all_checkers()
    )
    selected = sorted(rules) if rules is not None else ["<all>"]
    blob = json.dumps([_FORMAT_VERSION, registered, selected])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def project_fingerprint(project: ProjectModel) -> str:
    """Hash of every modelled module's ``(path, sha256, size)``."""
    blob = json.dumps(project.fingerprint_files())
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class LintCache:
    """On-disk incremental state (see module docstring for validity)."""

    def __init__(self, path: Path, checker_fp: str) -> None:
        self.path = path
        self.checker_fp = checker_fp
        #: file path -> {"mtime_ns", "size", "local", "project"}.
        self.files: dict[str, dict[str, object]] = {}
        self.project_fp = ""
        self.hits = 0
        self.misses = 0

    # -- persistence ---------------------------------------------------

    @classmethod
    def load(cls, path: Path, checker_fp: str) -> "LintCache":
        cache = cls(path, checker_fp)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict):
            return cache
        if payload.get("version") != _FORMAT_VERSION:
            return cache
        if payload.get("checker_fp") != checker_fp:
            return cache
        project_fp = payload.get("project_fp")
        files = payload.get("files")
        if not isinstance(project_fp, str) or not isinstance(files, dict):
            return cache
        cache.project_fp = project_fp
        for key, entry in files.items():
            if isinstance(key, str) and isinstance(entry, dict):
                cache.files[key] = entry
        return cache

    def save(self) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "checker_fp": self.checker_fp,
            "project_fp": self.project_fp,
            "files": self.files,
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- lookups -------------------------------------------------------

    def _entry_if_fresh(self, path: Path) -> dict[str, object] | None:
        entry = self.files.get(str(path))
        if entry is None:
            return None
        try:
            stat = path.stat()
        except OSError:
            return None
        if entry.get("mtime_ns") == stat.st_mtime_ns and entry.get("size") == stat.st_size:
            return entry
        # Stat moved (e.g. a fresh checkout) — fall back to content.
        digest = entry.get("sha256")
        if not isinstance(digest, str) or not digest:
            return None
        try:
            if hashlib.sha256(path.read_bytes()).hexdigest() != digest:
                return None
        except OSError:
            return None
        entry["mtime_ns"] = stat.st_mtime_ns
        entry["size"] = stat.st_size
        return entry

    def lookup_local(self, path: Path) -> list[Finding] | None:
        """Cached per-file findings, if the file is unchanged."""
        entry = self._entry_if_fresh(path)
        if entry is None:
            return None
        return _decode_findings(entry.get("local"))

    def lookup_project(self, path: Path, project_fp: str) -> list[Finding] | None:
        """Cached project findings, if file *and* whole project match."""
        if project_fp != self.project_fp:
            return None
        entry = self._entry_if_fresh(path)
        if entry is None:
            return None
        return _decode_findings(entry.get("project"))

    def store(
        self,
        path: Path,
        local: list[Finding],
        project: list[Finding],
    ) -> None:
        try:
            stat = path.stat()
            data = path.read_bytes()
        except OSError:
            return
        self.files[str(path)] = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "sha256": hashlib.sha256(data).hexdigest(),
            "local": [finding.to_dict() for finding in local],
            "project": [finding.to_dict() for finding in project],
        }


def _decode_findings(raw: object) -> list[Finding] | None:
    if not isinstance(raw, list):
        return None
    out: list[Finding] = []
    for item in raw:
        if not isinstance(item, dict):
            return None
        try:
            out.append(
                Finding(
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    rule=str(item["rule"]),
                    message=str(item["message"]),
                )
            )
        except (KeyError, TypeError, ValueError):
            return None
    return out
