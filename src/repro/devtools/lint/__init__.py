"""Project lint: AST checks + whole-program parallel-determinism suite.

Usage::

    python -m repro.devtools.lint src tests benchmarks
    python -m repro.devtools.lint --format sarif --output lint.sarif src
    python -m repro.devtools.lint --changed --baseline lint-baseline.json
    python -m repro.devtools.lint --list-rules

Suppress a finding with ``# lint: disable=<rule>`` anywhere on the
offending statement's line span (comma separated for several rules,
``all`` for every rule), or a whole file with
``# lint: disable-file=<rule>``.  Accepted findings live in
``lint-baseline.json`` with written justifications.  See
``docs/static_analysis.md`` for the rule catalogue and the baseline
workflow.
"""

from __future__ import annotations

from . import checkers  # noqa: F401  (imports register the checkers)
from . import parallel_checkers  # noqa: F401  (registers the project suite)
from . import merge_checkers  # noqa: F401  (registers store-merge-purity)
from .baseline import BaselineEntry, apply_baseline, load_baseline, write_baseline
from .cache import LintCache, checker_fingerprint, project_fingerprint
from .callgraph import CallGraph, SubmissionSite, build_callgraph, callgraph_for
from .changed import ChangedModeError, changed_python_files
from .engine import (
    Checker,
    FileContext,
    Finding,
    all_checkers,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    main,
    parse_file_suppressions,
    parse_suppressions,
    register,
    statement_spans,
)
from .project import ProjectModel, build_project
from .sarif import render_sarif, to_sarif

__all__ = [
    "BaselineEntry",
    "CallGraph",
    "ChangedModeError",
    "Checker",
    "FileContext",
    "Finding",
    "LintCache",
    "ProjectModel",
    "SubmissionSite",
    "all_checkers",
    "apply_baseline",
    "build_callgraph",
    "build_project",
    "callgraph_for",
    "changed_python_files",
    "checker_fingerprint",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "parse_file_suppressions",
    "parse_suppressions",
    "project_fingerprint",
    "register",
    "render_sarif",
    "statement_spans",
    "to_sarif",
    "write_baseline",
]
