"""Project lint: AST checks for TreeLattice invariants.

Usage::

    python -m repro.devtools.lint src tests benchmarks
    python -m repro.devtools.lint --format json src/repro/core
    python -m repro.devtools.lint --list-rules

Suppress a finding on its line with ``# lint: disable=<rule>`` (comma
separated for several rules, ``all`` for every rule).  See
``docs/static_analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from . import checkers  # noqa: F401  (imports register the checkers)
from .engine import (
    Checker,
    FileContext,
    Finding,
    all_checkers,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    main,
    parse_suppressions,
    register,
)

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "all_checkers",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "register",
]
