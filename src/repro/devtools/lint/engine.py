"""The AST lint engine: findings, checker registry, file runner, CLI.

The engine is deliberately small: a checker is an :class:`ast.NodeVisitor`
subclass with a ``rule`` id and a ``description``; it reports findings
through its :class:`FileContext`.  The runner parses each file once,
runs every registered checker over the module AST, filters findings
suppressed by ``# lint: disable=<rule>`` comments on the offending line,
and renders the survivors as text or JSON.

Exit codes follow the CLI convention of :mod:`repro.cli`: ``0`` when the
tree is clean, ``1`` when findings remain, ``2`` for usage errors
(unknown rule names, paths that do not exist).
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Checker",
    "register",
    "all_checkers",
    "parse_suppressions",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "main",
]


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


class FileContext:
    """Per-file state shared by every checker run over that file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", -1) + 1,
                rule=rule,
                message=message,
            )
        )


class Checker(ast.NodeVisitor):
    """Base class for lint checks.

    Subclasses set ``rule`` (the id used in reports and ``disable=``
    comments) and ``description`` (one line, shown by ``--list-rules``),
    then implement ``visit_*`` methods that call :meth:`report`.  A
    checker that only makes sense for part of the tree (e.g. public-API
    rules scoped to ``repro.core``/``repro.trees``) overrides
    :meth:`applies_to`.
    """

    rule: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether this checker should run over ``path`` at all."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.report(node, self.rule, message)

    def run(self) -> None:
        """Run the check over the whole module (default: visit the AST)."""
        self.visit(self.ctx.tree)


_CHECKERS: list[type[Checker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} has no rule id")
    if any(existing.rule == cls.rule for existing in _CHECKERS):
        raise ValueError(f"duplicate checker rule id {cls.rule!r}")
    _CHECKERS.append(cls)
    return cls


def all_checkers() -> tuple[type[Checker], ...]:
    """Every registered checker, in registration order."""
    return tuple(_CHECKERS)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line.

    The sentinel rule id ``all`` disables every check on the line.
    Comments attach to the physical line they appear on; put them on the
    line the finding is reported for.
    """
    suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if match:
            rules = {rule.strip() for rule in match.group(1).split(",")}
            suppressed[lineno] = rules
    return suppressed


def _is_suppressed(finding: Finding, suppressed: dict[int, set[str]]) -> bool:
    rules = suppressed.get(finding.line)
    if rules is None:
        return False
    return finding.rule in rules or "all" in rules


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one source string; returns surviving findings, sorted."""
    wanted = set(rules) if rules is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path, source, tree)
    for checker_cls in all_checkers():
        if wanted is not None and checker_cls.rule not in wanted:
            continue
        if not checker_cls.applies_to(path):
            continue
        checker_cls(ctx).run()
    suppressed = parse_suppressions(source)
    return sorted(f for f in ctx.findings if not _is_suppressed(f, suppressed))


def lint_file(path: Path, rules: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), rules)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories).

    Raises :class:`FileNotFoundError` for a path that does not exist, so
    typos in CI configuration fail loudly instead of linting nothing.
    """
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path], rules: Iterable[str] | None = None
) -> list[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules))
    return findings


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project lint: AST checks for TreeLattice invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.devtools.lint``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    known_rules = {cls.rule for cls in all_checkers()}
    if args.list_rules:
        for cls in all_checkers():
            print(f"{cls.rule:24} {cls.description}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    if args.rules:
        unknown = sorted(set(args.rules) - known_rules)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    try:
        findings = lint_paths(args.paths, rules=args.rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"{len(findings)} finding(s)")
    return 1 if findings else 0
