"""The AST lint engine: findings, checker registry, file runner, CLI.

The engine is deliberately small: a checker is an :class:`ast.NodeVisitor`
subclass with a ``rule`` id and a ``description``; it reports findings
through its :class:`FileContext`.  The runner parses each file once,
builds the whole-program model for checkers that need it
(``requires_project``), runs every registered checker over the module
AST, filters findings suppressed by ``# lint: disable=<rule>`` comments
anywhere on the offending *statement's* line span (or a file-level
``# lint: disable-file=<rule>``), and renders the survivors as text,
JSON, or SARIF 2.1.0.

The CLI adds a findings baseline (``--baseline`` /
``--write-baseline`` / ``--fail-stale`` — see
:mod:`~repro.devtools.lint.baseline`), an mtime-keyed incremental cache
(``--cache``, :mod:`~repro.devtools.lint.cache`), and a ``--changed``
mode for pre-commit (:mod:`~repro.devtools.lint.changed`).

Exit codes follow the CLI convention of :mod:`repro.cli`: ``0`` when the
tree is clean, ``1`` when findings remain, ``2`` for usage errors
(unknown rule names, paths that do not exist, git failures).
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator, Sequence

from .project import ProjectModel, build_project

if TYPE_CHECKING:
    from .cache import LintCache

__all__ = [
    "Finding",
    "FileContext",
    "Checker",
    "register",
    "all_checkers",
    "parse_suppressions",
    "parse_file_suppressions",
    "statement_spans",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "main",
]


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


class FileContext:
    """Per-file state shared by every checker run over that file."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        project: ProjectModel | None = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: whole-program model, when the runner built one (``lint_paths``
        #: always does; ``lint_source`` only when handed one).  Checkers
        #: with ``requires_project = True`` are skipped when it is None.
        self.project = project
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", -1) + 1,
                rule=rule,
                message=message,
            )
        )


class Checker(ast.NodeVisitor):
    """Base class for lint checks.

    Subclasses set ``rule`` (the id used in reports and ``disable=``
    comments) and ``description`` (one line, shown by ``--list-rules``),
    then implement ``visit_*`` methods that call :meth:`report`.  A
    checker that only makes sense for part of the tree (e.g. public-API
    rules scoped to ``repro.core``/``repro.trees``) overrides
    :meth:`applies_to`.
    """

    rule: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: project checkers need the whole-program model; the runner skips
    #: them for contexts built without one (e.g. bare ``lint_source``).
    requires_project: ClassVar[bool] = False

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether this checker should run over ``path`` at all."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.report(node, self.rule, message)

    def run(self) -> None:
        """Run the check over the whole module (default: visit the AST)."""
        self.visit(self.ctx.tree)


_CHECKERS: list[type[Checker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} has no rule id")
    if any(existing.rule == cls.rule for existing in _CHECKERS):
        raise ValueError(f"duplicate checker rule id {cls.rule!r}")
    _CHECKERS.append(cls)
    return cls


def all_checkers() -> tuple[type[Checker], ...]:
    """Every registered checker, in registration order."""
    return tuple(_CHECKERS)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")
_DISABLE_FILE_RE = re.compile(
    r"#\s*lint:\s*disable-file=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line.

    The sentinel rule id ``all`` disables every check.  A comment
    anywhere on a statement's line span suppresses findings reported
    for that statement (see :func:`statement_spans`); a comment on its
    own line — outside any statement — suppresses nothing.
    """
    suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if match:
            rules = {rule.strip() for rule in match.group(1).split(",")}
            suppressed[lineno] = rules
    return suppressed


def parse_file_suppressions(source: str) -> set[str]:
    """Rule ids disabled for the whole file via ``disable-file=``."""
    rules: set[str] = set()
    for line in source.splitlines():
        match = _DISABLE_FILE_RE.search(line)
        if match:
            rules.update(rule.strip() for rule in match.group(1).split(","))
    return rules


def statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line span of every statement, for suppression matching.

    A simple statement spans ``lineno..end_lineno`` — a ``disable=``
    comment anywhere inside a multi-line call or assignment counts.  A
    compound statement (``def``/``if``/``with``/``for``/``try``…)
    contributes only its *header* (``lineno`` up to the line before its
    first body statement), so a comment inside a function body never
    blankets findings on the ``def`` line's siblings.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.ExceptHandler)):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            first_body = min(child.lineno for child in body if isinstance(child, ast.stmt))
            end = max(start, first_body - 1)
        else:
            end = getattr(node, "end_lineno", None) or start
        spans.append((start, end))
    return spans


def _is_suppressed(
    finding: Finding,
    suppressed: dict[int, set[str]],
    spans: list[tuple[int, int]],
    file_rules: set[str],
) -> bool:
    if finding.rule in file_rules or "all" in file_rules:
        return True

    def matches(rules: set[str] | None) -> bool:
        return rules is not None and (finding.rule in rules or "all" in rules)

    if matches(suppressed.get(finding.line)):
        return True
    if not suppressed:
        return False
    for start, end in spans:
        if start <= finding.line <= end:
            for lineno in range(start, end + 1):
                if matches(suppressed.get(lineno)):
                    return True
    return False


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def _lint_split(
    source: str,
    path: str,
    rules: Iterable[str] | None,
    project: ProjectModel | None,
    need_local: bool = True,
    need_project: bool = True,
) -> tuple[list[Finding], list[Finding]]:
    """Run checkers over one source; returns (local, project) findings.

    The split exists for the incremental cache: per-file findings stay
    valid while the file is unchanged, project findings only while the
    whole modelled project is unchanged.
    """
    wanted = set(rules) if rules is not None else None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 0,
            col=exc.offset or 0,
            rule="syntax-error",
            message=f"file does not parse: {exc.msg}",
        )
        return ([finding] if need_local else [], [])
    local_ctx = FileContext(path, source, tree, project)
    project_ctx = FileContext(path, source, tree, project)
    for checker_cls in all_checkers():
        if wanted is not None and checker_cls.rule not in wanted:
            continue
        if not checker_cls.applies_to(path):
            continue
        if checker_cls.requires_project:
            if project is None or not need_project:
                continue
            checker_cls(project_ctx).run()
        else:
            if not need_local:
                continue
            checker_cls(local_ctx).run()
    suppressed = parse_suppressions(source)
    file_rules = parse_file_suppressions(source)
    spans = statement_spans(tree) if (suppressed or file_rules) else []
    local = sorted(
        f for f in local_ctx.findings if not _is_suppressed(f, suppressed, spans, file_rules)
    )
    project_findings = sorted(
        f for f in project_ctx.findings if not _is_suppressed(f, suppressed, spans, file_rules)
    )
    return local, project_findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[str] | None = None,
    project: ProjectModel | None = None,
) -> list[Finding]:
    """Lint one source string; returns surviving findings, sorted.

    Checkers with ``requires_project`` only run when a
    :class:`~repro.devtools.lint.project.ProjectModel` is supplied (and
    ``path`` names a modelled file); :func:`lint_paths` always builds
    one.
    """
    local, project_findings = _lint_split(source, path, rules, project)
    return sorted([*local, *project_findings])


def lint_file(
    path: Path,
    rules: Iterable[str] | None = None,
    project: ProjectModel | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), rules, project)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories).

    Raises :class:`FileNotFoundError` for a path that does not exist, so
    typos in CI configuration fail loudly instead of linting nothing.
    """
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    rules: Iterable[str] | None = None,
    cache: "LintCache | None" = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location.

    Builds the whole-program model once (loading the targets' entire
    enclosing packages, so partial lints still resolve cross-module
    names).  With a :class:`~repro.devtools.lint.cache.LintCache`,
    unchanged files are served from disk instead of re-checked.
    """
    files = list(iter_python_files(paths))
    project = build_project(files)
    project_fp = ""
    if cache is not None:
        from .cache import project_fingerprint

        project_fp = project_fingerprint(project)
    rule_list = list(rules) if rules is not None else None
    findings: list[Finding] = []
    for file_path in files:
        local = cache.lookup_local(file_path) if cache is not None else None
        proj = cache.lookup_project(file_path, project_fp) if cache is not None else None
        if local is None or proj is None:
            source = file_path.read_text(encoding="utf-8")
            computed_local, computed_project = _lint_split(
                source,
                str(file_path),
                rule_list,
                project,
                need_local=local is None,
                need_project=proj is None,
            )
            if local is None:
                local = computed_local
            if proj is None:
                proj = computed_project
            if cache is not None:
                cache.misses += 1
        elif cache is not None:
            cache.hits += 1
        if cache is not None:
            cache.store(file_path, local, proj)
        findings.extend(sorted([*local, *proj]))
    if cache is not None:
        cache.project_fp = project_fp
    return findings


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project lint: AST checks for TreeLattice invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed since git merge-base HEAD origin/main",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help="subtract findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the --baseline file from this run's findings and exit",
    )
    parser.add_argument(
        "--fail-stale",
        action="store_true",
        help="exit 1 when baseline entries no longer reproduce",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        metavar="FILE",
        help="incremental cache file (created on first use)",
    )
    return parser


def _render(findings: list[Finding], fmt: str) -> str:
    if fmt == "json":
        return (
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
            + "\n"
        )
    if fmt == "sarif":
        from .sarif import render_sarif

        return render_sarif(findings)
    lines = [f.render() for f in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines) + ("\n" if lines else "")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.devtools.lint``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    known_rules = {cls.rule for cls in all_checkers()}
    if args.list_rules:
        for cls in all_checkers():
            print(f"{cls.rule:24} {cls.description}")
        return 0
    if args.write_baseline and args.baseline is None:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    if args.changed:
        if args.paths:
            print("error: --changed cannot be combined with explicit paths", file=sys.stderr)
            return 2
        from .changed import ChangedModeError, changed_python_files

        try:
            paths: list[Path] = changed_python_files()
        except ChangedModeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        paths = list(args.paths)
        if not paths:
            parser.print_usage(sys.stderr)
            print("error: no paths given", file=sys.stderr)
            return 2
    if args.rules:
        unknown = sorted(set(args.rules) - known_rules)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    cache = None
    if args.cache is not None:
        from .cache import LintCache, checker_fingerprint

        cache = LintCache.load(args.cache, checker_fingerprint(args.rules))

    if paths:
        try:
            findings = lint_paths(paths, rules=args.rules, cache=cache)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        findings = []  # --changed with a clean tree
    if cache is not None:
        cache.save()

    from .baseline import BaselineError, apply_baseline, load_baseline, write_baseline

    entries = []
    if args.baseline is not None and args.baseline.exists():
        try:
            entries = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.write_baseline:
        written = write_baseline(args.baseline, findings, entries)
        print(f"wrote {len(written)} baseline entr{'y' if len(written) == 1 else 'ies'} to {args.baseline}")
        return 0
    new_findings, stale = apply_baseline(findings, entries)

    rendered = _render(new_findings, args.format)
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
    elif rendered:
        sys.stdout.write(rendered)

    for entry in stale:
        print(
            f"stale baseline entry: {entry.path}: [{entry.rule}] {entry.message}",
            file=sys.stderr,
        )
    if stale:
        hint = "remove them with --write-baseline" if not args.fail_stale else "failing (--fail-stale)"
        print(f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}; {hint}", file=sys.stderr)

    if new_findings:
        return 1
    if stale and args.fail_stale:
        return 1
    return 0
