"""Conservative call graph + executor submission-site discovery.

Built on the :class:`~repro.devtools.lint.project.ProjectModel`, this
module answers the question the parallel-determinism checkers hinge on:
*which functions can run inside a worker process?*  It finds every
``ProcessPoolExecutor``/``ThreadPoolExecutor`` construction and every
``.map(fn, ...)`` / ``.submit(fn, ...)`` call on a tracked executor,
resolves the submitted callables and pool initializers through the
symbol tables, and closes the set under a conservative call relation:

* plain calls ``f(...)`` resolve through the module symbol table and
  import aliases (including re-export chains);
* method calls resolve through ``self``, parameter/variable annotations,
  and module-level instances; dynamic dispatch is over-approximated by
  including every project subclass override of the resolved method;
* anything unresolvable contributes no edge (the checkers would rather
  miss an exotic call than drown the build in false positives).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Sequence

from .project import ClassInfo, FunctionInfo, ModuleInfo, ProjectModel, Resolved

__all__ = ["SubmissionSite", "CallGraph", "build_callgraph", "EXECUTOR_CLASSES"]

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Fully-qualified executor classes whose ``map``/``submit`` ship work
#: (and arguments) across a pickling process/thread boundary.
EXECUTOR_CLASSES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

_SUBMIT_METHODS = frozenset({"map", "submit", "apply_async", "map_async", "imap", "imap_unordered"})

#: Project functions that forward their first argument to a process
#: pool as the task callable (arg 2 carries the task payloads).  The
#: retry engine is the only member today: both parallel paths submit
#: through :func:`repro.resilience.runner.run_chunks`, so a call to it
#: is a submission site — the submitted function is a worker root and
#: its tasks cross the pickle boundary — even though the literal
#: ``.submit()`` happens behind the :class:`~repro.parallel.pool.
#: PoolSupervisor` indirection.
TASK_RUNNERS = frozenset({"repro.resilience.runner:run_chunks"})


@dataclasses.dataclass
class SubmissionSite:
    """One place where work crosses an executor boundary."""

    kind: str  # "map" | "submit" | "initializer" | ...
    module: str
    #: the ``.map``/``.submit`` call (or the executor constructor for
    #: initializer sites), for location reporting.
    call: ast.Call
    #: enclosing function, if the site is inside one.
    enclosing: FunctionInfo | None
    #: submitted callable expression (first positional arg / kwarg value).
    func_expr: ast.expr | None
    #: resolved target of the submitted callable, if resolvable.
    target: FunctionInfo | None
    #: argument expressions that cross the boundary with the task
    #: (``submit`` args/kwargs, ``initargs`` elements).  ``map``
    #: iterables are consumed parent-side, so they are excluded.
    payload: list[ast.expr] = dataclasses.field(default_factory=list)
    #: fully-qualified executor class, when known (empty for attribute-
    #: annotated executors whose constructor was not seen).
    executor_target: str = ""

    @property
    def crosses_pickle_boundary(self) -> bool:
        """True unless the executor is known to be thread-based."""
        return "Thread" not in self.executor_target


class CallGraph:
    """Edges between project functions + the discovered submission sites."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self.edges: dict[str, set[str]] = {}
        self.sites: list[SubmissionSite] = []

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def callees(self, ident: str) -> set[str]:
        return self.edges.get(ident, set())

    def reachable(self, roots: Sequence[str]) -> dict[str, str]:
        """``function ident -> root ident that first reaches it`` (BFS)."""
        origin: dict[str, str] = {}
        queue: list[str] = []
        for root in roots:
            if root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.callees(current)):
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin

    def worker_roots(self) -> list[str]:
        """Idents of functions submitted as tasks or pool initializers."""
        out: dict[str, None] = {}
        for site in self.sites:
            if site.target is not None:
                out.setdefault(site.target.ident, None)
        return list(out)

    def initializer_idents(self) -> set[str]:
        return {
            site.target.ident
            for site in self.sites
            if site.kind == "initializer" and site.target is not None
        }


def build_callgraph(project: ProjectModel) -> CallGraph:
    graph = CallGraph(project)
    for module in project.modules.values():
        for function in _all_functions(module):
            _FunctionScan(graph, module, function).run()
        # Module-level executor use (rare, but scripts do it).
        _FunctionScan(graph, module, None).run()
    return graph


def callgraph_for(project: ProjectModel) -> CallGraph:
    """Memoised access used by the checkers (one graph per model)."""
    graph = project.analysis("callgraph", build_callgraph)
    assert isinstance(graph, CallGraph)
    return graph


def _all_functions(module: ModuleInfo) -> Iterator[FunctionInfo]:
    yield from module.functions.values()
    for cls in module.classes.values():
        yield from cls.methods.values()


class _FunctionScan:
    """Collect edges + submission sites for one function (or module) body."""

    def __init__(
        self, graph: CallGraph, module: ModuleInfo, function: FunctionInfo | None
    ) -> None:
        self.graph = graph
        self.project = graph.project
        self.module = module
        self.function = function
        self.owner: ClassInfo | None = (
            module.classes.get(function.owner)
            if function is not None and function.owner is not None
            else None
        )
        #: local name -> project class the value is an instance of.
        self.local_classes: dict[str, ClassInfo] = {}
        #: local name -> executor class target it is bound to.
        self.executors: dict[str, str] = {}
        #: function-local import bindings (lazy imports inside bodies).
        self.local_imports: dict[str, Resolved] = {}

    # -- entry ---------------------------------------------------------

    def run(self) -> None:
        body = self._body()
        for stmt in body:
            self._seed_locals(stmt)
        for node in self._walk(body):
            if isinstance(node, ast.Call):
                self._call(node)

    def _body(self) -> list[ast.stmt]:
        if self.function is not None:
            self._seed_params(self.function.node)
            return list(self.function.node.body)
        return [
            stmt
            for stmt in self.module.tree.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]

    def _walk(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        for stmt in body:
            yield from ast.walk(stmt)

    # -- local typing --------------------------------------------------

    def _seed_params(self, node: _FunctionNode) -> None:
        args = node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for arg in params:
            if arg.annotation is None:
                continue
            cls = self.project.annotation_class(self.module, arg.annotation)
            if cls is not None:
                self.local_classes[arg.arg] = cls

    def _resolve(self, expr: ast.expr) -> Resolved | None:
        """Project resolution, with function-local imports layered on."""
        parts: list[str] = []
        current = expr
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name) and current.id in self.local_imports:
            resolved: Resolved | None = self.local_imports[current.id]
            for attr in reversed(parts):
                if resolved is None:
                    return None
                resolved = self.project.member(resolved, attr)
            return resolved
        return self.project.resolve_expr(self.module, expr)

    def _seed_locals(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.ImportFrom):
                base = _local_import_base(node, self.module)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    target_module = self.project.modules.get(base)
                    if target_module is not None:
                        resolved = self.project.resolve_name(target_module, alias.name)
                        if resolved is None and f"{base}.{alias.name}" in self.project.modules:
                            resolved = Resolved(kind="module", module=f"{base}.{alias.name}")
                    elif f"{base}.{alias.name}" in self.project.modules:
                        resolved = Resolved(kind="module", module=f"{base}.{alias.name}")
                    else:
                        resolved = Resolved(kind="external", target=f"{base}.{alias.name}")
                    if resolved is not None:
                        self.local_imports[bound] = resolved
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    dotted = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    if dotted in self.project.modules:
                        self.local_imports[bound] = Resolved(kind="module", module=dotted)
                    else:
                        self.local_imports[bound] = Resolved(kind="external", target=dotted)
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._bind(target.id, node.value)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    ctor = self._executor_ctor_target(node.value)
                    if ctor is not None:
                        self.executors[f"self.{target.attr}"] = ctor
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                cls = self.project.annotation_class(self.module, node.annotation)
                if cls is not None:
                    self.local_classes[node.target.id] = cls
                if node.value is not None:
                    self._bind(node.target.id, node.value)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        item.optional_vars is not None
                        and isinstance(item.optional_vars, ast.Name)
                        and isinstance(item.context_expr, ast.Call)
                    ):
                        self._bind(item.optional_vars.id, item.context_expr)

    def _bind(self, name: str, value: ast.expr) -> None:
        ctor = self._executor_ctor_target(value)
        if ctor is not None:
            self.executors[name] = ctor
            return
        if isinstance(value, ast.Call):
            resolved = self._resolve(value.func)
            if resolved is not None and resolved.kind == "class":
                cls = self.project.get_class(resolved.ident)
                if cls is not None:
                    self.local_classes[name] = cls
            return
        resolved_value = self._resolve(value)
        if resolved_value is not None and resolved_value.kind == "variable":
            cls = self.project.variable_class(resolved_value)
            if cls is not None:
                self.local_classes[name] = cls

    def _executor_ctor_target(self, expr: ast.expr) -> str | None:
        if not isinstance(expr, ast.Call):
            return None
        resolved = self._resolve(expr.func)
        if (
            resolved is not None
            and resolved.kind == "external"
            and resolved.target in EXECUTOR_CLASSES
        ):
            return resolved.target
        return None

    def _executor_base_target(self, expr: ast.expr) -> str | None:
        """Executor class behind ``expr`` when it names a tracked pool."""
        if isinstance(expr, ast.Name):
            return self.executors.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            known = self.executors.get(f"self.{expr.attr}")
            if known is not None:
                return known
            if self.owner is not None:
                annotation = self.owner.attr_annotations.get(expr.attr)
                if annotation is not None:
                    heads = self.project.annotation_head(annotation)
                    if "ProcessPoolExecutor" in heads or "Pool" in heads:
                        return "concurrent.futures.ProcessPoolExecutor"
                    if "ThreadPoolExecutor" in heads:
                        return "concurrent.futures.ThreadPoolExecutor"
                value = self.owner.attr_values.get(expr.attr)
                if value is not None:
                    return self._executor_ctor_target(value)
        return None

    # -- calls ---------------------------------------------------------

    def _call(self, node: ast.Call) -> None:
        ctor_target = self._executor_ctor_target(node)
        if ctor_target is not None:
            self._initializer_site(node, ctor_target)
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
            base_target = self._executor_base_target(func.value)
            if base_target is not None:
                self._submission_site(node, func.attr, base_target)
        self._task_runner_site(node)
        self._edge_for_call(node)

    def _initializer_site(self, node: ast.Call, executor_target: str) -> None:
        initializer: ast.expr | None = None
        payload: list[ast.expr] = []
        for kw in node.keywords:
            if kw.arg == "initializer":
                initializer = kw.value
            elif kw.arg == "initargs":
                if isinstance(kw.value, (ast.Tuple, ast.List)):
                    payload.extend(kw.value.elts)
                else:
                    payload.append(kw.value)
        if initializer is None and not payload:
            return
        target = self._resolve_callable(initializer) if initializer is not None else None
        self.graph.sites.append(
            SubmissionSite(
                kind="initializer",
                module=self.module.name,
                call=node,
                enclosing=self.function,
                func_expr=initializer,
                target=target,
                payload=payload,
                executor_target=executor_target,
            )
        )
        if target is not None and self.function is not None:
            self.graph.add_edge(self.function.ident, target.ident)

    def _submission_site(self, node: ast.Call, kind: str, executor_target: str) -> None:
        func_expr = node.args[0] if node.args else None
        payload: list[ast.expr] = []
        if kind != "map":
            payload.extend(node.args[1:])
            payload.extend(kw.value for kw in node.keywords if kw.arg not in (None,))
        target = self._resolve_callable(func_expr) if func_expr is not None else None
        self.graph.sites.append(
            SubmissionSite(
                kind=kind,
                module=self.module.name,
                call=node,
                enclosing=self.function,
                func_expr=func_expr,
                target=target,
                payload=payload,
                executor_target=executor_target,
            )
        )

    def _task_runner_site(self, node: ast.Call) -> None:
        """Calls to :data:`TASK_RUNNERS` ship ``args[0]`` to a worker."""
        resolved = self._resolve(node.func)
        if (
            resolved is None
            or resolved.kind != "function"
            or resolved.ident not in TASK_RUNNERS
        ):
            return
        func_expr = node.args[0] if node.args else None
        payload = list(node.args[1:])
        target = self._resolve_callable(func_expr) if func_expr is not None else None
        self.graph.sites.append(
            SubmissionSite(
                kind="submit",
                module=self.module.name,
                call=node,
                enclosing=self.function,
                func_expr=func_expr,
                target=target,
                payload=payload,
                executor_target="concurrent.futures.ProcessPoolExecutor",
            )
        )

    def _resolve_callable(self, expr: ast.expr) -> FunctionInfo | None:
        resolved = self._resolve(expr)
        if resolved is None:
            return None
        if resolved.kind == "function":
            return self.project.get_function(resolved.ident)
        return None

    def _edge_for_call(self, node: ast.Call) -> None:
        if self.function is None:
            return
        caller = self.function.ident
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.local_classes or func.id in self.executors:
                return
            resolved = self._resolve(func)
            self._edge_to(caller, resolved)
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and self.owner is not None:
                for impl in self.project.method_implementations(self.owner.ident, func.attr):
                    self.graph.add_edge(caller, impl.ident)
                return
            cls = self.local_classes.get(base.id)
            if cls is not None:
                for impl in self.project.method_implementations(cls.ident, func.attr):
                    self.graph.add_edge(caller, impl.ident)
                return
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and self.owner is not None
        ):
            attr_owner = self.project.class_member(self.owner.ident, base.attr)
            if attr_owner is not None and attr_owner.kind == "variable":
                cls = self.project.variable_class(attr_owner)
                if cls is not None:
                    for impl in self.project.method_implementations(cls.ident, func.attr):
                        self.graph.add_edge(caller, impl.ident)
                    return
        resolved = self._resolve(func)
        self._edge_to(caller, resolved)

    def _edge_to(self, caller: str, resolved: Resolved | None) -> None:
        if resolved is None:
            return
        if resolved.kind == "function":
            info = self.project.get_function(resolved.ident)
            if info is not None:
                self.graph.add_edge(caller, info.ident)
        elif resolved.kind == "class":
            cls = self.project.get_class(resolved.ident)
            if cls is not None:
                init = self.project.class_member(cls.ident, "__init__")
                if init is not None and init.kind == "function":
                    self.graph.add_edge(caller, init.ident)
        elif resolved.kind == "variable":
            # Calling a module-level variable: a callable instance or an
            # aliased function; resolve class -> __call__ conservatively.
            cls = self.project.variable_class(resolved)
            if cls is not None:
                call = self.project.class_member(cls.ident, "__call__")
                if call is not None and call.kind == "function":
                    self.graph.add_edge(caller, call.ident)


def _local_import_base(stmt: ast.ImportFrom, module: ModuleInfo) -> str | None:
    """Base module of a function-local ``from X import Y`` statement."""
    if stmt.level == 0:
        return stmt.module
    module_name = module.name
    package = module_name if module.is_package else module_name.rpartition(".")[0]
    parts = package.split(".") if package else ([module_name] if module_name else [])
    cut = stmt.level - 1
    if cut > len(parts):
        return None
    base_parts = parts[: len(parts) - cut] if cut else parts
    if stmt.module:
        base_parts = base_parts + stmt.module.split(".")
    return ".".join(base_parts) if base_parts else None
