"""``python -m repro.devtools.lint`` entry point."""

from . import main

raise SystemExit(main())
