"""Project-specific lint checks encoding TreeLattice's paper invariants.

Each checker guards one convention the estimators' correctness rests on
(see ``docs/static_analysis.md`` for the full catalogue with the paper
rationale per rule):

``twig-arg-mutation``
    Estimator entry points must not mutate their ``TwigQuery`` /
    ``LabeledTree`` arguments (Theorem 1 evaluates one query tree many
    times; an in-place edit corrupts every later decomposition step).
``opaque-canon``
    Canonical encodings are opaque dictionary keys; peeking inside
    (slicing, indexing, concatenation, destructuring) must go through
    the ``canon_*`` accessors.
``unguarded-obs``
    Recording calls into :mod:`repro.obs` must sit behind an
    ``obs.enabled`` guard so the disabled pipeline stays allocation-free.
``mutable-default``
    No mutable default argument values.
``bare-except``
    No bare ``except:`` clauses.
``float-eq``
    No ``==``/``!=`` on selectivity-carrying floats.
``dict-order-tiebreak``
    No ``min``/``max`` tie-breaking over dict/set iteration order.
``public-annotations``
    Public functions in ``repro.core`` / ``repro.trees`` carry complete
    type annotations.
``store-internals``
    Summary-store internals (``_counts`` and the intern tables) are
    private to ``repro.store`` / the interner; everything else goes
    through the :class:`~repro.store.SummaryStore` surface.
``kernel-purity``
    The kernel layer imports :mod:`repro.obs` only through its guarded
    ``record.py`` bridge, and executor hot loops stay free of recording
    calls and string formatting (no allocation when obs is disabled).
``fault-site-purity``
    The chaos harness's injection machinery (:class:`~repro.resilience.
    FaultPlan`, ``corrupt_bytes``, the ``REPRO_FAULTS`` activation
    variable) stays confined to ``repro/resilience/``; production
    fault sites outside it are baselined with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .engine import Checker, FileContext, register

__all__ = [
    "MutableDefaultChecker",
    "BareExceptChecker",
    "FloatEqChecker",
    "UnguardedObsChecker",
    "TwigArgMutationChecker",
    "OpaqueCanonChecker",
    "DictOrderTiebreakChecker",
    "PublicAnnotationsChecker",
    "StoreInternalsChecker",
    "KernelPurityChecker",
    "FaultSitePurityChecker",
]

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` id of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _attribute_chain(node: ast.expr) -> list[str] | None:
    """``obs.registry.counter`` -> ``["obs", "registry", "counter"]``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _all_arguments(args: ast.arguments) -> Iterator[ast.arg]:
    yield from args.posonlyargs
    yield from args.args
    if args.vararg is not None:
        yield args.vararg
    yield from args.kwonlyargs
    if args.kwarg is not None:
        yield args.kwarg


# ----------------------------------------------------------------------
# Generic hygiene checks
# ----------------------------------------------------------------------


@register
class MutableDefaultChecker(Checker):
    """Mutable default argument values are shared across calls."""

    rule = "mutable-default"
    description = "no mutable default argument values (list/dict/set literals)"

    _MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def _check_defaults(self, node: _FunctionNode | ast.Lambda) -> None:
        defaults: list[ast.expr] = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            if isinstance(default, self._MUTABLE_LITERALS):
                self.report(default, "mutable default argument value")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            ):
                self.report(default, "mutable default argument value")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


@register
class BareExceptChecker(Checker):
    """Bare ``except:`` swallows SystemExit/KeyboardInterrupt too."""

    rule = "bare-except"
    description = "no bare except: clauses"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare except: name the exception type")
        self.generic_visit(node)


@register
class FloatEqChecker(Checker):
    """Selectivities are floats built by long product/quotient chains."""

    rule = "float-eq"
    description = "no ==/!= on selectivity-carrying floats (library code)"

    _NAME_FRAGMENTS = ("estimate", "selectivit")

    @classmethod
    def applies_to(cls, path: str) -> bool:
        # Tests and benchmarks deliberately pin exact values (the
        # arithmetic is deterministic); the invariant protects the
        # estimators themselves.
        normalized = path.replace("\\", "/")
        parts = normalized.split("/")
        filename = parts[-1]
        return (
            "tests" not in parts
            and "benchmarks" not in parts
            and not filename.startswith(("test_", "bench_"))
        )

    def _identifier(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _is_suspect(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        identifier = self._identifier(node)
        if identifier is None:
            return False
        lowered = identifier.lower()
        return any(fragment in lowered for fragment in self._NAME_FRAGMENTS)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if self._is_suspect(left) or self._is_suspect(right):
                self.report(
                    node,
                    "float equality on a selectivity value; use a tolerance, "
                    "or <= 0.0 for exact-zero sentinels",
                )
                break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Observability guard
# ----------------------------------------------------------------------


def _is_obs_enabled(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "enabled"
        and isinstance(node.value, ast.Name)
        and node.value.id == "obs"
    )


def _test_asserts_enabled(test: ast.expr) -> bool:
    """True for ``obs.enabled`` or ``obs.enabled and ...`` tests."""
    if _is_obs_enabled(test):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_is_obs_enabled(value) for value in test.values)
    return False


def _test_denies_enabled(test: ast.expr) -> bool:
    """True for ``not obs.enabled`` tests."""
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _is_obs_enabled(test.operand)
    )


def _terminates(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register
class UnguardedObsChecker(Checker):
    """Recording obs calls outside an ``obs.enabled`` guard allocate
    label tuples and metric objects on the disabled hot path."""

    rule = "unguarded-obs"
    description = "obs recording calls must be guarded by obs.enabled"

    _RECORDING_ROOTS = {"registry", "tracer", "span_tracer"}
    _RECORDING_CALLS = {"event", "span", "span_point"}

    def _is_recording_call(self, func: ast.expr) -> bool:
        chain = _attribute_chain(func)
        if chain is None or len(chain) < 2 or chain[0] != "obs":
            return False
        return chain[1] in self._RECORDING_ROOTS or chain[1] in self._RECORDING_CALLS

    def run(self) -> None:
        self._block(self.ctx.tree.body, guarded=False)

    def _block(self, stmts: Iterable[ast.stmt], guarded: bool) -> None:
        guard = guarded
        for stmt in stmts:
            self._stmt(stmt, guard)
            # `if not obs.enabled: return` guards the rest of the block.
            if (
                isinstance(stmt, ast.If)
                and _test_denies_enabled(stmt.test)
                and stmt.body
                and _terminates(stmt.body[-1])
                and not stmt.orelse
            ):
                guard = True

    def _stmt(self, stmt: ast.stmt, guarded: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                self._expr(decorator, guarded)
            self._block(stmt.body, guarded=False)
        elif isinstance(stmt, ast.ClassDef):
            self._block(stmt.body, guarded=False)
        elif isinstance(stmt, ast.If):
            if _test_asserts_enabled(stmt.test):
                self._block(stmt.body, True)
                self._block(stmt.orelse, guarded)
            elif _test_denies_enabled(stmt.test):
                self._block(stmt.body, guarded)
                self._block(stmt.orelse, True)
            else:
                self._expr(stmt.test, guarded)
                self._block(stmt.body, guarded)
                self._block(stmt.orelse, guarded)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, guarded)
            self._block(stmt.body, guarded)
            self._block(stmt.orelse, guarded)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, guarded)
            self._block(stmt.body, guarded)
            self._block(stmt.orelse, guarded)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, guarded)
            self._block(stmt.body, guarded)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body, guarded)
            for handler in stmt.handlers:
                self._block(handler.body, guarded)
            self._block(stmt.orelse, guarded)
            self._block(stmt.finalbody, guarded)
        else:
            self._expr(stmt, guarded)

    def _expr(self, node: ast.AST, guarded: bool) -> None:
        if guarded:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and self._is_recording_call(sub.func):
                chain = _attribute_chain(sub.func)
                dotted = ".".join(chain) if chain else "obs call"
                self.report(
                    sub,
                    f"{dotted}(...) outside an `if obs.enabled:` guard "
                    "(or an early `if not obs.enabled: return`)",
                )


# ----------------------------------------------------------------------
# Paper-structure invariants
# ----------------------------------------------------------------------


@register
class TwigArgMutationChecker(Checker):
    """Estimators re-decompose one query tree many times; mutating a
    ``TwigQuery``/``LabeledTree`` argument corrupts later steps."""

    rule = "twig-arg-mutation"
    description = "no mutation of TwigQuery/LabeledTree parameters"

    _TREE_TYPES = ("TwigQuery", "LabeledTree", "Twig")
    _MUTATORS = {
        "add_child",
        "append",
        "extend",
        "insert",
        "pop",
        "remove",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "popitem",
        "add",
        "discard",
    }

    def _tracked_params(self, node: _FunctionNode) -> set[str]:
        tracked: set[str] = set()
        for arg in _all_arguments(node.args):
            if arg.annotation is None:
                continue
            annotation = ast.unparse(arg.annotation)
            if any(name in annotation for name in self._TREE_TYPES):
                tracked.add(arg.arg)
        return tracked

    def _collect_bound_names(self, target: ast.expr, into: set[str]) -> None:
        # Only direct (possibly destructured) name bindings rebind the
        # parameter; `param.attr = x` / `param[k] = x` mutate it instead.
        if isinstance(target, ast.Name):
            into.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._collect_bound_names(element, into)
        elif isinstance(target, ast.Starred):
            self._collect_bound_names(target.value, into)

    def _rebound_names(self, node: _FunctionNode) -> set[str]:
        rebound: set[str] = set()
        for sub in ast.walk(node):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign, ast.For)):
                targets = [sub.target]
            for target in targets:
                self._collect_bound_names(target, rebound)
        return rebound

    def _check_function(self, node: _FunctionNode) -> None:
        tracked = self._tracked_params(node) - self._rebound_names(node)
        if not tracked:
            return
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    if (
                        isinstance(target, (ast.Attribute, ast.Subscript))
                        and _root_name(target) in tracked
                    ):
                        self.report(
                            sub,
                            f"assignment into parameter "
                            f"{_root_name(target)!r} mutates the caller's tree",
                        )
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                root = _root_name(sub.func)
                if root in tracked and sub.func.attr in self._MUTATORS:
                    self.report(
                        sub,
                        f"{root}.{sub.func.attr}(...) mutates the caller's "
                        "tree; work on a .copy()",
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


@register
class OpaqueCanonChecker(Checker):
    """Canonical encodings are opaque keys; structural access must use
    the ``canon_label``/``canon_children``/``canon_size`` accessors."""

    rule = "opaque-canon"
    description = "no indexing/slicing/concatenation of canonical encodings"

    _PRODUCERS = {"canon", "canon_of_subtree", "canon_from_nested", "decode_canon"}

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._scopes: list[set[str]] = [set()]

    def _is_producer_call(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in self._PRODUCERS
        if isinstance(func, ast.Attribute):
            return func.attr in self._PRODUCERS
        return False

    def _is_canon_value(self, node: ast.expr) -> bool:
        if self._is_producer_call(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._scopes)
        return False

    def _enter_scope(self, node: _FunctionNode | ast.Lambda) -> None:
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_producer_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    self.report(
                        node,
                        "destructuring a canonical encoding; use "
                        "canon_label()/canon_children() instead",
                    )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and self._is_producer_call(node.value)
            and isinstance(node.target, ast.Name)
        ):
            self._scopes[-1].add(node.target.id)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_canon_value(node.value):
            self.report(
                node,
                "indexing/slicing a canonical encoding; use "
                "canon_label()/canon_children() instead",
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Mult)) and (
            self._is_canon_value(node.left) or self._is_canon_value(node.right)
        ):
            self.report(
                node,
                "concatenating a canonical encoding; canons are opaque keys",
            )
        self.generic_visit(node)


@register
class DictOrderTiebreakChecker(Checker):
    """``min``/``max`` with a key over a dict/set breaks ties by
    insertion order, making mining/pruning output build-order dependent."""

    rule = "dict-order-tiebreak"
    description = "no min/max tie-breaking over dict/set iteration order"

    _VIEW_METHODS = {"keys", "values", "items"}
    _DICTISH_CALLS = {"dict", "set"}
    _DICTISH_LITERALS = (ast.Dict, ast.DictComp, ast.Set, ast.SetComp)

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._local_dicts: list[set[str]] = [set()]
        self._self_dicts: list[set[str]] = []

    def _is_dictish_value(self, node: ast.expr) -> bool:
        if isinstance(node, self._DICTISH_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._DICTISH_CALLS
        )

    def _is_dictish_expr(self, node: ast.expr) -> bool:
        if self._is_dictish_value(node):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._VIEW_METHODS
        ):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._local_dicts)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self._self_dicts
        ):
            return node.attr in self._self_dicts[-1]
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        attrs: set[str] = set()
        for sub in ast.walk(node):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign) and self._is_dictish_value(sub.value):
                targets = sub.targets
            elif (
                isinstance(sub, ast.AnnAssign)
                and sub.value is not None
                and self._is_dictish_value(sub.value)
            ):
                targets = [sub.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        self._self_dicts.append(attrs)
        self.generic_visit(node)
        self._self_dicts.pop()

    def _enter_scope(self, node: _FunctionNode | ast.Lambda) -> None:
        self._local_dicts.append(set())
        self.generic_visit(node)
        self._local_dicts.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_dictish_value(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._local_dicts[-1].add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and self._is_dictish_value(node.value)
            and isinstance(node.target, ast.Name)
        ):
            self._local_dicts[-1].add(node.target.id)
        self.generic_visit(node)

    def _key_breaks_ties(self, node: ast.Call) -> bool:
        """True when the ``key=`` lambda ends in the element itself —
        the endorsed ``key=lambda c: (utility(c), c)`` total-order idiom."""
        for kw in node.keywords:
            if kw.arg != "key" or not isinstance(kw.value, ast.Lambda):
                continue
            lam = kw.value
            if not lam.args.args:
                continue
            param = lam.args.args[0].arg
            body = lam.body
            if isinstance(body, ast.Tuple) and any(
                isinstance(el, ast.Name) and el.id == param for el in body.elts
            ):
                return True
            if isinstance(body, ast.Name) and body.id == param:
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("min", "max")
            and any(kw.arg == "key" for kw in node.keywords)
            and node.args
            and self._is_dictish_expr(node.args[0])
            and not self._key_breaks_ties(node)
        ):
            self.report(
                node,
                f"{node.func.id}(..., key=...) over a dict/set breaks ties "
                "by insertion order; add a total-order tiebreak to the key",
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
            and node.args[0].func.id == "iter"
            and node.args[0].args
            and self._is_dictish_expr(node.args[0].args[0])
        ):
            self.report(
                node,
                "next(iter(...)) over a dict/set picks by insertion order; "
                "select deterministically (min/sorted with a full key)",
            )
        self.generic_visit(node)


@register
class PublicAnnotationsChecker(Checker):
    """Public ``repro.core`` / ``repro.trees`` API must be fully typed —
    these are the modules downstream code builds against."""

    rule = "public-annotations"
    description = "public core/trees functions need complete annotations"

    @classmethod
    def applies_to(cls, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return "repro/core/" in normalized or "repro/trees/" in normalized

    def _is_overload(self, node: _FunctionNode) -> bool:
        for decorator in node.decorator_list:
            name = decorator.id if isinstance(decorator, ast.Name) else (
                decorator.attr if isinstance(decorator, ast.Attribute) else None
            )
            if name == "overload":
                return True
        return False

    def _check(self, node: _FunctionNode, *, is_method: bool) -> None:
        if node.name.startswith("_") and not (
            node.name.startswith("__") and node.name.endswith("__")
        ):
            return
        if self._is_overload(node):
            return
        missing: list[str] = []
        for index, arg in enumerate(_all_arguments(node.args)):
            if is_method and index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        if missing:
            self.report(
                node,
                f"public function {node.name!r} has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if node.returns is None:
            self.report(
                node, f"public function {node.name!r} has no return annotation"
            )

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check(stmt, is_method=False)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check(member, is_method=True)


@register
class StoreInternalsChecker(Checker):
    """Summary-store internals are private to ``repro.store``.

    The two count backends (dict / interned array) are interchangeable
    only while every consumer goes through the ``SummaryStore`` surface
    (``get``/``items``/``byte_size``/...).  Reaching for ``._counts`` or
    the intern tables from outside the store layer silently welds the
    caller to one backend and breaks the bit-identity contract between
    them.
    """

    rule = "store-internals"
    description = "no store-internal attribute access outside repro/store/"

    _INTERNAL_ATTRS = {
        "_counts",
        "_codes",
        "_code_ids",
        "_labels",
        "_label_ids",
        "_interner",
    }

    @classmethod
    def applies_to(cls, path: str) -> bool:
        # The store package and the interner's home module own these
        # attributes; everywhere else they are off limits.
        normalized = path.replace("\\", "/")
        return "repro/store/" not in normalized and not normalized.endswith(
            "repro/trees/canonical.py"
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in self._INTERNAL_ATTRS:
            self.report(
                node,
                f"store-internal attribute {node.attr!r} accessed outside "
                "repro/store/; use the SummaryStore API "
                "(get/items/byte_size/...) instead",
            )
        self.generic_visit(node)


@register
class KernelPurityChecker(Checker):
    """Kernel executors stay observability-free and allocation-lean.

    The flat-array executors (:mod:`repro.kernels`) are the per-batch
    hot path: their throughput contract (and the <5%-disabled-overhead
    obs guarantee) holds only while the kernel layer funnels every
    recording through the guarded helpers in ``kernels/record.py`` and
    keeps per-op loops free of recording calls and string formatting
    (both allocate even when observability is off).  Two checks:

    * only ``repro/kernels/record.py`` may import :mod:`repro.obs`, in
      any form (absolute, relative, or submodule);
    * inside executor functions (names starting with ``execute`` /
      ``run``), loop bodies — including comprehensions — may not call
      ``record_*`` helpers or build formatted strings (f-strings with
      interpolation, ``str.format``, ``%``-formatting).
    """

    rule = "kernel-purity"
    description = (
        "kernels import obs only via record.py; executor hot loops stay "
        "free of recording calls and string formatting"
    )

    _EXECUTOR_PREFIXES = ("execute", "run")

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return "repro/kernels/" in path.replace("\\", "/")

    def run(self) -> None:
        self._in_record_module = self.ctx.path.replace("\\", "/").endswith(
            "repro/kernels/record.py"
        )
        self.visit(self.ctx.tree)

    # -- obs import confinement -----------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if not self._in_record_module:
            for alias in node.names:
                if alias.name == "repro.obs" or alias.name.startswith(
                    "repro.obs."
                ):
                    self._report_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self._in_record_module and self._imports_obs(node):
            self._report_import(node)
        self.generic_visit(node)

    @staticmethod
    def _imports_obs(node: ast.ImportFrom) -> bool:
        module = node.module or ""
        if node.level == 0:
            if module == "repro.obs" or module.startswith("repro.obs."):
                return True
            return module == "repro" and any(
                alias.name == "obs" for alias in node.names
            )
        # Relative forms seen from inside repro/kernels/:
        # ``from ..obs import x`` / ``from .. import obs``.
        if module == "obs" or module.startswith("obs."):
            return True
        return not module and any(alias.name == "obs" for alias in node.names)

    def _report_import(self, node: ast.stmt) -> None:
        self.report(
            node,
            "kernel modules must not import repro.obs directly; route "
            "recording through the guarded helpers in kernels/record.py",
        )

    # -- executor hot-loop discipline -----------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_executor(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_executor(node)
        self.generic_visit(node)

    def _check_executor(self, node: _FunctionNode) -> None:
        if not node.name.startswith(self._EXECUTOR_PREFIXES):
            return
        for statement in node.body:
            for child in ast.walk(statement):
                loop_body: list[ast.AST] = []
                if isinstance(child, (ast.For, ast.While)):
                    loop_body = list(child.body)
                elif isinstance(
                    child, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
                ):
                    loop_body = [child.elt]
                elif isinstance(child, ast.DictComp):
                    loop_body = [child.key, child.value]
                for part in loop_body:
                    self._check_hot_body(node.name, part)

    def _check_hot_body(self, function: str, body: ast.AST) -> None:
        for node in ast.walk(body):
            if isinstance(node, ast.Call):
                callee = node.func
                name = None
                if isinstance(callee, ast.Name):
                    name = callee.id
                elif isinstance(callee, ast.Attribute):
                    name = callee.attr
                if name is not None and name.startswith("record_"):
                    self.report(
                        node,
                        f"recording helper {name!r} called inside the "
                        f"per-op loop of kernel executor {function!r}; "
                        "hoist it out of the hot loop",
                    )
                if isinstance(callee, ast.Attribute) and callee.attr == "format":
                    self._report_formatting(node, function)
            elif isinstance(node, ast.JoinedStr) and any(
                isinstance(value, ast.FormattedValue) for value in node.values
            ):
                self._report_formatting(node, function)
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
            ):
                self._report_formatting(node, function)

    def _report_formatting(self, node: ast.AST, function: str) -> None:
        self.report(
            node,
            "string formatting inside the per-op loop of kernel executor "
            f"{function!r} allocates even with observability disabled; "
            "move message building out of the hot loop",
        )


@register
class FaultSitePurityChecker(Checker):
    """Fault-injection machinery stays confined to ``repro/resilience/``.

    The chaos harness is *sanctioned* nondeterminism — it crashes,
    hangs, and corrupts on command — so the worker-purity suite exempts
    it wholesale.  That exemption is only safe while the injection
    hooks cannot leak into production modules unnoticed.  Two checks:

    * no module outside ``repro/resilience/`` may import the injection
      names (``FaultPlan``, ``corrupt_bytes``, ``execute_fault``, ...)
      from :mod:`repro.resilience`, in any form (absolute, relative, or
      submodule).  Deliberate fault sites — e.g. the store loaders'
      ``corrupt_bytes`` hook — are baselined with a justification, so
      every new site is an explicit review decision;
    * no module outside the harness may mention the ``REPRO_FAULTS``
      activation variable: plan activation (and the env read it
      implies) belongs to :func:`repro.resilience.faults.active_plan`
      alone, keeping production behaviour decoupled from the chaos
      spec.

    The resilience *policy* surface (``RetryPolicy``, ``run_chunks``,
    the error taxonomy) is importable from anywhere — only the
    injection side is fenced.
    """

    rule = "fault-site-purity"
    description = (
        "fault-injection hooks (FaultPlan, corrupt_bytes, REPRO_FAULTS) "
        "stay confined to repro/resilience/"
    )

    _INJECTION_NAMES = frozenset(
        {
            "FaultPlan",
            "FaultCommand",
            "FaultRule",
            "fault_plan",
            "active_plan",
            "execute_fault",
            "corrupt_bytes",
        }
    )

    _ENV_VAR = "REPRO_FAULTS"

    @classmethod
    def applies_to(cls, path: str) -> bool:
        # Tests and benchmarks drive the harness on purpose, and the
        # lint suite itself must be able to name what it fences; the
        # fence protects production modules outside the harness.
        normalized = path.replace("\\", "/")
        parts = normalized.split("/")
        filename = parts[-1]
        return (
            "repro/resilience/" not in normalized
            and "repro/devtools/" not in normalized
            and "tests" not in parts
            and "benchmarks" not in parts
            and not filename.startswith(("test_", "bench_"))
        )

    def run(self) -> None:
        self.visit(self.ctx.tree)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._from_resilience(node):
            for alias in node.names:
                if alias.name in self._INJECTION_NAMES:
                    self.report(
                        node,
                        f"imports fault-injection hook {alias.name!r} from "
                        "repro.resilience; injection machinery stays inside "
                        "the resilience harness — deliberate fault sites "
                        "must be baselined with a justification",
                    )
        self.generic_visit(node)

    @staticmethod
    def _from_resilience(node: ast.ImportFrom) -> bool:
        module = node.module or ""
        if node.level == 0:
            return module == "repro.resilience" or module.startswith(
                "repro.resilience."
            )
        # Relative forms seen from inside repro/: ``from ..resilience
        # import x`` / ``from .resilience.faults import x``.
        return module == "resilience" or module.startswith("resilience.")

    def visit_Constant(self, node: ast.Constant) -> None:
        if node.value == self._ENV_VAR:
            self.report(
                node,
                f"references the {self._ENV_VAR} activation variable; only "
                "the resilience harness may read the chaos spec — "
                "production behaviour must not depend on it",
            )
        self.generic_visit(node)
