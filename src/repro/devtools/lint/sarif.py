"""SARIF 2.1.0 export so findings land in GitHub code scanning.

One run, one tool (``repro-lint``), one result per finding.  Rule
metadata comes straight from the checker registry, so ``ruleIndex``
stays consistent with ``--list-rules`` ordering.  Only the stable
subset of the schema is emitted — enough for ``codeql-action/
upload-sarif`` to render annotations, nothing speculative.
"""

from __future__ import annotations

import json
from pathlib import Path

from .engine import Checker, Finding, all_checkers

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"
_INFO_URI = "https://example.invalid/repro/docs/static_analysis.md"


def _rule_descriptor(checker: type[Checker]) -> dict[str, object]:
    return {
        "id": checker.rule,
        "name": checker.rule,
        "shortDescription": {"text": checker.description or checker.rule},
        "defaultConfiguration": {"level": "error"},
    }


def _artifact_uri(path: str) -> str:
    candidate = Path(path)
    return candidate.as_posix()


def to_sarif(findings: list[Finding]) -> dict[str, object]:
    """Build the SARIF log object for ``findings``."""
    checkers = list(all_checkers())
    rule_index = {checker.rule: index for index, checker in enumerate(checkers)}
    rules = [_rule_descriptor(checker) for checker in checkers]
    results: list[dict[str, object]] = []
    for finding in findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "message": {"text": finding.message},
            "level": "error",
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(finding.path),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        index = rule_index.get(finding.rule)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def render_sarif(findings: list[Finding]) -> str:
    """The SARIF log as pretty-printed JSON text."""
    return json.dumps(to_sarif(findings), indent=2) + "\n"
