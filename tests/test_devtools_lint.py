"""The project lint suite: every checker catches its known-bad fixture,
passes its known-good twin, and the tree it guards is itself clean."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    Finding,
    all_checkers,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    main,
    parse_file_suppressions,
    parse_suppressions,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings_for(source: str, rule: str, path: str = "<string>") -> list[Finding]:
    """Run one rule over a dedented snippet, return its findings."""
    return [
        f
        for f in lint_source(textwrap.dedent(source), path=path, rules=[rule])
        if f.rule == rule
    ]


# ----------------------------------------------------------------------
# Per-checker fixtures: one known-bad and one known-good snippet each
# ----------------------------------------------------------------------


def test_mutable_default_bad():
    findings = findings_for(
        """
        def f(xs=[]):
            return xs
        """,
        "mutable-default",
    )
    assert [f.line for f in findings] == [2]


def test_mutable_default_call_and_lambda_bad():
    findings = findings_for(
        """
        def f(mapping=dict()):
            g = lambda acc={1}: acc
            return mapping, g
        """,
        "mutable-default",
    )
    assert [f.line for f in findings] == [2, 3]


def test_mutable_default_good():
    assert not findings_for(
        """
        def f(xs=None, n=0, name="x", pair=(1, 2)):
            return xs
        """,
        "mutable-default",
    )


def test_bare_except_bad():
    findings = findings_for(
        """
        try:
            risky()
        except:
            pass
        """,
        "bare-except",
    )
    assert [f.line for f in findings] == [4]


def test_bare_except_good():
    assert not findings_for(
        """
        try:
            risky()
        except ValueError:
            pass
        """,
        "bare-except",
    )


def test_float_eq_bad_on_estimate_names():
    findings = findings_for(
        """
        def check(estimate, true):
            if estimate == 0.0:
                return True
            return estimate != true
        """,
        "float-eq",
    )
    assert [f.line for f in findings] == [3, 5]


def test_float_eq_bad_on_float_literal():
    findings = findings_for(
        """
        def check(x):
            return x == 1.5
        """,
        "float-eq",
    )
    assert [f.line for f in findings] == [3]


def test_float_eq_good_sentinel_and_ints():
    assert not findings_for(
        """
        def check(estimate, n):
            if estimate <= 0.0:
                return True
            return n == 3
        """,
        "float-eq",
    )


def test_float_eq_skips_test_files():
    bad = """
    def test_value(estimate):
        assert estimate == 6.0
    """
    assert findings_for(bad, "float-eq", path="src/repro/core/x.py")
    assert not findings_for(bad, "float-eq", path="tests/test_x.py")
    assert not findings_for(bad, "float-eq", path="benchmarks/bench_x.py")


def test_unguarded_obs_bad():
    findings = findings_for(
        """
        from repro import obs

        def record(n):
            obs.registry.counter("total").inc()
            obs.event("tick", n=n)
        """,
        "unguarded-obs",
    )
    assert [f.line for f in findings] == [5, 6]


def test_unguarded_obs_good_if_guard():
    assert not findings_for(
        """
        from repro import obs

        def record(n):
            if obs.enabled:
                obs.registry.counter("total").inc()
                obs.event("tick", n=n)
        """,
        "unguarded-obs",
    )


def test_unguarded_obs_good_early_return_guard():
    assert not findings_for(
        """
        from repro import obs

        def record(n):
            if not obs.enabled:
                return
            obs.event("tick", n=n)
        """,
        "unguarded-obs",
    )


def test_unguarded_obs_guard_resets_in_nested_function():
    findings = findings_for(
        """
        from repro import obs

        def outer():
            if obs.enabled:
                def inner():
                    obs.event("tick")
                inner()
        """,
        "unguarded-obs",
    )
    assert [f.line for f in findings] == [7]


def test_twig_arg_mutation_bad():
    findings = findings_for(
        """
        def estimate(query: TwigQuery) -> float:
            query.tree = None
            query.add_child(0, "a")
            return 0.0
        """,
        "twig-arg-mutation",
    )
    assert [f.line for f in findings] == [3, 4]


def test_twig_arg_mutation_good_copy():
    assert not findings_for(
        """
        def estimate(query: TwigQuery) -> float:
            work = query.copy()
            work.add_child(0, "a")
            return 0.0
        """,
        "twig-arg-mutation",
    )


def test_twig_arg_mutation_ignores_rebound_params():
    assert not findings_for(
        """
        def normalise(tree: LabeledTree) -> LabeledTree:
            tree = tree.copy()
            tree.add_child(0, "a")
            return tree
        """,
        "twig-arg-mutation",
    )


def test_opaque_canon_bad():
    findings = findings_for(
        """
        def peek(tree):
            c = canon(tree)
            label = c[0]
            merged = c + c
            head, kids = canon(tree)
            return label, merged, head, kids
        """,
        "opaque-canon",
    )
    assert [f.line for f in findings] == [4, 5, 6]


def test_opaque_canon_good_accessors():
    assert not findings_for(
        """
        def peek(tree):
            c = canon(tree)
            return canon_label(c), canon_children(c), canon_size(c)
        """,
        "opaque-canon",
    )


def test_dict_order_tiebreak_bad():
    findings = findings_for(
        """
        def evict(hits):
            learned = {}
            victim = min(learned, key=lambda c: hits[c])
            first = next(iter(learned))
            return victim, first
        """,
        "dict-order-tiebreak",
    )
    assert [f.line for f in findings] == [4, 5]


def test_dict_order_tiebreak_good_total_order_key():
    assert not findings_for(
        """
        def evict(hits):
            learned = {}
            return min(learned, key=lambda c: (hits[c], c))
        """,
        "dict-order-tiebreak",
    )


def test_dict_order_tiebreak_tracks_self_attributes():
    findings = findings_for(
        """
        class Store:
            def __init__(self):
                self._learned: dict = {}

            def evict(self):
                return min(self._learned, key=lambda c: len(c))
        """,
        "dict-order-tiebreak",
    )
    assert [f.line for f in findings] == [7]


def test_public_annotations_bad():
    findings = findings_for(
        """
        def estimate(query) -> float:
            return 0.0

        class Estimator:
            def fit(self, data):
                pass
        """,
        "public-annotations",
        path="src/repro/core/fake.py",
    )
    assert [(f.line, "parameter" in f.message) for f in findings] == [
        (2, True),
        (6, False),
        (6, True),
    ]


def test_public_annotations_good_and_scoped():
    good = """
    def estimate(query: str) -> float:
        return 0.0

    def _private(x):
        return x
    """
    assert not findings_for(good, "public-annotations", path="src/repro/core/fake.py")
    bad = """
    def estimate(query) -> float:
        return 0.0
    """
    # Out of the rule's scope: modules outside repro.core / repro.trees.
    assert not findings_for(bad, "public-annotations", path="src/repro/cli.py")


def test_store_internals_bad():
    findings = findings_for(
        """
        def peek(summary):
            counts = summary._store._counts
            labels = summary._store._labels
            return counts, labels
        """,
        "store-internals",
        path="src/repro/core/fake.py",
    )
    assert [f.line for f in findings] == [3, 4]
    assert "SummaryStore API" in findings[0].message


def test_store_internals_good_public_api():
    assert not findings_for(
        """
        def peek(store):
            return store.get(("a", ())), list(store.items()), store.byte_size()
        """,
        "store-internals",
        path="src/repro/core/fake.py",
    )


def test_store_internals_exempts_store_package_and_interner():
    bad = """
    def size(self):
        return len(self._counts) + len(self._codes)
    """
    # The layer that owns the representation may touch it freely.
    assert not findings_for(bad, "store-internals", path="src/repro/store/array_store.py")
    assert not findings_for(bad, "store-internals", path="src/repro/trees/canonical.py")
    # Everyone else goes through the SummaryStore protocol.
    assert findings_for(bad, "store-internals", path="src/repro/core/lattice.py")


def test_kernel_purity_bad_obs_import():
    for line in (
        "from .. import obs",
        "from repro import obs",
        "import repro.obs",
        "from repro.obs import registry",
        "from ..obs import registry",
        "from ..obs.registry import MetricsRegistry",
    ):
        findings = findings_for(
            line + "\n", "kernel-purity", path="src/repro/kernels/exec_fast.py"
        )
        assert findings, line
        assert "record.py" in findings[0].message


def test_kernel_purity_record_module_may_import_obs():
    assert not findings_for(
        """
        from .. import obs

        def record_batch(backend):
            if not obs.enabled:
                return
            obs.registry.counter("x", "help").inc()
        """,
        "kernel-purity",
        path="src/repro/kernels/record.py",
    )


def test_kernel_purity_bad_hot_loop_recording_and_formatting():
    findings = findings_for(
        """
        def execute_program(program, record_step):
            slots = list(program.base)
            for i in range(len(slots)):
                record_step(i)
                label = f"op {i}"
                other = "op {}".format(i)
                third = "op %d" % i
            return slots[0]
        """,
        "kernel-purity",
        path="src/repro/kernels/exec_fast.py",
    )
    assert len(findings) == 4
    assert any("record_step" in f.message for f in findings)
    assert any("string formatting" in f.message for f in findings)


def test_kernel_purity_comprehension_counts_as_hot_loop():
    findings = findings_for(
        """
        def run_batch(programs, record_value):
            return [record_value(p) for p in programs]
        """,
        "kernel-purity",
        path="src/repro/kernels/exec_fast.py",
    )
    assert len(findings) == 1


def test_kernel_purity_good_executor_and_guarded_setup():
    # Recording outside the loop (and outside executor functions) is the
    # sanctioned shape; so is plain arithmetic inside the loop.
    assert not findings_for(
        """
        from .record import record_batch

        def execute_program(program):
            slots = list(program.base)
            for i in range(len(slots)):
                slots[i] = slots[i] * 2.0
            return slots[0]

        def execute_batch(programs):
            values = [execute_program(p) for p in programs]
            record_batch(len(values))
            return values
        """,
        "kernel-purity",
        path="src/repro/kernels/exec_fast.py",
    )


def test_kernel_purity_scoped_to_kernels_package():
    bad = "from repro import obs\n"
    assert not findings_for(bad, "kernel-purity", path="src/repro/core/plan.py")


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------


def test_suppression_comment_silences_one_rule():
    source = textwrap.dedent(
        """
        try:
            risky()
        except:  # lint: disable=bare-except -- third-party raises anything
            pass
        """
    )
    assert not lint_source(source, rules=["bare-except"])


def test_suppression_all_sentinel():
    source = textwrap.dedent(
        """
        def f(xs=[]):  # lint: disable=all
            return xs
        """
    )
    assert not lint_source(source)


def test_suppression_on_other_line_does_not_apply():
    source = textwrap.dedent(
        """
        # lint: disable=bare-except
        try:
            risky()
        except:
            pass
        """
    )
    assert lint_source(source, rules=["bare-except"])


def test_parse_suppressions_multiple_rules():
    sup = parse_suppressions("x = 1  # lint: disable=float-eq, bare-except\n")
    assert sup == {1: {"float-eq", "bare-except"}}


def test_suppression_anywhere_on_multiline_statement():
    # The finding is reported on line 2 (the def), the comment sits on
    # the last header line of the multi-line signature.
    source = textwrap.dedent(
        """
        def f(
            xs=[],
        ):  # lint: disable=mutable-default -- sentinel list, never mutated
            return xs
        """
    )
    assert not lint_source(source, rules=["mutable-default"])


def test_suppression_inside_multiline_simple_statement():
    source = textwrap.dedent(
        """
        def check(estimate):
            return (
                estimate == 0.0  # lint: disable=float-eq
            )
        """
    )
    assert not lint_source(source, path="src/repro/core/x.py", rules=["float-eq"])


def test_suppression_in_function_body_does_not_leak_to_siblings():
    # A disable comment deep inside one statement must not blanket the
    # next statement.
    source = textwrap.dedent(
        """
        def check(estimate):
            a = estimate == 0.0  # lint: disable=float-eq
            b = estimate == 1.0
            return a, b
        """
    )
    findings = lint_source(source, path="src/repro/core/x.py", rules=["float-eq"])
    assert [f.line for f in findings] == [4]


def test_file_level_suppression():
    source = textwrap.dedent(
        """
        # lint: disable-file=bare-except
        try:
            risky()
        except:
            pass
        """
    )
    assert not lint_source(source, rules=["bare-except"])
    # Other rules are unaffected.
    assert parse_file_suppressions(source) == {"bare-except"}


def test_file_level_suppression_all_sentinel():
    source = "# lint: disable-file=all\ndef f(xs=[]):\n    return xs\n"
    assert not lint_source(source)


def test_syntax_error_becomes_finding():
    findings = lint_source("def broken(:\n")
    assert [f.rule for f in findings] == ["syntax-error"]


def test_checker_registry_has_all_documented_rules():
    rules = {cls.rule for cls in all_checkers()}
    assert rules == {
        "mutable-default",
        "bare-except",
        "float-eq",
        "unguarded-obs",
        "twig-arg-mutation",
        "opaque-canon",
        "dict-order-tiebreak",
        "public-annotations",
        "store-internals",
        "kernel-purity",
        "fault-site-purity",
        "worker-purity",
        "pickle-safety",
        "order-discipline",
        "store-merge-purity",
    }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 0
    assert capsys.readouterr().out == ""


def test_cli_findings_exit_one_text(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    assert main([str(target)]) == 1
    out = capsys.readouterr().out
    assert "[mutable-default]" in out
    assert f"{target}:1:" in out


def test_cli_json_format(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    assert main(["--format", "json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "mutable-default"
    assert payload["findings"][0]["line"] == 1


def test_cli_unknown_rule_exits_two(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main(["--rule", "no-such-rule", str(target)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "missing")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_no_paths_exits_two(capsys):
    assert main([]) == 2
    assert "no paths" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in all_checkers():
        assert cls.rule in out


def test_cli_rule_filter_runs_only_selected(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    try:\n        pass\n    except:\n        pass\n")
    findings = lint_paths([target], rules=["bare-except"])
    assert {f.rule for f in findings} == {"bare-except"}


def test_cli_sarif_format_schema_shape(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    assert main(["--format", "sarif", str(target)]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == [cls.rule for cls in all_checkers()]
    (result,) = run["results"]
    assert result["ruleId"] == "mutable-default"
    assert result["ruleIndex"] == rule_ids.index("mutable-default")
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("dirty.py")
    assert location["region"]["startLine"] == 1
    assert result["message"]["text"]


def test_cli_output_file(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    out_file = tmp_path / "report.sarif"
    assert main(["--format", "sarif", "--output", str(out_file), str(target)]) == 1
    assert capsys.readouterr().out == ""
    log = json.loads(out_file.read_text())
    assert log["runs"][0]["results"]


def test_cli_baseline_roundtrip_add_and_trim(tmp_path, capsys):
    """Write a baseline, pass against it, fix the code, catch staleness."""
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    baseline = tmp_path / "baseline.json"

    # 1. Record current findings as accepted.
    assert main(["--baseline", str(baseline), "--write-baseline", str(target)]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    (entry,) = payload["entries"]
    assert entry["rule"] == "mutable-default"
    assert "justify" in entry["justification"]
    capsys.readouterr()

    # 2. Same findings now pass (exit 0, nothing reported).
    assert main(["--baseline", str(baseline), str(target)]) == 0
    assert capsys.readouterr().out == ""

    # 3. New violations are still caught.
    target.write_text("def f(xs=[]):\n    return xs\ndef g(ys=[]):\n    return ys\n")
    assert main(["--baseline", str(baseline), str(target)]) == 1
    assert "def g" not in capsys.readouterr().out  # only the new finding line 3

    # 4. Fixing the code makes the entry stale; --fail-stale gates it.
    target.write_text("def f(xs=None):\n    return xs\n")
    assert main(["--baseline", str(baseline), str(target)]) == 0
    assert "stale baseline" in capsys.readouterr().err
    assert main(["--baseline", str(baseline), "--fail-stale", str(target)]) == 1

    # 5. Rewriting trims the stale entry.
    assert main(["--baseline", str(baseline), "--write-baseline", str(target)]) == 0
    assert json.loads(baseline.read_text())["entries"] == []


def test_cli_write_baseline_preserves_justifications(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    baseline = tmp_path / "baseline.json"
    assert main(["--baseline", str(baseline), "--write-baseline", str(target)]) == 0
    payload = json.loads(baseline.read_text())
    payload["entries"][0]["justification"] = "sentinel list, never mutated"
    baseline.write_text(json.dumps(payload))
    capsys.readouterr()
    # Rewriting after an unrelated edit keeps the hand-written text.
    target.write_text("def f(xs=[]):\n    return list(xs)\n")
    assert main(["--baseline", str(baseline), "--write-baseline", str(target)]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["entries"][0]["justification"] == "sentinel list, never mutated"


def test_cli_write_baseline_without_baseline_flag_exits_two(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main(["--write-baseline", str(target)]) == 2
    assert "requires --baseline" in capsys.readouterr().err


def test_cli_corrupt_baseline_exits_two(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    assert main(["--baseline", str(baseline), str(target)]) == 2
    assert "baseline" in capsys.readouterr().err


def test_cli_cache_roundtrip_and_invalidation(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    cache_file = tmp_path / "cache.json"
    assert main(["--cache", str(cache_file), str(target)]) == 1
    first = capsys.readouterr().out
    assert cache_file.exists()
    # Second run hits the cache and reports identically.
    assert main(["--cache", str(cache_file), str(target)]) == 1
    assert capsys.readouterr().out == first
    # Editing the file invalidates its entry.
    target.write_text("def f(xs=None):\n    return xs\n")
    assert main(["--cache", str(cache_file), str(target)]) == 0
    # A corrupt cache file is ignored, not fatal.
    cache_file.write_text("not json at all")
    assert main(["--cache", str(cache_file), str(target)]) == 0


def test_cli_changed_mode(tmp_path, capsys, monkeypatch):
    import subprocess

    def git(*args):
        subprocess.run(
            ["git", *args],
            cwd=tmp_path,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@example.invalid",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@example.invalid",
                "HOME": str(tmp_path),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    monkeypatch.chdir(tmp_path)
    git("init", "-q", "-b", "main")
    clean = tmp_path / "clean.py"
    clean.write_text("def f(xs=[]):\n    return xs\n")  # committed: not linted
    git("add", "clean.py")
    git("commit", "-q", "-m", "base")
    # Simulate the origin/main ref --changed diffs against.
    git("update-ref", "refs/remotes/origin/main", "HEAD")
    git("checkout", "-q", "-b", "feature")

    # Clean tree: nothing to lint, exit 0.
    assert main(["--changed"]) == 0

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def g(ys=[]):\n    return ys\n")
    assert main(["--changed"]) == 1
    out = capsys.readouterr().out
    assert "dirty.py" in out and "clean.py" not in out


def test_cli_changed_outside_git_exits_two(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent-git-dir"))
    assert main(["--changed"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_changed_with_paths_exits_two(tmp_path, capsys):
    assert main(["--changed", str(tmp_path)]) == 2
    assert "cannot be combined" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Self-check: the tree the linter guards is clean
# ----------------------------------------------------------------------


@pytest.mark.parametrize("subdir", ["src/repro", "tests", "benchmarks"])
def test_repository_is_lint_clean(subdir, monkeypatch):
    root = REPO_ROOT / subdir
    if not root.exists():
        pytest.skip(f"{subdir} not present")
    # Paths in lint-baseline.json are repo-relative, so match them by
    # linting from the repo root like CI does.
    monkeypatch.chdir(REPO_ROOT)
    findings = lint_paths([Path(subdir)])
    entries = []
    baseline_file = REPO_ROOT / "lint-baseline.json"
    if baseline_file.exists():
        entries = [e for e in load_baseline(baseline_file) if e.path.startswith(subdir)]
    new_findings, _stale = apply_baseline(findings, entries)
    assert new_findings == [], "\n".join(f.render() for f in new_findings)


def test_repository_baseline_is_not_stale(monkeypatch):
    """Every accepted finding still reproduces (the --fail-stale gate)."""
    baseline_file = REPO_ROOT / "lint-baseline.json"
    monkeypatch.chdir(REPO_ROOT)
    entries = load_baseline(baseline_file)
    assert entries, "lint-baseline.json should document the accepted findings"
    targets = sorted({e.path.split("/")[0] for e in entries})
    findings = lint_paths([Path(t) for t in targets])
    _new, stale = apply_baseline(findings, entries)
    assert stale == [], "\n".join(f"{e.path}: [{e.rule}] {e.message}" for e in stale)
    for entry in entries:
        assert "TODO" not in entry.justification, (
            f"baseline entry for {entry.path} lacks a written justification"
        )
