"""Unit tests for decomposition primitives (Lemmas 1-2 as code)."""

import pytest

from repro import LabeledTree, TreeBuildError, first_leaf_pair_split, fixed_cover
from repro.core.decompose import leaf_pair_decompositions


def _tree(spec):
    return LabeledTree.from_nested(spec)


class TestLeafPairDecompositions:
    def test_sizes(self):
        tree = _tree(("a", ["b", ("c", ["d"])]))
        for split in leaf_pair_decompositions(tree):
            assert split.t1.size == tree.size - 1
            assert split.t2.size == tree.size - 1
            assert split.common.size == tree.size - 2

    def test_common_is_overlap(self):
        # For each split the common part must be a subtree of both parts.
        from repro import count_matches

        tree = _tree(("a", [("b", ["c"]), "d", "e"]))
        for split in leaf_pair_decompositions(tree):
            assert count_matches(split.common, split.t1) >= 1
            assert count_matches(split.common, split.t2) >= 1

    def test_number_of_pairs(self):
        # A 3-leaf star has C(3,2)=3 decompositions.
        tree = _tree(("a", ["b", "c", "d"]))
        assert len(list(leaf_pair_decompositions(tree))) == 3

    def test_path_decomposes_at_ends(self):
        # A path has exactly one pair: {root, deepest leaf}.
        tree = LabeledTree.path(["a", "b", "c", "d"])
        splits = list(leaf_pair_decompositions(tree))
        assert len(splits) == 1
        split = splits[0]
        labels = {tuple(sorted(split.t1.labels)), tuple(sorted(split.t2.labels))}
        assert labels == {("b", "c", "d"), ("a", "b", "c")}
        assert sorted(split.common.labels) == ["b", "c"]

    def test_too_small_rejected(self):
        with pytest.raises(TreeBuildError):
            list(leaf_pair_decompositions(_tree(("a", ["b"]))))

    def test_first_split_deterministic(self):
        tree = _tree(("a", ["b", "c", "d"]))
        first = first_leaf_pair_split(tree)
        again = first_leaf_pair_split(tree)
        assert first.t1.isomorphic(again.t1)
        assert first.t2.isomorphic(again.t2)

    def test_original_untouched(self):
        tree = _tree(("a", ["b", "c"]))
        list(leaf_pair_decompositions(tree))
        assert tree.size == 3


class TestFixedCover:
    SHAPES = [
        ("a", ["b", ("c", ["d", "e"]), ("f", [("g", ["h"])])]),
        ("a", [("b", [("c", ["d"])]), "e"]),
        ("a", ["b", "c", "d", "e", "f"]),
        ("a", [("a", [("a", ["a"])]), "a"]),
    ]

    @pytest.mark.parametrize("spec", SHAPES)
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_lemma2_invariants(self, spec, k):
        """Lemma 2: n-k+1 blocks of size k, each overlap of size k-1."""
        tree = _tree(spec)
        if k > tree.size:
            pytest.skip("block larger than tree")
        blocks = fixed_cover(tree, k)
        assert len(blocks) == tree.size - k + 1
        assert blocks[0].overlap is None
        for piece in blocks:
            assert piece.block.size == k
        for piece in blocks[1:]:
            assert piece.overlap.size == k - 1

    @pytest.mark.parametrize("spec", SHAPES)
    def test_overlap_contained_in_block(self, spec):
        from repro import count_matches

        tree = _tree(spec)
        for piece in fixed_cover(tree, 3):
            if piece.overlap is not None:
                assert count_matches(piece.overlap, piece.block) >= 1

    def test_cover_of_whole_tree(self):
        tree = _tree(("a", ["b", "c"]))
        blocks = fixed_cover(tree, 3)
        assert len(blocks) == 1
        assert blocks[0].block.isomorphic(tree)

    def test_k_too_small(self):
        with pytest.raises(ValueError):
            fixed_cover(_tree(("a", ["b", "c"])), 1)

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            fixed_cover(_tree(("a", ["b"])), 3)

    def test_blocks_are_subtrees_of_query(self):
        from repro import count_matches

        tree = _tree(("a", [("b", ["c", "d"]), ("e", ["f"])]))
        for piece in fixed_cover(tree, 3):
            assert count_matches(piece.block, tree) >= 1

    def test_deep_path_cover(self):
        tree = LabeledTree.path(list("abcdefg"))
        blocks = fixed_cover(tree, 3)
        assert len(blocks) == 5
        # On a path, every block is itself a 3-path.
        for piece in blocks:
            assert all(
                len(piece.block.child_ids(n)) <= 1 for n in range(piece.block.size)
            )
