"""Unit tests for decomposition traces."""

import pytest

from repro import RecursiveDecompositionEstimator, TwigQuery
from repro.core.explain import explain


class TestAgreementWithEstimator:
    QUERIES = [
        "laptop(brand,price)",
        "computer(laptops(laptop(brand,price)))",
        "computer(laptops(laptop(brand,price)),desktops(desktop))",
        "laptop(tower)",  # certified zero
    ]

    @pytest.mark.parametrize("text", QUERIES)
    @pytest.mark.parametrize("voting", [False, True])
    def test_estimate_matches(self, figure1_lattice, text, voting):
        query = TwigQuery.parse(text)
        estimator = RecursiveDecompositionEstimator(figure1_lattice, voting=voting)
        trace = explain(figure1_lattice, query, voting=voting)
        assert trace.estimate == estimator.estimate(query)

    def test_agreement_on_nasa(self, small_nasa_lattice):
        text = "datasets(dataset(author(lastName),date(year),title))"
        query = TwigQuery.parse(text)
        for voting in (False, True):
            estimator = RecursiveDecompositionEstimator(
                small_nasa_lattice, voting=voting
            )
            trace = explain(small_nasa_lattice, query, voting=voting)
            assert trace.estimate == estimator.estimate(query)


class TestTraceStructure:
    def test_lookup_is_leaf(self, figure1_lattice):
        trace = explain(figure1_lattice, "laptop(brand,price)")
        assert trace.kind == "lookup"
        assert trace.children == []
        assert trace.depth() == 0

    def test_certified_zero(self, figure1_lattice):
        trace = explain(figure1_lattice, "laptop(tower)")
        assert trace.kind == "certified-zero"
        assert trace.estimate == 0.0

    def test_decomposition_has_triples(self, figure1_lattice):
        trace = explain(
            figure1_lattice, "computer(laptops(laptop(brand,price)))"
        )
        assert trace.kind == "decomposition"
        assert len(trace.children) == 3  # t1, t2, common for one choice

    def test_voting_collects_all_choices(self, figure1_lattice):
        query = TwigQuery.parse(
            "computer(laptops(laptop(brand,price)),desktops(desktop))"
        )
        plain = explain(figure1_lattice, query, voting=False)
        voted = explain(figure1_lattice, query, voting=True)
        assert len(voted.children) >= len(plain.children)
        assert len(voted.children) % 3 == 0

    def test_lookups_returns_evidence(self, figure1_lattice):
        trace = explain(
            figure1_lattice, "computer(laptops(laptop(brand,price)))"
        )
        evidence = trace.lookups()
        assert evidence
        assert all(e.kind in ("lookup", "certified-zero") for e in evidence)

    def test_render_mentions_patterns(self, figure1_lattice):
        trace = explain(
            figure1_lattice, "computer(laptops(laptop(brand,price)))"
        )
        text = trace.render()
        assert "s(t1) * s(t2) / s(common)" in text
        assert "laptop(brand,price)" in text
        assert text.count("\n") >= 3

    def test_pattern_text(self, figure1_lattice):
        trace = explain(figure1_lattice, "laptop(brand)")
        assert trace.pattern_text == "laptop(brand)"
