"""Unit tests for the semi-join candidate filter."""

from hypothesis import given, settings

from repro import LabeledTree, TwigQuery, match_candidates
from repro.trees.twigjoin import enumerate_matches

from .test_properties import random_tree


class TestFilterSoundness:
    def test_every_match_within_candidates(self, figure1_doc):
        query = TwigQuery.parse("laptop(brand,price)")
        candidates = match_candidates(query, figure1_doc)
        for match in enumerate_matches(query, figure1_doc):
            for qnode, dnode in match.items():
                assert dnode in candidates[qnode]

    def test_labels_respected(self, figure1_doc):
        query = TwigQuery.parse("computer(laptops(laptop))")
        candidates = match_candidates(query, figure1_doc)
        for qnode, survivors in candidates.items():
            for dnode in survivors:
                assert figure1_doc.label(dnode) == query.tree.label(qnode)

    def test_no_match_all_empty(self, figure1_doc):
        query = TwigQuery.parse("laptops(price)")
        candidates = match_candidates(query, figure1_doc)
        assert all(not survivors for survivors in candidates.values())

    def test_top_down_prunes(self):
        # Two 'b' nodes; only the one under 'a' survives for a(b).
        doc = LabeledTree.from_nested(("r", [("a", ["b"]), ("c", ["b"])]))
        query = TwigQuery.parse("a(b)")
        candidates = match_candidates(query, doc)
        b_survivors = candidates[1]
        assert len(b_survivors) == 1
        (survivor,) = b_survivors
        assert doc.label(doc.parent(survivor)) == "a"

    def test_superset_not_exact(self):
        # Injectivity can eliminate filtered survivors: a(b,b) on a doc
        # where one 'a' has a single b — its b survives the structural
        # filter for neither... actually with one b the bottom-up prunes
        # it.  Use the documented competitive case explicitly:
        doc = LabeledTree.from_nested(("a", ["b"]))
        query = LabeledTree.from_nested(("a", ["b", "b"]))
        candidates = match_candidates(query, doc)
        # No matches exist; bottom-up already detects it here.
        assert all(not survivors for survivors in candidates.values())


class TestFilterProperties:
    @given(random_tree(max_size=4, labels="ab"), random_tree(max_size=8, labels="ab"))
    @settings(max_examples=30, deadline=None)
    def test_soundness_property(self, query, doc):
        candidates = match_candidates(query, doc)
        for match in enumerate_matches(query, doc):
            for qnode, dnode in match.items():
                assert dnode in candidates[qnode]

    @given(random_tree(max_size=4, labels="ab"), random_tree(max_size=8, labels="ab"))
    @settings(max_examples=30, deadline=None)
    def test_empty_iff_no_root_candidates(self, query, doc):
        from repro import count_matches

        candidates = match_candidates(query, doc)
        if count_matches(query, doc) > 0:
            assert all(survivors for survivors in candidates.values())
