"""Unit tests for the lattice summary."""

import pytest

from repro import LabeledTree, LatticeSummary, TwigQuery, count_matches
from repro.mining import mine_lattice
from repro.trees.canonical import canon_from_nested


class TestBuild:
    def test_counts_match_exact(self, figure1_doc, figure1_lattice):
        for pattern, count in figure1_lattice.patterns():
            assert count == count_matches(pattern, figure1_doc)

    def test_complete_at_all_levels(self, figure1_lattice):
        for size in range(1, 5):
            assert figure1_lattice.is_complete_at(size)
        assert not figure1_lattice.is_complete_at(5)

    def test_construction_time_recorded(self, figure1_lattice):
        assert figure1_lattice.construction_seconds > 0

    def test_level_too_small_rejected(self):
        with pytest.raises(ValueError):
            LatticeSummary(1, {})

    def test_from_mining_with_caps(self, small_nasa):
        mined = mine_lattice(small_nasa, 4, extend_cap=10)
        summary = LatticeSummary.from_mining(mined)
        # Levels after the first capped frontier are incomplete.
        first_capped = min(mined.capped_levels)
        for size in range(1, first_capped + 1):
            assert summary.is_complete_at(size)
        for size in range(first_capped + 1, 5):
            assert not summary.is_complete_at(size)


class TestLookup:
    def test_get_accepts_all_query_forms(self, figure1_lattice):
        expected = 2
        assert figure1_lattice.get(TwigQuery.parse("laptop(brand,price)")) == expected
        assert (
            figure1_lattice.get(LabeledTree.from_nested(("laptop", ["brand", "price"])))
            == expected
        )
        assert (
            figure1_lattice.get(canon_from_nested(("laptop", ["brand", "price"])))
            == expected
        )

    def test_get_missing_returns_none(self, figure1_lattice):
        assert figure1_lattice.get(LabeledTree("tablet")) is None

    def test_count_zero_at_complete_level(self, figure1_lattice):
        assert figure1_lattice.count(LabeledTree("tablet")) == 0
        assert figure1_lattice.count(LabeledTree.path(["laptops", "brand"])) == 0

    def test_count_raises_on_pruned_level(self, figure1_lattice):
        kept = {
            c: n
            for c, n in figure1_lattice.patterns()
            if c != canon_from_nested(("laptop", ["brand", "price"]))
        }
        pruned = figure1_lattice.replace_counts(kept, complete_sizes=(1, 2))
        with pytest.raises(KeyError):
            pruned.count(canon_from_nested(("laptop", ["brand", "price"])))

    def test_contains(self, figure1_lattice):
        assert LabeledTree("laptop") in figure1_lattice
        assert LabeledTree("tablet") not in figure1_lattice


class TestIntrospection:
    def test_level_sizes_sum_to_num_patterns(self, figure1_lattice):
        assert sum(figure1_lattice.level_sizes().values()) == (
            figure1_lattice.num_patterns
        )

    def test_patterns_of_size(self, figure1_lattice):
        level2 = figure1_lattice.patterns_of_size(2)
        assert all(len(c[1]) >= 0 for c in level2)
        assert canon_from_nested(("laptop", ["brand"])) in level2

    def test_byte_size_grows_with_patterns(self, figure1_lattice):
        smaller = figure1_lattice.replace_counts(
            dict(list(figure1_lattice.patterns())[:5]), complete_sizes=(1,)
        )
        assert smaller.byte_size() < figure1_lattice.byte_size()
        assert figure1_lattice.byte_size() > 0

    def test_repr(self, figure1_lattice):
        text = repr(figure1_lattice)
        assert "level=4" in text


class TestPersistence:
    def test_save_load_roundtrip(self, figure1_lattice, tmp_path):
        path = tmp_path / "summary.tsv"
        figure1_lattice.save(path)
        loaded = LatticeSummary.load(path)
        assert loaded.level == figure1_lattice.level
        assert loaded.complete_sizes == figure1_lattice.complete_sizes
        assert dict(loaded.patterns()) == dict(figure1_lattice.patterns())

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("not a summary\n")
        with pytest.raises(ValueError):
            LatticeSummary.load(path)

    def test_load_skips_blank_lines(self, figure1_lattice, tmp_path):
        path = tmp_path / "summary.tsv"
        figure1_lattice.save(path)
        path.write_text(path.read_text() + "\n\n")
        loaded = LatticeSummary.load(path)
        assert loaded.num_patterns == figure1_lattice.num_patterns


class TestBuildLattice:
    def test_convenience_wrapper(self, figure1_doc):
        from repro import build_lattice

        lattice = build_lattice(figure1_doc, level=3)
        assert lattice.level == 3
        assert lattice.get(LabeledTree.path(["laptop", "brand"])) == 2
