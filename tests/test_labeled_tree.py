"""Unit tests for the labeled-tree substrate."""

import pytest

from repro import LabeledTree, TreeBuildError


class TestConstruction:
    def test_single_node(self):
        tree = LabeledTree("a")
        assert tree.size == 1
        assert tree.label(0) == "a"
        assert tree.parent(0) == -1
        assert tree.is_leaf(0)

    def test_add_child_returns_new_id(self):
        tree = LabeledTree("a")
        b = tree.add_child(0, "b")
        c = tree.add_child(b, "c")
        assert (b, c) == (1, 2)
        assert tree.parent(c) == b
        assert list(tree.child_ids(0)) == [b]

    def test_add_child_invalid_parent(self):
        tree = LabeledTree("a")
        with pytest.raises(TreeBuildError):
            tree.add_child(5, "b")
        with pytest.raises(TreeBuildError):
            tree.add_child(-1, "b")

    def test_from_nested_strings_are_leaves(self):
        tree = LabeledTree.from_nested(("a", ["b", "c"]))
        assert tree.size == 3
        assert sorted(tree.label(c) for c in tree.child_ids(0)) == ["b", "c"]

    def test_from_nested_deep(self):
        tree = LabeledTree.from_nested(("a", [("b", [("c", ["d"])])]))
        assert tree.size == 4
        assert tree.height() == 3

    def test_from_nested_rejects_garbage(self):
        with pytest.raises(TreeBuildError):
            LabeledTree.from_nested(42)
        with pytest.raises(TreeBuildError):
            LabeledTree.from_nested(("a", ["b"], "extra"))

    def test_path_constructor(self):
        tree = LabeledTree.path(["a", "b", "c"])
        assert tree.size == 3
        assert tree.height() == 2
        assert [tree.label(n) for n in tree.preorder()] == ["a", "b", "c"]

    def test_path_requires_labels(self):
        with pytest.raises(TreeBuildError):
            LabeledTree.path([])

    def test_copy_is_independent(self):
        tree = LabeledTree.from_nested(("a", ["b"]))
        dup = tree.copy()
        dup.add_child(0, "c")
        assert tree.size == 2
        assert dup.size == 3


class TestAccessors:
    def test_degree_counts_parent_edge(self):
        tree = LabeledTree.from_nested(("a", ["b", ("c", ["d"])]))
        assert tree.degree(0) == 2  # root: two children, no parent
        assert tree.degree(1) == 1  # leaf b
        assert tree.degree(2) == 2  # c: parent + one child

    def test_leaves(self):
        tree = LabeledTree.from_nested(("a", ["b", ("c", ["d"])]))
        assert sorted(tree.label(n) for n in tree.leaves()) == ["b", "d"]

    def test_depth_and_height(self):
        tree = LabeledTree.from_nested(("a", [("b", [("c", ["d"])]), "e"]))
        deepest = [n for n in range(tree.size) if tree.label(n) == "d"][0]
        assert tree.depth(deepest) == 3
        assert tree.height() == 3
        assert tree.depth(0) == 0

    def test_label_counts(self):
        tree = LabeledTree.from_nested(("a", ["b", "b", ("b", ["a"])]))
        assert tree.label_counts() == {"a": 2, "b": 3}
        assert tree.distinct_labels() == {"a", "b"}

    def test_edge_label_pairs(self):
        tree = LabeledTree.from_nested(("a", ["b", ("b", ["c"])]))
        assert tree.edge_label_pairs() == {("a", "b"), ("b", "c")}

    def test_len_matches_size(self):
        tree = LabeledTree.from_nested(("a", ["b", "c"]))
        assert len(tree) == tree.size == 3


class TestTraversals:
    def test_preorder_parents_first(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c"]), "d"]))
        order = list(tree.preorder())
        position = {n: i for i, n in enumerate(order)}
        for node in range(1, tree.size):
            assert position[tree.parent(node)] < position[node]
        assert len(order) == tree.size

    def test_postorder_children_first(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c"]), "d"]))
        order = list(tree.postorder())
        position = {n: i for i, n in enumerate(order)}
        for node in range(1, tree.size):
            assert position[tree.parent(node)] > position[node]
        assert len(order) == tree.size

    def test_single_node_traversals(self):
        tree = LabeledTree("x")
        assert list(tree.preorder()) == [0]
        assert list(tree.postorder()) == [0]


class TestRemovableNodes:
    def test_leaves_are_removable(self):
        tree = LabeledTree.from_nested(("a", ["b", "c"]))
        assert set(tree.removable_nodes()) == {1, 2}

    def test_single_child_root_is_removable(self):
        tree = LabeledTree.path(["a", "b", "c"])
        assert 0 in tree.removable_nodes()
        assert set(tree.removable_nodes()) == {0, 2}

    def test_multi_child_root_not_removable(self):
        tree = LabeledTree.from_nested(("a", ["b", "c"]))
        assert 0 not in tree.removable_nodes()

    def test_every_multi_node_tree_has_two(self):
        shapes = [
            ("a", ["b"]),
            ("a", ["b", "c"]),
            ("a", [("b", ["c"])]),
            ("a", [("b", ["c", "d"]), "e"]),
        ]
        for spec in shapes:
            tree = LabeledTree.from_nested(spec)
            assert len(tree.removable_nodes()) >= 2

    def test_single_node_tree_root_listed(self):
        assert LabeledTree("a").removable_nodes() == [0]


class TestRemoval:
    def test_remove_leaf(self):
        tree = LabeledTree.from_nested(("a", ["b", "c"]))
        smaller = tree.remove_node(1)
        assert smaller.size == 2
        assert sorted(smaller.labels) == ["a", "c"]

    def test_remove_single_child_root_promotes_child(self):
        tree = LabeledTree.path(["a", "b", "c"])
        smaller = tree.remove_node(0)
        assert smaller.label(0) == "b"
        assert smaller.size == 2

    def test_remove_internal_node_rejected(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c"]), "d"]))
        with pytest.raises(TreeBuildError):
            tree.remove_node(1)  # b has parent and child

    def test_remove_only_node_rejected(self):
        with pytest.raises(TreeBuildError):
            LabeledTree("a").remove_node(0)

    def test_remove_does_not_mutate_original(self):
        tree = LabeledTree.from_nested(("a", ["b", "c"]))
        tree.remove_node(2)
        assert tree.size == 3

    def test_remove_nodes_pair(self):
        tree = LabeledTree.from_nested(("a", ["b", "c", "d"]))
        smaller = tree.remove_nodes([1, 3])
        assert sorted(smaller.labels) == ["a", "c"]


class TestInducedSubtree:
    def test_connected_subset(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c", "d"]), "e"]))
        sub = tree.induced_subtree([0, 1, 2])
        assert sub.size == 3
        assert sub.label(0) == "a"

    def test_subtree_root_need_not_be_tree_root(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c", "d"]), "e"]))
        sub = tree.induced_subtree([1, 2, 3])
        assert sub.label(0) == "b"
        assert sorted(sub.labels) == ["b", "c", "d"]

    def test_disconnected_subset_rejected(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c"]), "d"]))
        with pytest.raises(TreeBuildError):
            tree.induced_subtree([2, 3])  # c and d: no connection inside set

    def test_empty_subset_rejected(self):
        tree = LabeledTree("a")
        with pytest.raises(TreeBuildError):
            tree.induced_subtree([])

    def test_full_set_is_isomorphic_copy(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c"]), "d"]))
        sub = tree.induced_subtree(range(tree.size))
        assert sub.isomorphic(tree)

    def test_subtree_at(self):
        tree = LabeledTree.from_nested(("a", [("b", ["c", ("d", ["e"])]), "f"]))
        sub = tree.subtree_at(1)
        assert sub.label(0) == "b"
        assert sub.size == 4

    def test_with_child_copies(self):
        tree = LabeledTree.from_nested(("a", ["b"]))
        grown = tree.with_child(0, "c")
        assert grown.size == 3
        assert tree.size == 2


class TestEquality:
    def test_isomorphic_ignores_sibling_order(self):
        left = LabeledTree.from_nested(("a", ["b", ("c", ["d"])]))
        right = LabeledTree.from_nested(("a", [("c", ["d"]), "b"]))
        assert left.isomorphic(right)
        assert left == right
        assert hash(left) == hash(right)

    def test_different_labels_not_equal(self):
        assert LabeledTree("a") != LabeledTree("b")

    def test_different_shapes_not_equal(self):
        left = LabeledTree.from_nested(("a", [("b", ["c"])]))
        right = LabeledTree.from_nested(("a", ["b", "c"]))
        assert left != right

    def test_eq_other_type(self):
        assert LabeledTree("a").__eq__(42) is NotImplemented

    def test_repr_and_pretty(self):
        tree = LabeledTree.from_nested(("a", ["b"]))
        assert "a(b)" in repr(tree)
        assert tree.pretty() == "a\n  b"
