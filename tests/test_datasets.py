"""Unit tests for the synthetic dataset substrate."""

import random

import pytest

from repro import generate_dataset
from repro.datasets import (
    ChildRule,
    DocumentGenerator,
    ElementSpec,
    Mode,
    Schema,
    fixed,
    generate_imdb,
    generate_nasa,
    generate_psd,
    generate_xmark,
    geometric,
    optional,
    uniform_int,
    zipf_int,
)


class TestDistributions:
    RNG = random.Random(42)

    def test_fixed(self):
        draw = fixed(3)
        assert all(draw(self.RNG) == 3 for _ in range(10))

    def test_uniform_int_range(self):
        draw = uniform_int(2, 5)
        values = {draw(self.RNG) for _ in range(200)}
        assert values <= {2, 3, 4, 5}
        assert len(values) == 4

    def test_uniform_int_validation(self):
        with pytest.raises(ValueError):
            uniform_int(5, 2)

    def test_geometric_mean_and_cap(self):
        draw = geometric(2.0, cap=10)
        values = [draw(random.Random(i)) for i in range(2000)]
        assert all(0 <= v <= 10 for v in values)
        assert 1.4 < sum(values) / len(values) < 2.6

    def test_geometric_validation(self):
        with pytest.raises(ValueError):
            geometric(0.0)

    def test_zipf_skew(self):
        draw = zipf_int(10, exponent=1.5)
        values = [draw(random.Random(i)) for i in range(2000)]
        assert all(1 <= v <= 10 for v in values)
        ones = sum(1 for v in values if v == 1)
        tens = sum(1 for v in values if v == 10)
        assert ones > 5 * max(tens, 1)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_int(0)

    def test_optional(self):
        draw = optional(0.25)
        values = [draw(random.Random(i)) for i in range(2000)]
        assert set(values) <= {0, 1}
        assert 0.15 < sum(values) / len(values) < 0.35

    def test_optional_validation(self):
        with pytest.raises(ValueError):
            optional(1.5)


class TestSchemaEngine:
    def test_simple_schema(self):
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule("a", fixed(3))])
        )
        doc = DocumentGenerator(schema).generate(0)
        assert doc.size == 4
        assert doc.label_counts() == {"r": 1, "a": 3}

    def test_implicit_leaves(self):
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule.one("unspecified")])
        )
        doc = DocumentGenerator(schema).generate(0)
        assert doc.size == 2

    def test_determinism(self):
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule("a", uniform_int(1, 5))])
        )
        generator = DocumentGenerator(schema)
        assert generator.generate(3).isomorphic(generator.generate(3))

    def test_different_seeds_differ(self):
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule("a", uniform_int(1, 50))])
        )
        generator = DocumentGenerator(schema)
        docs = {generator.generate(s).size for s in range(8)}
        assert len(docs) > 1

    def test_max_nodes_budget(self):
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule("a", fixed(1000))])
        )
        doc = DocumentGenerator(schema, max_nodes=100).generate(0)
        assert doc.size == 100

    def test_recursive_schema_depth_capped(self):
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule.one("r")])
        )
        # Nodes at depth == max_depth are emitted but not expanded, so a
        # pure chain has max_depth + 1 nodes.
        doc = DocumentGenerator(schema, max_depth=5).generate(0)
        assert doc.size == 6
        assert doc.height() == 5

    def test_mode_weights(self):
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule("e", fixed(400))])
        )
        schema.add(
            ElementSpec(
                "e",
                (
                    Mode((ChildRule.one("left"),), weight=0.8),
                    Mode((ChildRule.one("right"),), weight=0.2),
                ),
            )
        )
        doc = DocumentGenerator(schema).generate(1)
        counts = doc.label_counts()
        assert counts["left"] > 2 * counts["right"]

    def test_modes_are_exclusive(self):
        # Within one element instance, children come from exactly one mode.
        schema = Schema(root="r").add(
            ElementSpec.simple("r", [ChildRule("e", fixed(200))])
        )
        schema.add(
            ElementSpec(
                "e",
                (
                    Mode((ChildRule.one("left"),), weight=0.5),
                    Mode((ChildRule.one("right"),), weight=0.5),
                ),
            )
        )
        doc = DocumentGenerator(schema).generate(2)
        for node in range(doc.size):
            if doc.label(node) == "e":
                kids = {doc.label(c) for c in doc.child_ids(node)}
                assert kids in ({"left"}, {"right"})

    def test_validation_rejects_weightless_spec(self):
        schema = Schema(root="r")
        schema.elements["r"] = ElementSpec("r", (Mode((), weight=0.0),))
        with pytest.raises(ValueError):
            DocumentGenerator(schema)

    def test_generator_parameter_validation(self):
        schema = Schema(root="r")
        with pytest.raises(ValueError):
            DocumentGenerator(schema, max_nodes=0)
        with pytest.raises(ValueError):
            DocumentGenerator(schema, max_depth=0)


class TestPaperDatasets:
    @pytest.mark.parametrize(
        "generate,root",
        [
            (generate_nasa, "datasets"),
            (generate_imdb, "imdb"),
            (generate_psd, "ProteinDatabase"),
            (generate_xmark, "site"),
        ],
    )
    def test_roots_and_determinism(self, generate, root):
        doc = generate(12, seed=5)
        assert doc.label(0) == root
        assert doc.isomorphic(generate(12, seed=5))

    def test_scales_with_records(self):
        assert generate_nasa(40, seed=1).size > generate_nasa(10, seed=1).size

    def test_xmark_has_recursion(self):
        doc = generate_xmark(40, seed=3)
        # parlist inside a listitem proves the recursive markup fired.
        nested = any(
            doc.label(n) == "parlist"
            and doc.parent(n) != -1
            and doc.label(doc.parent(n)) == "listitem"
            for n in range(doc.size)
        )
        assert nested

    def test_imdb_mode_correlation(self):
        doc = generate_imdb(200, seed=3)
        directors_with_seasons = 0
        creators_with_seasons = 0
        for node in range(doc.size):
            if doc.label(node) != "movie":
                continue
            kids = {doc.label(c) for c in doc.child_ids(node)}
            if "seasons" in kids:
                if "director" in kids:
                    directors_with_seasons += 1
                if "creator" in kids:
                    creators_with_seasons += 1
        assert creators_with_seasons > 0
        assert directors_with_seasons == 0  # modes never mix

    def test_generate_dataset_registry(self):
        doc = generate_dataset("nasa", 10, seed=2)
        assert doc.label(0) == "datasets"
        default = generate_dataset("nasa", seed=2)
        assert default.size > doc.size

    def test_generate_dataset_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            generate_dataset("enron")


class TestTreebank:
    def test_grammar_recursion_is_deep(self):
        from repro.datasets import generate_treebank

        doc = generate_treebank(200, seed=4)
        assert doc.label(0) == "corpus"
        assert doc.height() >= 8
        # Genuine self-recursion: an NP strictly inside another NP.
        nested_np = any(
            doc.label(n) == "NP"
            and any(
                doc.label(a) == "NP"
                for a in _ancestors(doc, n)
            )
            for n in range(doc.size)
        )
        assert nested_np

    def test_grammar_productions_respected(self):
        from repro.datasets import generate_treebank

        doc = generate_treebank(150, seed=6)
        for node in range(doc.size):
            if doc.label(node) == "PP":
                kids = [doc.label(c) for c in doc.child_ids(node)]
                assert kids == ["IN", "NP"] or kids == []  # depth-capped

    def test_registered_in_generators(self):
        doc = generate_dataset("treebank", 30, seed=1)
        assert doc.label(0) == "corpus"


def _ancestors(doc, node):
    node = doc.parent(node)
    while node != -1:
        yield node
        node = doc.parent(node)
