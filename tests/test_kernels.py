"""Kernel layer tests: backends, bit-identity, and bulk gathers.

The flat-array kernel executors (``repro.kernels``) promise to be a
pure throughput choice: every backend must return the same bit pattern
as the legacy compiled-plan replay and emit the same observability
counters.  The property suite here pins that promise across random
twigs for all three plan families, and the unit tests cover the
backend-selection knob, the CI numpy/no-numpy matrix contract, and
:meth:`ArrayStore.gather_counts`.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    FixedDecompositionEstimator,
    LabeledTree,
    MarkovPathEstimator,
    RecursiveDecompositionEstimator,
)
from repro import obs
from repro.kernels import (
    HAVE_NUMPY,
    KERNEL_BACKENDS,
    available_backends,
    lower_plan,
    resolve_backend,
)
from repro.kernels.exec_python import execute_program
from repro.store.array_store import ArrayStore

#: Labels of the Figure 1(a) document (the ``figure1_lattice`` fixture).
LABELS = ("computer", "laptops", "laptop", "brand", "price", "desktops", "desktop")


@st.composite
def query_tree(draw, max_size=6):
    """Random twig over the Figure-1 label alphabet."""
    size = draw(st.integers(1, max_size))
    tree = LabeledTree(draw(st.sampled_from(LABELS)))
    for i in range(1, size):
        parent = draw(st.integers(0, i - 1))
        tree.add_child(parent, draw(st.sampled_from(LABELS)))
    return tree


@st.composite
def path_query(draw, max_len=4):
    """Random linear path (what MarkovPathEstimator accepts)."""
    length = draw(st.integers(1, max_len))
    labels = [draw(st.sampled_from(LABELS)) for _ in range(length)]
    return LabeledTree.path(labels)


def counter_totals(registry):
    """Per-label counter samples, kernel-layer counters excluded.

    The kernel path adds ``kernel_*`` counters of its own; everything
    else — plan cache hits/misses, store probes, batch totals — must
    match the legacy path exactly.
    """
    return {
        metric.name: sorted(
            (tuple(sorted(labels.items())), value)
            for labels, value in metric.samples()
        )
        for metric in registry
        if metric.kind == "counter" and not metric.name.startswith("kernel_")
    }


def run_batches(estimator, queries, backend):
    """Two batches (cold-compiling, then warm) and the counters emitted."""
    with obs.observed() as (registry, _):
        first = estimator.estimate_batch(queries, backend=backend)
        second = estimator.estimate_batch(queries, backend=backend)
    return first, second, counter_totals(registry)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_resolve_defaults(self) -> None:
        assert resolve_backend(None) == "plan"
        assert resolve_backend("plan") == "plan"
        assert resolve_backend("array") == "array"
        expected = "numpy" if HAVE_NUMPY else "array"
        assert resolve_backend("auto") == expected

    def test_resolve_rejects_unknown(self) -> None:
        with pytest.raises(ValueError, match="unknown estimation backend"):
            resolve_backend("cuda")

    def test_available_backends_include_fallback(self) -> None:
        backends = available_backends()
        assert backends[0] == "plan"
        assert "array" in backends
        assert set(KERNEL_BACKENDS) == set(backends) - {"plan"}

    def test_numpy_presence_matches_ci_leg(self) -> None:
        """The CI matrix contract: REPRO_EXPECT_NUMPY pins HAVE_NUMPY.

        The no-numpy legs export ``REPRO_EXPECT_NUMPY=0`` after
        uninstalling numpy, so this assertion is what proves those legs
        really exercised the fallback import path rather than silently
        picking up a stray numpy.
        """
        expected = os.environ.get("REPRO_EXPECT_NUMPY")
        if expected is None:
            pytest.skip("REPRO_EXPECT_NUMPY not set (not a CI matrix leg)")
        assert HAVE_NUMPY is (expected == "1")

    def test_disable_numpy_env_forces_fallback(self) -> None:
        """REPRO_DISABLE_NUMPY masks numpy in a fresh interpreter."""
        code = (
            "from repro.kernels import HAVE_NUMPY, KERNEL_BACKENDS, resolve_backend\n"
            "assert not HAVE_NUMPY\n"
            "assert KERNEL_BACKENDS == ('array',)\n"
            "assert resolve_backend('auto') == 'array'\n"
            "try:\n"
            "    resolve_backend('numpy')\n"
            "except ValueError as exc:\n"
            "    assert 'not importable' in str(exc)\n"
            "else:\n"
            "    raise AssertionError('numpy backend resolved without numpy')\n"
            "print('fallback ok')\n"
        )
        env = dict(os.environ, REPRO_DISABLE_NUMPY="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback ok" in proc.stdout

    def test_numpy_without_numpy_raises(self) -> None:
        if HAVE_NUMPY:
            pytest.skip("numpy importable here; covered by the subprocess test")
        with pytest.raises(ValueError, match="not importable"):
            resolve_backend("numpy")

    def test_non_kernel_estimator_rejects_explicit_backend(
        self, figure1_lattice
    ) -> None:
        estimator = MarkovPathEstimator(figure1_lattice)
        # Markov supports kernels; build a non-kernel stand-in instead.
        query = LabeledTree.path(["computer"])

        class Plain(RecursiveDecompositionEstimator):
            supports_kernels = False

        plain = Plain(figure1_lattice)
        with pytest.raises(ValueError, match="does not support kernel backend"):
            plain.estimate_batch([query], backend="array")
        # "auto" degrades silently instead of raising.
        assert plain.estimate_batch([query], backend="auto") == [
            estimator.estimate(query)
        ]


# ----------------------------------------------------------------------
# Cross-backend bit-identity (the tentpole invariant)
# ----------------------------------------------------------------------


class TestBackendEquivalence:
    @given(queries=st.lists(query_tree(), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_recursive_backends_bit_identical(
        self, figure1_lattice, queries
    ) -> None:
        legacy = RecursiveDecompositionEstimator(figure1_lattice)
        expected_first, expected_second, expected_counters = run_batches(
            legacy, queries, backend=None
        )
        assert expected_first == expected_second
        for backend in KERNEL_BACKENDS:
            estimator = RecursiveDecompositionEstimator(figure1_lattice)
            first, second, counters = run_batches(estimator, queries, backend)
            assert first == expected_first, backend
            assert second == expected_second, backend
            assert counters == expected_counters, backend

    @given(queries=st.lists(query_tree(), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_voting_backends_bit_identical(
        self, figure1_lattice, queries
    ) -> None:
        legacy = RecursiveDecompositionEstimator(figure1_lattice, voting=True)
        expected_first, expected_second, expected_counters = run_batches(
            legacy, queries, backend=None
        )
        for backend in KERNEL_BACKENDS:
            estimator = RecursiveDecompositionEstimator(
                figure1_lattice, voting=True
            )
            first, second, counters = run_batches(estimator, queries, backend)
            assert first == expected_first, backend
            assert second == expected_second, backend
            assert counters == expected_counters, backend

    @given(queries=st.lists(query_tree(), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_fixed_backends_bit_identical(
        self, figure1_lattice, queries
    ) -> None:
        legacy = FixedDecompositionEstimator(figure1_lattice)
        expected_first, expected_second, expected_counters = run_batches(
            legacy, queries, backend=None
        )
        for backend in KERNEL_BACKENDS:
            estimator = FixedDecompositionEstimator(figure1_lattice)
            first, second, counters = run_batches(estimator, queries, backend)
            assert first == expected_first, backend
            assert second == expected_second, backend
            assert counters == expected_counters, backend

    @given(queries=st.lists(path_query(), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_markov_backends_bit_identical(
        self, figure1_lattice, queries
    ) -> None:
        legacy = MarkovPathEstimator(figure1_lattice, order=2)
        expected_first, expected_second, expected_counters = run_batches(
            legacy, queries, backend=None
        )
        for backend in KERNEL_BACKENDS:
            estimator = MarkovPathEstimator(figure1_lattice, order=2)
            first, second, counters = run_batches(estimator, queries, backend)
            assert first == expected_first, backend
            assert second == expected_second, backend
            assert counters == expected_counters, backend

    def test_markov_kernel_batch_still_rejects_branching(
        self, figure1_lattice
    ) -> None:
        estimator = MarkovPathEstimator(figure1_lattice)
        twig = LabeledTree("computer")
        twig.add_child(0, "laptops")
        twig.add_child(0, "desktops")
        with pytest.raises(ValueError, match="linear path"):
            estimator.estimate_batch([twig], backend="array")

    def test_lowered_program_matches_plan_evaluate(
        self, figure1_lattice
    ) -> None:
        """Direct lowering check, no batch machinery in between."""
        estimator = RecursiveDecompositionEstimator(figure1_lattice, voting=True)
        queries = [
            LabeledTree.path(["computer", "laptops", "laptop"]),
            LabeledTree.path(["computer", "desktops", "desktop", "price"]),
        ]
        estimator.estimate_batch(queries)
        warm = list(estimator._kernel_warm_plans())
        assert warm
        for _pattern_id, plan in warm:
            assert execute_program(lower_plan(plan)) == plan.evaluate()

    def test_parallel_kernel_batch_matches_serial(self, figure1_lattice) -> None:
        queries = [
            LabeledTree.path(["computer", "laptops", "laptop"]),
            LabeledTree.path(["computer", "desktops", "desktop"]),
        ] * 4
        estimator = RecursiveDecompositionEstimator(figure1_lattice)
        expected = estimator.estimate_batch(queries)
        for backend in KERNEL_BACKENDS:
            fresh = RecursiveDecompositionEstimator(figure1_lattice)
            fresh.estimate_batch(queries)  # compile + pre-lower source plans
            assert (
                fresh.estimate_batch(queries, workers=2, backend=backend)
                == expected
            ), backend


# ----------------------------------------------------------------------
# ArrayStore bulk gathers
# ----------------------------------------------------------------------


def make_store() -> ArrayStore:
    store = ArrayStore()
    store.add(("a", ()), 3)
    store.add(("b", ()), 0)
    store.add(("c", ()), 2**40)
    return store


class TestGatherCounts:
    def test_gathers_in_request_order(self) -> None:
        store = make_store()
        out = store.gather_counts([2, 0, 1, 0])
        assert out.typecode == "q"
        assert list(out) == [2**40, 3, 0, 3]

    def test_zero_counts_survive(self) -> None:
        assert list(make_store().gather_counts([1, 1])) == [0, 0]

    def test_large_counts_unclipped(self) -> None:
        # 'q' slots: counts past 2**31 (and 2**32) must come back intact.
        store = ArrayStore()
        store.add(("a", ()), 2**31 + 7)
        store.add(("b", ()), 2**40 + 11)
        assert list(store.gather_counts([0, 1])) == [2**31 + 7, 2**40 + 11]

    def test_missing_id_raises_with_id_in_message(self) -> None:
        store = make_store()
        with pytest.raises(KeyError, match=r"pattern id 7 not in store"):
            store.gather_counts([0, 7])
        with pytest.raises(KeyError, match=r"pattern id -1 not in store"):
            store.gather_counts([-1])

    def test_unknown_id_never_wraps_around(self) -> None:
        # A negative id must not silently read from the end of the
        # count vector the way a raw array index would.
        store = make_store()
        with pytest.raises(KeyError, match=r"pattern id -2 not in store"):
            store.gather_counts([-2])

    def test_missing_substitute(self) -> None:
        store = make_store()
        assert list(store.gather_counts([0, 99, -5], missing=-1)) == [3, -1, -1]

    def test_empty_input(self) -> None:
        assert list(make_store().gather_counts([])) == []

    def test_gather_emits_counter_when_observed(self) -> None:
        store = make_store()
        with obs.observed() as (registry, _):
            store.gather_counts([0, 1, 2])
        counter = registry.get("store_gather_ids_total")
        assert counter is not None
        assert counter.value(backend="array") == 3
