"""Shard → merge mining: exact partition plans, bit-identical results.

The headline acceptance property: for any document, level, and shard
count, :func:`~repro.mining.mine_lattice_sharded` returns *exactly*
what the serial miner returns — the same counts in the same dict order,
level by level.  Hypothesis drives random trees through random shard
counts; fixed tests pin the planner's partition invariants, the
residue-anchored boundary correction, the worker fan-out, and the
checksummed shard-payload transport under fault injection.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import LabeledTree, LatticeSummary
from repro.datasets import generate_nasa, generate_xmark
from repro.mining import anchored_counts, mine_lattice, mine_lattice_sharded
from repro.parallel.sharding import ShardMiningPool
from repro.resilience import fault_plan
from repro.store import ChecksumMismatch, DictStore
from repro.trees import RegionIndex, plan_shards
from repro.trees.matching import DocumentIndex

LABELS = "abcd"


@st.composite
def random_tree(draw, min_size=1, max_size=14, labels=LABELS):
    """Uniform-ish random labeled tree via random parent pointers."""
    size = draw(st.integers(min_size, max_size))
    parent_choices = [draw(st.integers(0, i - 1)) for i in range(1, size)]
    node_labels = [draw(st.sampled_from(labels)) for _ in range(size)]
    tree = LabeledTree(node_labels[0])
    for i in range(1, size):
        tree.add_child(parent_choices[i - 1], node_labels[i])
    return tree


def assert_levels_identical(sharded, serial):
    """Counts AND dict order must match, level by level."""
    assert list(sharded.levels) == list(serial.levels)
    for size in serial.levels:
        assert list(sharded.levels[size].items()) == list(
            serial.levels[size].items()
        )


# ----------------------------------------------------------------------
# plan_shards
# ----------------------------------------------------------------------


class TestShardPlan:
    def test_rejects_bad_shard_counts(self):
        tree = LabeledTree("a")
        with pytest.raises(ValueError, match="shards"):
            plan_shards(tree, 0)

    def test_single_shard_is_the_whole_document(self):
        tree = LabeledTree.from_nested(("a", [("b", []), ("c", [("b", [])])]))
        plan = plan_shards(tree, 1)
        assert plan.roots == (tree.root,)
        assert plan.residue == ()
        assert plan.num_shards == 1

    def test_single_node_document(self):
        plan = plan_shards(LabeledTree("a"), 5)
        assert plan.roots == (0,)
        assert plan.residue == ()

    @settings(max_examples=60, deadline=None)
    @given(tree=random_tree(), shards=st.integers(1, 6))
    def test_plan_is_an_exact_partition(self, tree, shards):
        plan = plan_shards(tree, shards)
        regions = RegionIndex(tree)
        seen: set[int] = set(plan.residue)
        assert len(seen) == len(plan.residue)
        for root in plan.roots:
            span = regions.region(root)
            subtree = {
                node
                for node in range(tree.size)
                if span.contains(regions.region(node))
            }
            assert len(subtree) == regions.subtree_size(root)
            assert not (seen & subtree)  # pairwise disjoint
            seen |= subtree
        assert seen == set(range(tree.size))  # covers every node

    @settings(max_examples=30, deadline=None)
    @given(tree=random_tree(min_size=2), shards=st.integers(1, 6))
    def test_residue_nodes_are_shard_root_ancestors(self, tree, shards):
        plan = plan_shards(tree, shards)
        root_set = set(plan.roots)
        for node in plan.residue:
            assert node not in root_set
            # Every residue node has some shard root strictly below it.
            stack = list(tree.child_ids(node))
            found = False
            while stack:
                child = stack.pop()
                if child in root_set:
                    found = True
                    break
                stack.extend(tree.child_ids(child))
            assert found


# ----------------------------------------------------------------------
# anchored_counts
# ----------------------------------------------------------------------


class TestAnchoredCounts:
    def test_empty_anchor_set_counts_nothing(self):
        tree = LabeledTree.from_nested(("a", [("b", [])]))
        assert anchored_counts(DocumentIndex(tree), (), 3) == {}

    @settings(max_examples=40, deadline=None)
    @given(tree=random_tree(max_size=10), level=st.integers(1, 3))
    def test_all_nodes_anchored_recovers_full_counts(self, tree, level):
        # Every occurrence maps its root to exactly one node, so
        # anchoring at every node recovers the whole-document counts.
        index = DocumentIndex(tree)
        full = dict(mine_lattice(tree, level).all_patterns())
        assert anchored_counts(index, tuple(range(tree.size)), level) == full

    @settings(max_examples=40, deadline=None)
    @given(tree=random_tree(max_size=10), level=st.integers(1, 3))
    def test_anchor_partition_sums_to_full_counts(self, tree, level):
        # Splitting the anchor set splits the counts additively — the
        # monoid structure the boundary correction relies on.
        index = DocumentIndex(tree)
        mid = tree.size // 2
        low = anchored_counts(index, tuple(range(mid)), level)
        high = anchored_counts(index, tuple(range(mid, tree.size)), level)
        total: dict = dict(low)
        for key, count in high.items():
            total[key] = total.get(key, 0) + count
        assert total == dict(mine_lattice(tree, level).all_patterns())


# ----------------------------------------------------------------------
# Bit-identical equivalence
# ----------------------------------------------------------------------


class TestShardedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        tree=random_tree(),
        level=st.integers(1, 4),
        shards=st.integers(1, 8),
    )
    def test_sharded_matches_serial_bit_for_bit(self, tree, level, shards):
        serial = mine_lattice(tree, level)
        sharded = mine_lattice_sharded(tree, level, shards=shards)
        assert_levels_identical(sharded, serial)

    @pytest.mark.parametrize("shards", [1, 2, 4, 9, 1000])
    def test_xmark_fixture(self, shards):
        document = generate_xmark(scale=30, seed=5)
        serial = mine_lattice(document, 3)
        sharded = mine_lattice_sharded(document, 3, shards=shards)
        assert_levels_identical(sharded, serial)

    def test_nasa_fixture_level4(self):
        document = generate_nasa(n_records=10, seed=2)
        serial = mine_lattice(document, 4)
        sharded = mine_lattice_sharded(document, 4, shards=6)
        assert_levels_identical(sharded, serial)

    def test_chain_document(self):
        document = LabeledTree.path(list("abcabcab"))
        serial = mine_lattice(document, 3)
        sharded = mine_lattice_sharded(document, 3, shards=3)
        assert_levels_identical(sharded, serial)

    def test_sink_receives_serial_order(self):
        document = generate_xmark(scale=20, seed=1)
        serial_sink, sharded_sink = DictStore(), DictStore()
        mine_lattice(document, 3, sink=serial_sink)
        mine_lattice_sharded(document, 3, shards=4, sink=sharded_sink)
        assert list(sharded_sink.items()) == list(serial_sink.items())

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValueError, match="max_size"):
            mine_lattice_sharded(LabeledTree("a"), 0, shards=2)

    def test_summary_build_routes_through_shards(self):
        document = generate_xmark(scale=20, seed=3)
        serial = LatticeSummary.build(document, 3)
        sharded = LatticeSummary.build(document, 3, shards=4)
        assert list(sharded.patterns()) == list(serial.patterns())


# ----------------------------------------------------------------------
# Worker fan-out and payload transport
# ----------------------------------------------------------------------


class TestShardWorkers:
    def test_parallel_shards_match_serial(self):
        document = generate_xmark(scale=30, seed=7)
        serial = mine_lattice(document, 3)
        sharded = mine_lattice_sharded(document, 3, shards=4, workers=2)
        assert_levels_identical(sharded, serial)

    def test_pool_requires_two_workers(self):
        with pytest.raises(ValueError, match="workers >= 2"):
            ShardMiningPool(3, 1)

    def test_pool_returns_stores_in_shard_order(self):
        trees = [
            LabeledTree.from_nested(("a", [("b", [])])),
            LabeledTree.from_nested(("c", [("d", []), ("d", [])])),
        ]
        with ShardMiningPool(2, 2) as pool:
            stores = pool.mine(trees)
        assert [dict(s.items())[("a", (("b", ()),))] for s in stores[:1]] == [1]
        assert dict(stores[1].items())[("c", ())] == 1

    def test_empty_subtree_list(self):
        with ShardMiningPool(2, 2) as pool:
            assert pool.mine([]) == []

    def test_corrupted_shard_payload_dies_typed(self):
        # The chaos leg's contract: a shard payload corrupted in flight
        # must fail the CRC re-verify with a typed ChecksumMismatch —
        # never merge garbage into the summary.
        document = generate_xmark(scale=20, seed=9)
        with fault_plan("corrupt@store.load:times=1"):
            with pytest.raises(ChecksumMismatch):
                mine_lattice_sharded(document, 3, shards=4, workers=2)
