"""Unit tests for incremental lattice maintenance."""

import pytest

from repro import LabeledTree, mine_lattice
from repro.core.incremental import IncrementalLattice


def _full_counts(document: LabeledTree, level: int) -> dict:
    return mine_lattice(document, level).all_patterns()


class TestExactness:
    def test_single_append_matches_rebuild(self):
        doc = LabeledTree.from_nested(("db", [("rec", ["a", "b"])]))
        inc = IncrementalLattice(doc, 3)
        inc.append_record(LabeledTree.from_nested(("rec", ["a", "c"])))
        assert dict(inc.summary().patterns()) == _full_counts(inc.document, 3)

    def test_spanning_pattern_appears(self):
        # Regression: db(x,y) never occurs in the old doc nor inside the
        # record; it exists only as a spanning match through the root.
        doc = LabeledTree.from_nested(("db", ["x"]))
        inc = IncrementalLattice(doc, 3)
        inc.append_record(LabeledTree("y"))
        from repro.trees.canonical import canon_from_nested

        assert inc.count(canon_from_nested(("db", ["x", "y"]))) == 1
        assert dict(inc.summary().patterns()) == _full_counts(inc.document, 3)

    def test_repeated_appends_match_rebuild(self):
        doc = LabeledTree.from_nested(("db", [("rec", ["a"])]))
        inc = IncrementalLattice(doc, 4)
        records = [
            LabeledTree.from_nested(("rec", ["a", "b"])),
            LabeledTree.from_nested(("rec", [("a", ["c"])])),
            LabeledTree.from_nested(("rec", ["b", "b"])),
            LabeledTree("lone"),
        ]
        for record in records:
            inc.append_record(record)
            assert dict(inc.summary().patterns()) == _full_counts(
                inc.document, 4
            ), record

    def test_record_with_root_label_collision(self):
        # The record contains nodes labeled like the document root.
        doc = LabeledTree.from_nested(("db", ["x"]))
        inc = IncrementalLattice(doc, 3)
        inc.append_record(LabeledTree.from_nested(("db", ["y"])))
        assert dict(inc.summary().patterns()) == _full_counts(inc.document, 3)

    def test_duplicate_record_shapes_multiply(self):
        doc = LabeledTree.from_nested(("db", [("rec", ["a"])]))
        inc = IncrementalLattice(doc, 3)
        inc.append_record(LabeledTree.from_nested(("rec", ["a"])))
        inc.append_record(LabeledTree.from_nested(("rec", ["a"])))
        from repro.trees.canonical import canon_from_nested

        # db(rec,rec): ordered injective pairs of three recs = 6.
        assert inc.count(canon_from_nested(("db", ["rec", "rec"]))) == 6
        assert dict(inc.summary().patterns()) == _full_counts(inc.document, 3)

    def test_dataset_records(self, small_nasa):
        # Graft a realistic record onto a realistic document.
        inc = IncrementalLattice(small_nasa.copy(), 3)
        record = LabeledTree.from_nested(
            (
                "dataset",
                [
                    "title",
                    ("author", ["lastName", "firstName"]),
                    ("date", ["year", "month", "day"]),
                    "identifier",
                ],
            )
        )
        inc.append_record(record)
        assert dict(inc.summary().patterns()) == _full_counts(inc.document, 3)


class TestBookkeeping:
    def test_appends_counter(self):
        inc = IncrementalLattice(LabeledTree.from_nested(("db", ["x"])), 2)
        assert inc.appends == 0
        inc.append_record(LabeledTree("y"))
        inc.append_record(LabeledTree("z"))
        assert inc.appends == 2

    def test_summary_snapshot_is_independent(self):
        inc = IncrementalLattice(LabeledTree.from_nested(("db", ["x"])), 2)
        snapshot = inc.summary()
        inc.append_record(LabeledTree("y"))
        assert snapshot.get(("y", ())) is None
        assert inc.count(("y", ())) == 1

    def test_document_grows(self):
        doc = LabeledTree.from_nested(("db", ["x"]))
        inc = IncrementalLattice(doc, 2)
        inc.append_record(LabeledTree.from_nested(("rec", ["a", "b"])))
        assert inc.document.size == 5

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            IncrementalLattice(LabeledTree("db"), 1)

    def test_summary_usable_by_estimators(self):
        from repro import RecursiveDecompositionEstimator, TwigQuery

        inc = IncrementalLattice(LabeledTree.from_nested(("db", ["x"])), 3)
        for _ in range(3):
            inc.append_record(LabeledTree.from_nested(("rec", ["a", "b"])))
        estimator = RecursiveDecompositionEstimator(inc.summary())
        assert estimator.estimate(TwigQuery.parse("rec(a,b)")) == 3.0
