"""store-merge-purity: the monoid-law checker against seeded fixtures."""

import textwrap
from pathlib import Path

from repro.devtools.lint import Finding, build_project, lint_paths
from repro.devtools.lint.merge_checkers import merge_analysis_for

BASE = """\
    class SummaryStore:
        def merge(self, other):
            raise NotImplementedError
"""


def make_package(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "fixture"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def findings_for_rule(root: Path, rule: str) -> list[Finding]:
    return [f for f in lint_paths([root]) if f.rule == rule]


def test_clean_merge_is_silent(tmp_path):
    root = make_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/store/__init__.py": "",
            "pkg/store/base.py": BASE,
            "pkg/store/impl.py": """\
                from .base import SummaryStore

                class FreshStore(SummaryStore):
                    def __init__(self):
                        self._counts = {}

                    def merge(self, other):
                        merged = FreshStore()
                        counts = dict(self._counts)
                        for key, count in other._counts.items():
                            counts[key] = counts.get(key, 0) + count
                        merged._counts = counts
                        return merged
            """,
        },
    )
    assert findings_for_rule(root, "store-merge-purity") == []


def test_operand_mutation_is_flagged(tmp_path):
    root = make_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/store/__init__.py": "",
            "pkg/store/base.py": BASE,
            "pkg/store/impl.py": """\
                from .base import SummaryStore

                class InPlaceStore(SummaryStore):
                    def __init__(self):
                        self._counts = {}

                    def merge(self, other):
                        self._counts["total"] = 1
                        other._counts.update({})
                        return self
            """,
        },
    )
    findings = findings_for_rule(root, "store-merge-purity")
    messages = [f.message for f in findings]
    assert any("writes through operand 'self'" in m for m in messages)
    assert any("calls .update() on operand 'other'" in m for m in messages)


def test_environ_and_unsorted_set_are_flagged(tmp_path):
    root = make_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/store/__init__.py": "",
            "pkg/store/base.py": BASE,
            "pkg/store/impl.py": """\
                import os

                from .base import SummaryStore

                class EnvStore(SummaryStore):
                    def __init__(self):
                        self._counts = {}

                    def merge(self, other):
                        merged = EnvStore()
                        if os.environ.get("MERGE_MODE"):
                            return merged
                        for key in set(self._counts) | set(other._counts):
                            pass
                        return merged
            """,
        },
    )
    findings = findings_for_rule(root, "store-merge-purity")
    messages = [f.message for f in findings]
    assert any("reads os.environ" in m for m in messages)
    assert any("without sorted()" in m for m in messages)


def test_sorted_set_iteration_is_endorsed(tmp_path):
    root = make_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/store/__init__.py": "",
            "pkg/store/base.py": BASE,
            "pkg/store/impl.py": """\
                from .base import SummaryStore

                class SortedStore(SummaryStore):
                    def __init__(self):
                        self._counts = {}

                    def merge(self, other):
                        merged = SortedStore()
                        for key in sorted(set(self._counts) | set(other._counts)):
                            merged._counts[key] = 1
                        return merged
            """,
        },
    )
    assert findings_for_rule(root, "store-merge-purity") == []


def test_closure_follows_helpers_inside_the_store_package(tmp_path):
    root = make_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/util.py": """\
                def outside(items: set) -> None:
                    for item in items:
                        pass
            """,
            "pkg/store/__init__.py": "",
            "pkg/store/base.py": BASE,
            "pkg/store/helpers.py": """\
                def fold(items: set) -> None:
                    for item in items:
                        pass
            """,
            "pkg/store/impl.py": """\
                from ..util import outside
                from .base import SummaryStore
                from .helpers import fold

                class HelperStore(SummaryStore):
                    def merge(self, other):
                        fold({1, 2})
                        outside({3, 4})
                        return HelperStore()
            """,
        },
    )
    findings = findings_for_rule(root, "store-merge-purity")
    # The helper inside pkg/store is in the merge closure and flagged
    # (with its merge-impl origin); the one outside the package is not.
    assert len(findings) == 1
    assert findings[0].path.endswith("helpers.py")
    assert "merge implementation 'pkg.store.impl.HelperStore.merge'" in (
        findings[0].message
    )


def test_helper_mutating_its_own_self_is_not_an_operand_write(tmp_path):
    # Operand-mutation only applies to merge implementations themselves:
    # a builder method growing a *fresh* store via its own ``self`` is
    # exactly how merges are supposed to be written.
    root = make_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/store/__init__.py": "",
            "pkg/store/base.py": BASE,
            "pkg/store/impl.py": """\
                from .base import SummaryStore

                class GrowStore(SummaryStore):
                    def __init__(self):
                        self._counts = {}

                    def absorb(self, key, count):
                        self._counts[key] = self._counts.get(key, 0) + count

                    def merge(self, other):
                        merged = GrowStore()
                        for key, count in other._counts.items():
                            merged.absorb(key, count)
                        return merged
            """,
        },
    )
    assert findings_for_rule(root, "store-merge-purity") == []


def test_merge_analysis_maps_real_repo_impls(tmp_path):
    # On a fixture with overrides, the analysis collects base + subclass
    # merge implementations and scopes the closure to the store package.
    root = make_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/store/__init__.py": "",
            "pkg/store/base.py": BASE,
            "pkg/store/impl.py": """\
                from .base import SummaryStore

                class A(SummaryStore):
                    def merge(self, other):
                        return A()

                class B(SummaryStore):
                    def merge(self, other):
                        return B()
            """,
        },
    )
    project = build_project([root])
    analysis = merge_analysis_for(project)
    assert "pkg.store.impl:A.merge" in analysis.impls
    assert "pkg.store.impl:B.merge" in analysis.impls
    assert "pkg.store.base:SummaryStore.merge" in analysis.impls
