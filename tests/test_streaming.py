"""Streaming summary maintenance: exact deltas, bounded staleness.

Every insert/delete sequence must leave :meth:`StreamingSummary.count`
and a ``fresh=True`` snapshot equal to a from-scratch rebuild of the
current document — hypothesis drives random sequences against
:func:`~repro.mining.mine_lattice`.  Fixed tests pin the staleness
bound, compaction determinism, persistence, and the array backend.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import LabeledTree, LatticeSummary, StreamingSummary
from repro.core.streaming import DEFAULT_MAX_PENDING
from repro.trees.labeled_tree import TreeBuildError

LABELS = "abcd"
LEVEL = 3


@st.composite
def random_record(draw, min_size=1, max_size=6, labels=LABELS):
    size = draw(st.integers(min_size, max_size))
    parent_choices = [draw(st.integers(0, i - 1)) for i in range(1, size)]
    node_labels = [draw(st.sampled_from(labels)) for _ in range(size)]
    tree = LabeledTree(node_labels[0])
    for i in range(1, size):
        tree.add_child(parent_choices[i - 1], node_labels[i])
    return tree


@st.composite
def update_script(draw):
    """A seed document plus a mixed insert/delete script."""
    seed = LabeledTree("r")
    ops = []
    live_records = draw(st.integers(0, 2))
    for _ in range(live_records):
        record = draw(random_record())
        _attach(seed, record)
    n_ops = draw(st.integers(1, 6))
    balance = live_records
    for _ in range(n_ops):
        if balance > 0 and draw(st.booleans()):
            ops.append(("delete", draw(st.integers(0, balance - 1))))
            balance -= 1
        else:
            ops.append(("insert", draw(random_record())))
            balance += 1
    return seed, ops


def _attach(document: LabeledTree, record: LabeledTree) -> None:
    # Grafting into the caller's document is this helper's entire job —
    # it mirrors what StreamingSummary.insert does internally.
    mapping = {
        record.root: document.add_child(  # lint: disable=twig-arg-mutation
            document.root, record.label(record.root)
        )
    }
    for node in record.preorder():
        if node == record.root:
            continue
        mapping[node] = document.add_child(  # lint: disable=twig-arg-mutation
            mapping[record.parent(node)], record.label(node)
        )


def rebuilt_counts(document: LabeledTree) -> dict:
    return dict(LatticeSummary.build(document, LEVEL).patterns())


# ----------------------------------------------------------------------
# Exactness
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(script=update_script(), max_pending=st.integers(0, 3))
def test_streaming_matches_rebuild_after_every_op(script, max_pending):
    seed, ops = script
    streaming = StreamingSummary(seed.copy(), LEVEL, max_pending=max_pending)
    for kind, arg in ops:
        if kind == "insert":
            streaming.insert(arg)
        else:
            streaming.delete(arg)
        want = rebuilt_counts(streaming.document)
        for pattern, count in want.items():
            assert streaming.count(pattern) == count
        snapshot = streaming.summary(fresh=True)
        assert dict(snapshot.patterns()) == want
        assert streaming.count(("zzz", ())) == 0


def test_deleted_patterns_vanish_from_snapshots():
    seed = LabeledTree("r")
    streaming = StreamingSummary(seed, LEVEL, max_pending=10)
    record = LabeledTree.from_nested(("a", [("b", []), ("b", [])]))
    streaming.insert(record)
    want = rebuilt_counts(streaming.document)
    assert streaming.count(("a", (("b", ()), ("b", ())))) == want[
        ("a", (("b", ()), ("b", ())))
    ]
    streaming.delete(0)
    snapshot = streaming.summary(fresh=True)
    assert dict(snapshot.patterns()) == {("r", ()): 1}
    assert streaming.count(("a", (("b", ()), ("b", ())))) == 0


def test_delete_returns_the_removed_record():
    seed = LabeledTree("r")
    streaming = StreamingSummary(seed, LEVEL)
    record = LabeledTree.from_nested(("a", [("b", [])]))
    streaming.insert(record)
    removed = streaming.delete(0)
    assert removed.isomorphic(record)


def test_delete_validates_the_index():
    streaming = StreamingSummary(LabeledTree("r"), LEVEL)
    with pytest.raises(TreeBuildError, match="root-child index"):
        streaming.delete(0)


def test_insert_rejects_empty_records():
    streaming = StreamingSummary(LabeledTree("r"), LEVEL)
    with pytest.raises(TreeBuildError):
        streaming.insert(LabeledTree("a").remove_nodes([0]))


# ----------------------------------------------------------------------
# Bounded staleness
# ----------------------------------------------------------------------


def test_pending_ops_never_exceed_the_bound():
    streaming = StreamingSummary(LabeledTree("r"), LEVEL, max_pending=2)
    for i in range(7):
        streaming.insert(LabeledTree("a"))
        assert streaming.pending_ops <= 2
    assert streaming.updates == 7


def test_zero_staleness_compacts_every_update():
    streaming = StreamingSummary(LabeledTree("r"), LEVEL, max_pending=0)
    streaming.insert(LabeledTree.from_nested(("a", [("b", [])])))
    assert streaming.pending_ops == 0
    # With no pending deltas the lazy snapshot is already exact.
    assert dict(streaming.summary().patterns()) == rebuilt_counts(
        streaming.document
    )


def test_negative_bound_is_rejected():
    with pytest.raises(ValueError, match="max_pending"):
        StreamingSummary(LabeledTree("r"), LEVEL, max_pending=-1)


def test_stale_snapshot_lags_until_compaction():
    streaming = StreamingSummary(LabeledTree("r"), LEVEL, max_pending=5)
    record = LabeledTree.from_nested(("a", [("b", [])]))
    streaming.insert(record)
    stale = streaming.summary()
    assert ("a", (("b", ()),)) not in dict(stale.patterns())
    assert streaming.count(("a", (("b", ()),))) == 1  # lookups are exact
    fresh = streaming.summary(fresh=True)
    assert dict(fresh.patterns())[("a", (("b", ()),))] == 1
    assert streaming.pending_ops == 0


def test_compaction_is_deterministic():
    def run() -> list:
        streaming = StreamingSummary(LabeledTree("r"), LEVEL, max_pending=10)
        streaming.insert(LabeledTree.from_nested(("a", [("b", [])])))
        streaming.insert(LabeledTree.from_nested(("c", [("a", [])])))
        streaming.delete(0)
        return list(streaming.summary(fresh=True).patterns())

    assert run() == run()


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_save_compacts_and_restore_resumes(tmp_path, backend):
    seed = LabeledTree("r")
    streaming = StreamingSummary(seed, LEVEL, store=backend, max_pending=10)
    streaming.insert(LabeledTree.from_nested(("a", [("b", [])])))
    path = tmp_path / "stream.tl"
    streaming.save(path)
    assert streaming.pending_ops == 0  # save always compacts

    restored = StreamingSummary.restore(
        path, streaming.document.copy(), max_pending=3
    )
    assert restored.level == LEVEL
    assert restored.max_pending == 3
    assert dict(restored.summary().patterns()) == dict(
        streaming.summary().patterns()
    )
    restored.insert(LabeledTree.from_nested(("c", [])))
    want = rebuilt_counts(restored.document)
    assert dict(restored.summary(fresh=True).patterns()) == want


def test_saved_file_matches_one_shot_summary(tmp_path):
    # Stream-building a document and one-shot mining it must persist to
    # byte-identical files (the text container sorts its keys).
    document = LabeledTree("r")
    records = [
        LabeledTree.from_nested(("a", [("b", []), ("c", [])])),
        LabeledTree.from_nested(("a", [("b", [("b", [])])])),
    ]
    streaming = StreamingSummary(LabeledTree("r"), LEVEL)
    for record in records:
        _attach(document, record)
        streaming.insert(record)
    streamed_path = tmp_path / "streamed.tl"
    mined_path = tmp_path / "mined.tl"
    streaming.save(streamed_path)
    LatticeSummary.build(document, LEVEL).save(mined_path)
    assert streamed_path.read_bytes() == mined_path.read_bytes()


def test_restore_rejects_negative_bound(tmp_path):
    path = tmp_path / "s.tl"
    StreamingSummary(LabeledTree("r"), LEVEL).save(path)
    with pytest.raises(ValueError, match="max_pending"):
        StreamingSummary.restore(path, LabeledTree("r"), max_pending=-1)


def test_default_staleness_bound_is_exported():
    streaming = StreamingSummary(LabeledTree("r"), LEVEL)
    assert streaming.max_pending == DEFAULT_MAX_PENDING


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


def test_array_backed_streaming_stays_exact():
    streaming = StreamingSummary(
        LabeledTree("r"), LEVEL, store="array", max_pending=1
    )
    for nested in [("a", [("b", [])]), ("a", [("b", []), ("b", [])])]:
        streaming.insert(LabeledTree.from_nested(nested))
    streaming.delete(0)
    snapshot = streaming.summary(fresh=True)
    assert snapshot.backend == "array"
    assert dict(snapshot.patterns()) == rebuilt_counts(streaming.document)


def test_build_can_route_through_shards():
    document = LabeledTree("r")
    for nested in [("a", [("b", [])]), ("c", [("a", []), ("b", [])])]:
        _attach(document, LabeledTree.from_nested(nested))
    streaming = StreamingSummary(document.copy(), LEVEL, shards=2)
    assert dict(streaming.summary().patterns()) == rebuilt_counts(document)
