"""Chaos and property tests for the fault-tolerant execution layer.

The resilience contract has three faces, and each gets pinned here:

* **bit-identity** — any fault schedule the retry budget absorbs
  (crashes, worker errors, pickling failures, hangs) leaves parallel
  mining and batched estimation byte-for-byte equal to the serial path;
* **graceful degradation** — an exhausted budget finishes the lost
  chunks serially (exact results, ``degraded_mode`` gauge, health
  ledger, CLI exit status 3) instead of failing, unless fallback was
  explicitly disabled, in which case a chained, actionable
  :class:`ChunkFailureError` names the chunk;
* **corruption detection** — a flipped byte in a persisted store
  payload dies with a typed :class:`ChecksumMismatch`, never a garbage
  decode.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    ChecksumMismatch,
    ChunkFailureError,
    DictStore,
    DocumentIndex,
    LabeledTree,
    LatticeSummary,
    RecursiveDecompositionEstimator,
    RetryBudgetExhausted,
    RetryPolicy,
    StoreError,
    StorePayloadError,
    TruncatedPayload,
    TwigQuery,
    UnknownBackendError,
    UnsupportedVersion,
    make_store,
    mine_lattice,
)
from repro import obs
from repro.cli import main
from repro.parallel.batch import FAULT_SITE as BATCH_SITE
from repro.parallel.mining import FAULT_SITE as MINING_SITE
from repro.parallel.pool import PoolSupervisor
from repro.resilience import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    active_plan,
    corrupt_bytes,
    degraded_events,
    fault_plan,
    last_degraded_site,
    run_chunks,
)
from repro.store.array_store import ArrayStore
from repro.trees.serialize import tree_to_xml_file

#: A budget wide enough for every schedule injected below, with no
#: backoff sleeps so the suite stays fast.
ABSORBS = RetryPolicy(max_retries=3, backoff_base=0.0, fallback=True)

NO_FALLBACK = RetryPolicy(max_retries=1, backoff_base=0.0, fallback=False)


@pytest.fixture(scope="module")
def estimator(figure1_doc) -> RecursiveDecompositionEstimator:
    return RecursiveDecompositionEstimator(
        LatticeSummary.build(figure1_doc, 4), voting=True
    )


@pytest.fixture(scope="module")
def queries() -> list[TwigQuery]:
    texts = [
        "/laptops/laptop[brand][price]",
        "/computer/laptops",
        "/desktops/desktop[price]",
        "/computer/laptops/laptop",
        "/laptops/laptop[brand]",
    ] * 2
    return [TwigQuery.parse(text) for text in texts]


@pytest.fixture(scope="module")
def serial_estimates(estimator, queries) -> list[float]:
    return estimator.estimate_batch(queries)


# ----------------------------------------------------------------------
# Fault spec parsing and plan determinism
# ----------------------------------------------------------------------


class TestFaultSpec:
    def test_parse_multi_clause(self):
        plan = FaultPlan.parse(
            "crash@mining.count_chunk:after=1,times=2; "
            "hang@*:seconds=0.5; corrupt@store.array_payload:times=*"
        )
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == ["crash", "hang", "corrupt"]
        assert plan.rules[0].after == 1 and plan.rules[0].times == 2
        assert plan.rules[1].site == "*" and plan.rules[1].seconds == 0.5
        assert plan.rules[2].times is None

    @pytest.mark.parametrize(
        "spec",
        [
            "explode@site",  # unknown kind
            "crash",  # missing @site
            "crash@site:when=now",  # unknown option
            "crash@site:times=soon",  # bad value
            "crash@site:times=0",  # out of range
            "crash@site:p=2.0",  # out of range
            "  ;  ",  # no clauses
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("nope")

    def test_after_times_window(self):
        plan = FaultPlan([FaultRule(kind="error", site="s", after=2, times=2)])
        fired = [plan.draw("s") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert plan.injected == 2

    def test_wildcard_site_matches_everything(self):
        plan = FaultPlan([FaultRule(kind="error", site="*")])
        assert plan.draw("anything") is not None

    def test_kind_filter_neither_fires_nor_consumes(self):
        plan = FaultPlan([FaultRule(kind="corrupt", site="s", times=1)])
        # Pool submissions never draw corrupt rules...
        assert plan.draw("s") is None
        # ...and the single corruption shot is still armed afterwards.
        assert plan.draw("s", kinds=("corrupt",)) is not None

    def test_probability_stream_is_seeded(self):
        def firing_pattern() -> list[bool]:
            plan = FaultPlan(
                [FaultRule(kind="error", site="s", times=None, p=0.5, seed=42)]
            )
            return [plan.draw("s") is not None for _ in range(32)]

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        assert any(first) and not all(first)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.12)
        assert policy.backoff_for(0) == 0.0
        assert policy.backoff_for(1) == pytest.approx(0.05)
        assert policy.backoff_for(2) == pytest.approx(0.10)
        assert policy.backoff_for(3) == pytest.approx(0.12)

    def test_none_fails_fast(self):
        policy = RetryPolicy.none()
        assert policy.max_retries == 0
        assert not policy.fallback
        assert policy.backoff_for(1) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"attempt_timeout": 0.0},
            {"deadline": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# The retry engine, exercised in-process through a fake supervisor
# ----------------------------------------------------------------------


class ImmediateSupervisor:
    """Runs submissions synchronously; safe for error/pickle faults."""

    def __init__(self) -> None:
        self.rebuilds = 0

    def submit(self, fn, /, *args) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except Exception as exc:
            future.set_exception(exc)
        return future

    def rebuild(self) -> None:
        self.rebuilds += 1


def _double(value: int) -> int:
    return value * 2


class TestRunChunks:
    def test_healthy_run(self):
        report = run_chunks(
            _double,
            [(i,) for i in range(5)],
            supervisor=ImmediateSupervisor(),
            site="unit",
            policy=RetryPolicy.none(),
        )
        assert report.results == [0, 2, 4, 6, 8]
        assert report.rounds == 1
        assert report.resubmissions == 0
        assert not report.degraded_mode

    def test_empty_tasks(self):
        report = run_chunks(
            _double,
            [],
            supervisor=ImmediateSupervisor(),
            site="unit",
            policy=RetryPolicy.none(),
        )
        assert report.results == []
        assert report.rounds == 0

    def test_error_fault_recovers_in_order(self):
        plan = FaultPlan([FaultRule(kind="error", site="unit", after=1, times=2)])
        report = run_chunks(
            _double,
            [(i,) for i in range(5)],
            supervisor=ImmediateSupervisor(),
            site="unit",
            policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            plan=plan,
        )
        assert report.results == [0, 2, 4, 6, 8]
        assert report.faults_injected == 2
        assert report.resubmissions == 2
        assert report.rounds == 2

    def test_pickle_fault_fails_at_submission_and_recovers(self):
        plan = FaultPlan([FaultRule(kind="pickle", site="unit", times=1)])
        report = run_chunks(
            _double,
            [(i,) for i in range(3)],
            supervisor=ImmediateSupervisor(),
            site="unit",
            policy=RetryPolicy(max_retries=1, backoff_base=0.0),
            plan=plan,
        )
        assert report.results == [0, 2, 4]
        assert report.resubmissions == 1

    def test_exhausted_without_fallback_raises_chained(self):
        plan = FaultPlan([FaultRule(kind="error", site="unit", times=None)])
        with pytest.raises(RetryBudgetExhausted) as excinfo:
            run_chunks(
                _double,
                [(i,) for i in range(3)],
                supervisor=ImmediateSupervisor(),
                site="unit",
                policy=NO_FALLBACK,
                plan=plan,
            )
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert "chunk 1/3" in str(excinfo.value)
        assert "RetryPolicy" in str(excinfo.value)  # actionable remedy

    def test_exhausted_with_fallback_degrades_exactly(self):
        plan = FaultPlan(
            [FaultRule(kind="error", site="unit", after=2, times=None)]
        )
        before = degraded_events()
        report = run_chunks(
            _double,
            [(i,) for i in range(5)],
            supervisor=ImmediateSupervisor(),
            site="unit",
            policy=RetryPolicy(max_retries=1, backoff_base=0.0, fallback=True),
            serial_fallback=lambda task: _double(*task),
            plan=plan,
        )
        assert report.results == [0, 2, 4, 6, 8]
        assert report.degraded_mode
        assert degraded_events() - before == len(report.degraded)
        assert last_degraded_site() == "unit"

    def test_deadline_short_circuits_to_fallback(self):
        plan = FaultPlan([FaultRule(kind="error", site="unit", times=None)])
        report = run_chunks(
            _double,
            [(i,) for i in range(3)],
            supervisor=ImmediateSupervisor(),
            site="unit",
            policy=RetryPolicy(
                max_retries=10**9, backoff_base=0.0, deadline=0.05, fallback=True
            ),
            serial_fallback=lambda task: _double(*task),
            plan=plan,
        )
        assert report.results == [0, 2, 4]
        assert report.degraded == (0, 1, 2)


class TestPoolSupervisor:
    def test_lazy_rebuildable_lifecycle(self):
        class FakeExecutor:
            def __init__(self) -> None:
                self.shutdowns: list[tuple] = []

            def submit(self, fn, *args) -> Future:
                future: Future = Future()
                future.set_result(fn(*args))
                return future

            def shutdown(self, wait=True, cancel_futures=False) -> None:
                self.shutdowns.append((wait, cancel_futures))

        built: list[FakeExecutor] = []

        def factory() -> FakeExecutor:
            built.append(FakeExecutor())
            return built[-1]

        supervisor = PoolSupervisor(factory)  # type: ignore[arg-type]
        assert built == []  # nothing until the first submit
        supervisor.rebuild()
        assert supervisor.rebuilds == 0  # no pool yet, nothing to rebuild
        assert supervisor.submit(_double, 3).result() == 6
        assert len(built) == 1
        supervisor.rebuild()
        assert supervisor.rebuilds == 1
        assert built[0].shutdowns == [(False, True)]  # abandoned, not joined
        assert supervisor.submit(_double, 4).result() == 8
        assert len(built) == 2
        supervisor.close()
        assert built[1].shutdowns == [(True, False)]


# ----------------------------------------------------------------------
# End-to-end bit-identity through real process pools
# ----------------------------------------------------------------------


def assert_identical_mining(serial, parallel) -> None:
    assert serial.levels.keys() == parallel.levels.keys()
    for size, level in serial.levels.items():
        assert list(parallel.levels[size].items()) == list(level.items())


class TestMiningUnderFaults:
    def test_crash_recovery_is_bit_identical(self, figure1_doc):
        index = DocumentIndex(figure1_doc)
        serial = mine_lattice(index, 4)
        with fault_plan("crash@mining.count_chunk:times=2"):
            parallel = mine_lattice(index, 4, workers=2, retry=ABSORBS)
        assert_identical_mining(serial, parallel)

    def test_error_recovery_is_bit_identical(self, figure1_doc):
        index = DocumentIndex(figure1_doc)
        serial = mine_lattice(index, 4)
        with fault_plan("error@mining.count_chunk:after=1,times=3"):
            parallel = mine_lattice(index, 4, workers=2, retry=ABSORBS)
        assert_identical_mining(serial, parallel)

    def test_degraded_mining_matches_serial(self, figure1_doc):
        index = DocumentIndex(figure1_doc)
        serial = mine_lattice(index, 4)
        before = degraded_events()
        with fault_plan("error@mining.count_chunk:times=*"):
            parallel = mine_lattice(
                index,
                4,
                workers=2,
                retry=RetryPolicy(max_retries=1, backoff_base=0.0, fallback=True),
            )
        assert_identical_mining(serial, parallel)
        assert degraded_events() > before
        assert last_degraded_site() == MINING_SITE


class TestBatchUnderFaults:
    def test_crash_recovery_is_bit_identical(
        self, estimator, queries, serial_estimates
    ):
        with fault_plan("crash@batch.estimate_chunk:times=1"):
            parallel = estimator.estimate_batch(queries, workers=2, retry=ABSORBS)
        assert parallel == serial_estimates

    def test_pickle_failure_recovers(self, estimator, queries, serial_estimates):
        with fault_plan("pickle@batch.estimate_chunk:times=2"):
            parallel = estimator.estimate_batch(queries, workers=2, retry=ABSORBS)
        assert parallel == serial_estimates

    def test_hang_is_cut_by_attempt_timeout(
        self, estimator, queries, serial_estimates
    ):
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, attempt_timeout=0.5)
        with fault_plan("hang@batch.estimate_chunk:times=1,seconds=2.0"):
            parallel = estimator.estimate_batch(queries, workers=2, retry=policy)
        assert parallel == serial_estimates

    def test_exhausted_budget_degrades_to_exact_serial(
        self, estimator, queries, serial_estimates
    ):
        before = degraded_events()
        with fault_plan("error@batch.estimate_chunk:times=*"):
            parallel = estimator.estimate_batch(
                queries,
                workers=2,
                retry=RetryPolicy(max_retries=1, backoff_base=0.0, fallback=True),
            )
        assert parallel == serial_estimates
        assert degraded_events() - before == 8  # every chunk fell back
        assert last_degraded_site() == BATCH_SITE

    def test_no_retry_raises_actionable_chunk_error(
        self, estimator, queries
    ):
        with fault_plan("error@batch.estimate_chunk:times=*"):
            with pytest.raises(ChunkFailureError) as excinfo:
                estimator.estimate_batch(queries, workers=2)
        message = str(excinfo.value)
        assert BATCH_SITE in message
        assert "workers=None" in message  # tells the operator what to do
        assert excinfo.value.__cause__ is not None

    def test_counters_and_gauge_reflect_the_chaos(
        self, estimator, queries, serial_estimates
    ):
        with obs.observed() as (registry, _):
            with fault_plan("error@batch.estimate_chunk:times=2"):
                parallel = estimator.estimate_batch(
                    queries, workers=2, retry=ABSORBS
                )
        assert parallel == serial_estimates
        faults = registry.get("fault_injected_total")
        attempts = registry.get("retry_attempts_total")
        assert faults.value(site=BATCH_SITE, kind="error") == 2
        # Worker-raised errors fail exactly the faulted chunks, so
        # re-submissions match injections one for one.
        assert attempts.value(site=BATCH_SITE) == 2
        assert registry.get("retry_rounds_total").value(site=BATCH_SITE) == 1
        assert registry.get("degraded_mode").value(site=BATCH_SITE) == 0

    def test_degraded_gauge_and_exhausted_counter(self, estimator, queries):
        with obs.observed() as (registry, _):
            with fault_plan("error@batch.estimate_chunk:times=*"):
                estimator.estimate_batch(
                    queries,
                    workers=2,
                    retry=RetryPolicy(
                        max_retries=1, backoff_base=0.0, fallback=True
                    ),
                )
        assert registry.get("degraded_mode").value(site=BATCH_SITE) == 1
        assert registry.get("retry_exhausted_total").value(site=BATCH_SITE) == 8

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(after=st.integers(0, 3), times=st.integers(1, 2))
    def test_any_absorbed_error_schedule_is_bit_identical(
        self, estimator, queries, serial_estimates, after, times
    ):
        spec = f"error@batch.estimate_chunk:after={after},times={times}"
        with fault_plan(spec):
            parallel = estimator.estimate_batch(queries, workers=2, retry=ABSORBS)
        assert parallel == serial_estimates


# ----------------------------------------------------------------------
# Activation: environment spec and explicit shielding
# ----------------------------------------------------------------------


class TestActivation:
    def test_env_spec_is_parsed_and_cached(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "error@nowhere.special:times=1,seed=101")
        plan = active_plan()
        assert plan is not None and plan.rules[0].site == "nowhere.special"
        assert active_plan() is plan  # same object: counting state holds

    def test_env_driven_fault_is_absorbed(
        self, monkeypatch, estimator, queries, serial_estimates
    ):
        monkeypatch.setenv(
            ENV_VAR, "error@batch.estimate_chunk:times=1,seed=102"
        )
        parallel = estimator.estimate_batch(queries, workers=2, retry=ABSORBS)
        assert parallel == serial_estimates

    def test_fault_plan_none_shields_from_env(self, monkeypatch):
        monkeypatch.setenv(
            ENV_VAR, "corrupt@store.array_payload:times=*,seed=103"
        )
        store = ArrayStore()
        store.add(("a", (("b", ()),)), 7)
        with fault_plan(None):
            assert active_plan() is None
            restored = ArrayStore.from_payload(store.to_payload())
        assert list(restored.items()) == list(store.items())

    def test_no_plan_is_a_no_op(self):
        with fault_plan(None):
            assert corrupt_bytes("store.array_payload", b"abc") == b"abc"


# ----------------------------------------------------------------------
# Store payload integrity
# ----------------------------------------------------------------------


def _array_store() -> ArrayStore:
    store = ArrayStore()
    store.add(("a", (("b", ()),)), 3)
    store.add(("a", (("b", ()), ("c", ()))), 5)
    return store


class TestStoreIntegrity:
    def test_array_bit_flip_dies_with_checksum_mismatch(self):
        payload = _array_store().to_payload()
        counts = bytearray(payload["counts"])
        counts[len(counts) // 2] ^= 0x01
        payload["counts"] = bytes(counts)
        with pytest.raises(ChecksumMismatch, match="checksum mismatch"):
            ArrayStore.from_payload(payload)

    def test_array_injected_corruption_detected(self):
        payload = _array_store().to_payload()
        with fault_plan("corrupt@store.array_payload:times=1"):
            with pytest.raises(ChecksumMismatch):
                ArrayStore.from_payload(payload)

    def test_dict_injected_corruption_detected(self):
        store = DictStore()
        store.add(("a", (("b", ()),)), 3)
        payload = store.to_payload()
        with fault_plan("corrupt@store.dict_payload:times=1"):
            with pytest.raises(ChecksumMismatch):
                DictStore.from_payload(payload)

    def test_dict_round_trip_preserves_order(self):
        store = DictStore()
        store.add(("z", ()), 9)
        store.add(("a", (("b", ()),)), 3)
        restored = DictStore.from_payload(store.to_payload())
        assert list(restored.items()) == list(store.items())

    def test_array_v1_payload_still_loads(self):
        store = _array_store()
        payload = store.to_payload()
        del payload["crc32"]
        payload["payload_version"] = 1
        restored = ArrayStore.from_payload(payload)
        assert list(restored.items()) == list(store.items())

    def test_unknown_version_rejected(self):
        payload = _array_store().to_payload()
        payload["payload_version"] = 99
        with pytest.raises(UnsupportedVersion):
            ArrayStore.from_payload(payload)

    def test_missing_field_is_truncated(self):
        payload = _array_store().to_payload()
        del payload["crc32"]
        payload["payload_version"] = 1  # v1: no checksum to catch it first
        del payload["labels"]
        with pytest.raises(TruncatedPayload):
            ArrayStore.from_payload(payload)

    def test_short_count_vector_is_truncated(self):
        payload = _array_store().to_payload()
        del payload["crc32"]
        payload["payload_version"] = 1
        payload["counts"] = payload["counts"][:-3]
        with pytest.raises(TruncatedPayload):
            ArrayStore.from_payload(payload)

    def test_non_bytes_counts_is_truncated(self):
        payload = _array_store().to_payload()
        payload["counts"] = [1, 2, 3]
        with pytest.raises(TruncatedPayload):
            ArrayStore.from_payload(payload)

    def test_dict_malformed_stream_is_truncated(self):
        from repro.store.integrity import payload_checksum

        data = b"notanumber\tkey"
        payload = {
            "payload_version": 2,
            "data": data,
            "crc32": payload_checksum([data]),
        }
        with pytest.raises(TruncatedPayload):
            DictStore.from_payload(payload)

    def test_taxonomy_keeps_value_error_base(self):
        assert issubclass(ChecksumMismatch, StorePayloadError)
        assert issubclass(TruncatedPayload, StorePayloadError)
        assert issubclass(UnsupportedVersion, StorePayloadError)
        assert issubclass(StorePayloadError, StoreError)
        assert issubclass(UnknownBackendError, StoreError)
        assert issubclass(StoreError, ValueError)

    def test_unknown_backend_is_typed(self):
        with pytest.raises(UnknownBackendError):
            make_store("bogus")
        with pytest.raises(ValueError):  # callers matching ValueError still work
            make_store("bogus")


# ----------------------------------------------------------------------
# CLI: retry flags and the degraded exit status
# ----------------------------------------------------------------------


class TestCliResilience:
    @pytest.fixture()
    def xml_file(self, tmp_path, figure1_doc):
        path = tmp_path / "doc.xml"
        tree_to_xml_file(figure1_doc, path)
        return path

    def test_healthy_run_with_retry_flags_exits_zero(self, xml_file, tmp_path):
        out = tmp_path / "s.tsv"
        code = main(
            [
                "summarize",
                str(xml_file),
                "-o",
                str(out),
                "--workers",
                "2",
                "--retry",
                "1",
                "--timeout",
                "30",
            ]
        )
        assert code == 0 and out.exists()

    def test_degraded_run_exits_three(
        self, xml_file, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(
            ENV_VAR, "error@mining.count_chunk:times=*,seed=104"
        )
        out = tmp_path / "s.tsv"
        code = main(
            [
                "summarize",
                str(xml_file),
                "-o",
                str(out),
                "--workers",
                "2",
                "--retry",
                "1",
            ]
        )
        assert code == 3
        assert out.exists()  # degraded still means completed
        assert "degraded" in capsys.readouterr().err

    def test_persistent_fault_without_retry_exits_one(
        self, xml_file, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(
            ENV_VAR, "error@mining.count_chunk:times=*,seed=105"
        )
        code = main(
            [
                "summarize",
                str(xml_file),
                "-o",
                str(tmp_path / "s.tsv"),
                "--workers",
                "2",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "mining.count_chunk" in err

    def test_negative_retry_is_usage_error(self, xml_file, tmp_path, capsys):
        code = main(
            [
                "summarize",
                str(xml_file),
                "-o",
                str(tmp_path / "s.tsv"),
                "--workers",
                "2",
                "--retry",
                "-1",
            ]
        )
        assert code == 2
        assert "--retry" in capsys.readouterr().err
