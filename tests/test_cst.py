"""Unit tests for the Correlated Sub-path Tree baseline."""

import pytest

from repro import LabeledTree, TwigQuery, count_matches
from repro.baselines.cst import (
    CorrelatedPathTree,
    _minhash,
    _resemblance,
    _root_to_leaf_paths,
)


@pytest.fixture(scope="module")
def correlated_doc():
    """Document where b and c always co-occur under a (full correlation),
    while d occurs independently."""
    records = []
    for i in range(20):
        kids = ["b", "c"] if i % 2 == 0 else []
        if i % 4 == 0:
            kids = kids + ["d"]
        records.append(("a", kids))
    return LabeledTree.from_nested(("r", records))


class TestMinhash:
    def test_identical_sets_full_resemblance(self):
        sig_a = _minhash({1, 2, 3}, 16)
        sig_b = _minhash({1, 2, 3}, 16)
        assert _resemblance(sig_a, sig_b) == 1.0

    def test_disjoint_sets_low_resemblance(self):
        sig_a = _minhash(set(range(100)), 32)
        sig_b = _minhash(set(range(1000, 1100)), 32)
        assert _resemblance(sig_a, sig_b) < 0.3

    def test_half_overlap(self):
        sig_a = _minhash(set(range(200)), 64)
        sig_b = _minhash(set(range(100, 300)), 64)
        # Jaccard = 100/300 ~= 0.33
        assert 0.1 < _resemblance(sig_a, sig_b) < 0.6

    def test_deterministic(self):
        assert _minhash({5, 7}, 8) == _minhash({5, 7}, 8)


class TestPathDecomposition:
    def test_single_path(self):
        tree = LabeledTree.path(["a", "b", "c"])
        assert _root_to_leaf_paths(tree) == [["a", "b", "c"]]

    def test_branching(self):
        tree = TwigQuery.parse("a(b(c),d)").tree
        paths = {tuple(p) for p in _root_to_leaf_paths(tree)}
        assert paths == {("a", "b", "c"), ("a", "d")}


class TestPathEstimates:
    def test_stored_paths_exact(self, figure1_doc):
        cst = CorrelatedPathTree.build(figure1_doc, max_path_length=4)
        for labels in (["laptop"], ["laptop", "brand"], ["computer", "laptops"]):
            assert cst.estimate(TwigQuery.path(labels)) == count_matches(
                LabeledTree.path(labels), figure1_doc
            )

    def test_long_path_markov_fallback(self, figure1_doc):
        cst = CorrelatedPathTree.build(figure1_doc, max_path_length=2)
        query = TwigQuery.path(["computer", "laptops", "laptop", "brand"])
        true = count_matches(query.tree, figure1_doc)
        assert cst.estimate(query) == pytest.approx(true, rel=0.6)

    def test_absent_path_zero(self, figure1_doc):
        cst = CorrelatedPathTree.build(figure1_doc)
        assert cst.estimate(TwigQuery.path(["laptops", "price"])) == 0.0


class TestTwigEstimates:
    def test_correlated_branches_detected(self, correlated_doc):
        """b and c fully co-occur: CST's signatures should push the
        estimate well above the independence prediction."""
        cst = CorrelatedPathTree.build(correlated_doc)
        query = TwigQuery.parse("a(b,c)")
        true = count_matches(query.tree, correlated_doc)  # 10
        n_a = 20
        independence = n_a * (10 / n_a) * (10 / n_a)  # 5
        estimate = cst.estimate(query)
        assert true == 10
        assert estimate > independence * 1.2
        assert estimate == pytest.approx(true, rel=0.5)

    def test_independent_branch_unaffected(self, correlated_doc):
        cst = CorrelatedPathTree.build(correlated_doc)
        query = TwigQuery.parse("a(b,d)")
        true = count_matches(query.tree, correlated_doc)  # 5 (d implies b)
        assert cst.estimate(query) == pytest.approx(true, rel=0.8)

    def test_zero_branch_zero_twig(self, correlated_doc):
        cst = CorrelatedPathTree.build(correlated_doc)
        assert cst.estimate(TwigQuery.parse("a(b,zzz)")) == 0.0

    def test_capped_by_smallest_branch(self, correlated_doc):
        cst = CorrelatedPathTree.build(correlated_doc)
        estimate = cst.estimate(TwigQuery.parse("a(b,c,d)"))
        # No more roots than the rarest branch (d: 5 roots).
        assert estimate <= 5 * 1.0 * 1.0 * 1.0 + 1e-6

    def test_on_dataset(self, small_nasa):
        cst = CorrelatedPathTree.build(small_nasa)
        query = TwigQuery.parse("dataset(title,author(lastName))")
        true = count_matches(query.tree, small_nasa)
        assert cst.estimate(query) == pytest.approx(true, rel=0.9)


class TestConstructionValidation:
    def test_invalid_params(self, figure1_doc):
        with pytest.raises(ValueError):
            CorrelatedPathTree.build(figure1_doc, max_path_length=0)
        with pytest.raises(ValueError):
            CorrelatedPathTree.build(figure1_doc, signature_size=0)

    def test_byte_size_positive(self, figure1_doc):
        cst = CorrelatedPathTree.build(figure1_doc)
        assert cst.byte_size() > 0
        assert cst.num_paths > 0

    def test_repr(self, figure1_doc):
        assert "CorrelatedPathTree" in repr(CorrelatedPathTree.build(figure1_doc))
