"""Unit tests for the Markov table and path tree baselines."""

import pytest

from repro import LabeledTree, MarkovTable, PathTree, TwigQuery, count_matches


@pytest.fixture(scope="module")
def doc():
    return LabeledTree.from_nested(
        (
            "r",
            [
                ("a", [("b", ["c", "c"]), ("b", ["c"])]),
                ("a", [("b", [])]),
                ("x", [("b", ["c"])]),
            ],
        )
    )


class TestMarkovTable:
    def test_short_paths_exact(self, doc):
        table = MarkovTable.build(doc, order=2)
        for labels in (["a"], ["b"], ["a", "b"], ["b", "c"], ["x", "b"]):
            assert table.estimate(TwigQuery.path(labels)) == pytest.approx(
                count_matches(LabeledTree.path(labels), doc)
            )

    def test_markov_assumption_on_long_path(self, doc):
        table = MarkovTable.build(doc, order=2)
        # s(a/b/c) ≈ s(a,b)*s(b,c)/s(b) = 3*4/4 = 3 (true count is 3).
        assert table.estimate(TwigQuery.path(["a", "b", "c"])) == pytest.approx(3.0)

    def test_higher_order_at_least_as_good(self, doc):
        order3 = MarkovTable.build(doc, order=3)
        query = TwigQuery.path(["r", "a", "b", "c"])
        true = count_matches(query.tree, doc)
        err3 = abs(order3.estimate(query) - true)
        err2 = abs(MarkovTable.build(doc, order=2).estimate(query) - true)
        assert err3 <= err2 + 1e-9

    def test_absent_path_zero(self, doc):
        table = MarkovTable.build(doc, order=2)
        assert table.estimate(TwigQuery.path(["a", "z"])) == 0.0

    def test_branching_rejected(self, doc):
        table = MarkovTable.build(doc, order=2)
        with pytest.raises(ValueError):
            table.estimate(TwigQuery.parse("a(b,c)"))

    def test_invalid_order(self, doc):
        with pytest.raises(ValueError):
            MarkovTable.build(doc, order=1)
        with pytest.raises(ValueError):
            MarkovTable({}, order=0)

    def test_pruning_pools_into_star(self, doc):
        full = MarkovTable.build(doc, order=2)
        pruned = MarkovTable.build(doc, order=2, prune_below=2)
        assert pruned.num_paths < full.num_paths
        assert pruned.byte_size() < full.byte_size()
        # Pruned paths answer from the star bucket: non-zero but inexact.
        assert pruned.estimate(TwigQuery.path(["x", "b"])) > 0.0

    def test_length1_paths_never_pruned(self, doc):
        pruned = MarkovTable.build(doc, order=2, prune_below=100)
        assert pruned.estimate(TwigQuery.path(["x"])) == 1.0

    def test_repr(self, doc):
        assert "order=2" in repr(MarkovTable.build(doc, order=2))


class TestPathTree:
    def test_exact_without_pruning(self, doc):
        tree = PathTree.build(doc)
        for labels in (
            ["r"],
            ["a", "b"],
            ["a", "b", "c"],
            ["r", "a", "b", "c"],
            ["x", "b", "c"],
            ["b", "c"],
        ):
            assert tree.estimate(TwigQuery.path(labels)) == pytest.approx(
                count_matches(LabeledTree.path(labels), doc)
            ), labels

    def test_absent_path_zero(self, doc):
        tree = PathTree.build(doc)
        assert tree.estimate(TwigQuery.path(["r", "z"])) == 0.0

    def test_branching_rejected(self, doc):
        with pytest.raises(ValueError):
            PathTree.build(doc).estimate(TwigQuery.parse("a(b,c)"))

    def test_pruning_reduces_size(self):
        # Many rare sibling labels to coalesce.
        spec = ("r", [(f"rare{i}", ["x"]) for i in range(8)] + [("common", ["x"])] * 9)
        doc = LabeledTree.from_nested(spec)
        full = PathTree.build(doc)
        pruned = PathTree.build(doc, prune_below=2)
        assert pruned.num_nodes < full.num_nodes
        assert pruned.byte_size() < full.byte_size()

    def test_pruned_estimates_average_unequal_branches(self):
        # rareA occurs once, rareB three times; pooling them into a star
        # answers both with the average count 2 — the lossy step.
        spec = ("r", [("rareA", [])] + [("rareB", [])] * 3)
        doc = LabeledTree.from_nested(spec)
        pruned = PathTree.build(doc, prune_below=4)
        assert pruned.estimate(TwigQuery.path(["rareA"])) == pytest.approx(2.0)
        assert pruned.estimate(TwigQuery.path(["rareB"])) == pytest.approx(2.0)

    def test_repr(self, doc):
        assert "PathTree" in repr(PathTree.build(doc))
