"""Unit tests for workload generation and evaluation metrics."""

import pytest

from repro import (
    DocumentIndex,
    RecursiveDecompositionEstimator,
    count_matches,
    evaluate_estimator,
    negative_workload,
    positive_workloads,
)
from repro.workload.metrics import (
    EstimatorEvaluation,
    absolute_relative_error,
    error_cdf,
    sanity_bound,
)


class TestPositiveWorkloads:
    def test_sizes_and_counts(self, small_nasa):
        workloads = positive_workloads(small_nasa, [3, 4, 5], per_level=10, seed=1)
        assert set(workloads) == {3, 4, 5}
        for size, workload in workloads.items():
            assert workload.size == size
            assert 0 < len(workload) <= 10
            for query, count in workload:
                assert query.size == size
                assert count > 0

    def test_true_counts_are_exact(self, small_nasa):
        index = DocumentIndex(small_nasa)
        workloads = positive_workloads(index, [4], per_level=8, seed=2)
        for query, count in workloads[4]:
            assert count == count_matches(query.tree, index)

    def test_deterministic(self, small_nasa):
        a = positive_workloads(small_nasa, [4], per_level=5, seed=9)
        b = positive_workloads(small_nasa, [4], per_level=5, seed=9)
        assert [q.canonical() for q, _ in a[4]] == [q.canonical() for q, _ in b[4]]

    def test_input_validation(self, small_nasa):
        with pytest.raises(ValueError):
            positive_workloads(small_nasa, [])
        with pytest.raises(ValueError):
            positive_workloads(small_nasa, [0, 3])

    def test_workload_helpers(self, small_nasa):
        workload = positive_workloads(small_nasa, [3], per_level=5, seed=1)[3]
        assert workload.non_zero() == len(workload)


class TestNegativeWorkload:
    def test_all_zero_selectivity(self, small_nasa):
        index = DocumentIndex(small_nasa)
        base = positive_workloads(index, [4], per_level=15, seed=3)[4]
        negatives = negative_workload(index, base, seed=4)
        assert len(negatives) > 0
        for query, count in negatives:
            assert count == 0
            assert count_matches(query.tree, index) == 0

    def test_sizes_preserved(self, small_nasa):
        base = positive_workloads(small_nasa, [4], per_level=10, seed=3)[4]
        negatives = negative_workload(small_nasa, base, seed=4)
        assert all(q.size == 4 for q, _ in negatives)

    def test_target_limits_count(self, small_nasa):
        base = positive_workloads(small_nasa, [4], per_level=15, seed=3)[4]
        negatives = negative_workload(small_nasa, base, seed=4, target=3)
        assert len(negatives) <= 3

    def test_queries_distinct(self, small_nasa):
        base = positive_workloads(small_nasa, [4], per_level=15, seed=3)[4]
        negatives = negative_workload(small_nasa, base, seed=4)
        keys = [q.canonical() for q, _ in negatives]
        assert len(keys) == len(set(keys))


class TestSanityBound:
    def test_floor_applied(self):
        assert sanity_bound([1, 2, 3]) == 10.0

    def test_percentile(self):
        counts = list(range(1, 101))  # 1..100
        assert sanity_bound(counts, percentile=10, floor=0) == 10.0
        assert sanity_bound(counts, percentile=50, floor=0) == 50.0

    def test_empty_uses_floor(self):
        assert sanity_bound([]) == 10.0


class TestErrorMetric:
    def test_exact_estimate_zero_error(self):
        assert absolute_relative_error(100, 100.0, 10.0) == 0.0

    def test_percent_scale(self):
        assert absolute_relative_error(100, 150.0, 10.0) == pytest.approx(50.0)

    def test_sanity_bound_kicks_in_for_small_counts(self):
        # true=1, est=2: raw error 100%, sanity-bounded error 10%.
        assert absolute_relative_error(1, 2.0, 10.0) == pytest.approx(10.0)

    def test_invalid_sanity(self):
        with pytest.raises(ValueError):
            absolute_relative_error(0, 1.0, 0.0)


class TestErrorCdf:
    def test_monotone_and_bounded(self):
        cdf = error_cdf([0.5, 5.0, 50.0, 500.0])
        fractions = [f for _t, f in cdf]
        assert fractions == sorted(fractions)
        assert 0.0 <= fractions[0] and fractions[-1] <= 1.0
        assert fractions[-1] == 1.0

    def test_custom_thresholds(self):
        cdf = error_cdf([1.0, 2.0, 3.0], thresholds=[1.5, 2.5, 10.0])
        assert cdf == [(1.5, 1 / 3), (2.5, 2 / 3), (10.0, 1.0)]

    def test_empty_errors(self):
        assert all(f == 1.0 for _t, f in error_cdf([]))


class TestEvaluateEstimator:
    def test_evaluation_fields(self, small_nasa, small_nasa_lattice):
        workload = positive_workloads(small_nasa, [5], per_level=8, seed=5)[5]
        estimator = RecursiveDecompositionEstimator(small_nasa_lattice)
        evaluation = evaluate_estimator(estimator, workload)
        assert evaluation.estimator_name == estimator.name
        assert evaluation.workload_size == 5
        assert len(evaluation.errors) == len(workload)
        assert len(evaluation.response_seconds) == len(workload)
        assert evaluation.average_error >= 0.0
        assert evaluation.average_response_ms >= 0.0

    def test_median_error(self):
        evaluation = EstimatorEvaluation("e", 4, errors=[1.0, 3.0, 2.0])
        assert evaluation.median_error == 2.0
        evaluation.errors.append(4.0)
        assert evaluation.median_error == 2.5

    def test_empty_evaluation_defaults(self):
        evaluation = EstimatorEvaluation("e", 4)
        assert evaluation.average_error == 0.0
        assert evaluation.median_error == 0.0
        assert evaluation.average_response_ms == 0.0
        assert evaluation.exact_zero_rate == 0.0

    def test_exact_zero_rate_on_negatives(self, small_nasa, small_nasa_lattice):
        base = positive_workloads(small_nasa, [4], per_level=10, seed=3)[4]
        negatives = negative_workload(small_nasa, base, seed=4)
        estimator = RecursiveDecompositionEstimator(small_nasa_lattice)
        evaluation = evaluate_estimator(estimator, negatives)
        # The paper reports > 95% exact zeros for TreeLattice.
        assert evaluation.exact_zero_rate >= 0.95

    def test_cdf_passthrough(self, small_nasa, small_nasa_lattice):
        workload = positive_workloads(small_nasa, [4], per_level=5, seed=5)[4]
        estimator = RecursiveDecompositionEstimator(small_nasa_lattice)
        evaluation = evaluate_estimator(estimator, workload)
        assert evaluation.cdf([100.0])[0][1] >= 0.0
