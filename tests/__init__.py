"""Test suite for the TreeLattice reproduction."""
