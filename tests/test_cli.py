"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.trees.serialize import tree_to_xml_file


@pytest.fixture()
def xml_file(tmp_path, figure1_doc):
    path = tmp_path / "doc.xml"
    tree_to_xml_file(figure1_doc, path)
    return path


@pytest.fixture()
def summary_file(tmp_path, xml_file):
    path = tmp_path / "doc.summary"
    assert main(["summarize", str(xml_file), "-k", "4", "-o", str(path)]) == 0
    return path


class TestSummarize:
    def test_writes_summary(self, xml_file, tmp_path, capsys):
        out = tmp_path / "s.tsv"
        code = main(["summarize", str(xml_file), "-o", str(out)])
        assert code == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "mined" in printed
        assert "written" in printed

    def test_with_pruning(self, xml_file, tmp_path, capsys):
        out = tmp_path / "s.tsv"
        code = main(["summarize", str(xml_file), "-o", str(out), "--prune", "0"])
        assert code == 0
        assert "pruned" in capsys.readouterr().out

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(["summarize", str(tmp_path / "nope.xml"), "-o", "x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestEstimate:
    @pytest.mark.parametrize("estimator", ["recursive", "voting", "fixed"])
    def test_estimators(self, summary_file, estimator, capsys):
        code = main(
            [
                "estimate",
                str(summary_file),
                "laptop(brand,price)",
                "--estimator",
                estimator,
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "estimate  : 2.00" in printed

    def test_markov_on_path(self, summary_file, capsys):
        code = main(
            [
                "estimate",
                str(summary_file),
                "/computer/laptops/laptop",
                "--estimator",
                "markov",
            ]
        )
        assert code == 0
        assert "estimate" in capsys.readouterr().out

    def test_markov_on_branching_errors(self, summary_file, capsys):
        code = main(
            [
                "estimate",
                str(summary_file),
                "laptop(brand,price)",
                "--estimator",
                "markov",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExplain:
    def test_trace_printed(self, summary_file, capsys):
        code = main(
            ["explain", str(summary_file), "computer(laptops(laptop(brand,price)))"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "s(t1) * s(t2) / s(common)" in printed
        assert "summary lookups" in printed

    def test_voting_flag(self, summary_file, capsys):
        code = main(
            [
                "explain",
                str(summary_file),
                "computer(laptops(laptop),desktops)",
                "--voting",
            ]
        )
        assert code == 0


class TestExact:
    def test_count(self, xml_file, capsys):
        code = main(["exact", str(xml_file), "laptop(brand,price)"])
        assert code == 0
        assert "count : 2" in capsys.readouterr().out


class TestMine:
    def test_levels_printed(self, xml_file, capsys):
        code = main(["mine", str(xml_file), "-k", "3"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "level" in printed
        assert "    3  " in printed


class TestDataset:
    def test_generates_xml(self, tmp_path, capsys):
        out = tmp_path / "nasa.xml"
        code = main(["dataset", "nasa", "-n", "5", "-o", str(out)])
        assert code == 0
        assert out.exists()
        assert "elements" in capsys.readouterr().out

    def test_unknown_dataset_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "enron", "-o", "x"])


class TestCatalogCli:
    def test_register_list_estimate_forget(self, tmp_path, xml_file, capsys):
        directory = str(tmp_path / "cat")
        assert main(["catalog", directory, "register", "shop", str(xml_file)]) == 0
        assert "registered 'shop'" in capsys.readouterr().out

        assert main(["catalog", directory, "list"]) == 0
        assert "shop" in capsys.readouterr().out

        assert main(
            ["catalog", directory, "estimate", "shop", "laptop(brand,price)"]
        ) == 0
        assert "~= 2.00" in capsys.readouterr().out

        assert main(["catalog", directory, "forget", "shop"]) == 0
        capsys.readouterr()
        assert main(["catalog", directory, "list"]) == 0
        assert "empty catalog" in capsys.readouterr().out

    def test_register_with_budget(self, tmp_path, xml_file, figure1_doc, capsys):
        from repro.core.lattice import LatticeSummary

        # byte_size() reports the real backend footprint, which varies by
        # interpreter; derive the budget from an identical build instead
        # of hard-coding bytes.
        budget = LatticeSummary.build(figure1_doc, 4).byte_size()
        directory = str(tmp_path / "cat")
        code = main(
            [
                "catalog",
                directory,
                "register",
                "shop",
                str(xml_file),
                "--budget",
                str(budget),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "registered" in printed

    def test_register_budget_too_small_errors(self, tmp_path, xml_file, capsys):
        directory = str(tmp_path / "cat")
        code = main(
            ["catalog", directory, "register", "shop", str(xml_file), "--budget", "64"]
        )
        assert code == 1
        assert "cannot be pruned" in capsys.readouterr().err

    def test_estimate_unknown_entry_errors(self, tmp_path, capsys):
        code = main(["catalog", str(tmp_path / "cat"), "estimate", "ghost", "a(b)"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestUsageErrors:
    """Bad user input exits with status 2 and one stderr line."""

    def _assert_usage_error(self, code, capsys):
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # exactly one line

    def test_estimate_unparseable_query(self, summary_file, capsys):
        code = main(["estimate", str(summary_file), "a(b"])
        self._assert_usage_error(code, capsys)

    def test_estimate_missing_summary(self, tmp_path, capsys):
        code = main(["estimate", str(tmp_path / "nope.summary"), "a(b)"])
        self._assert_usage_error(code, capsys)

    def test_estimate_corrupt_summary(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.summary"
        bad.write_text("this is not a lattice summary\n")
        code = main(["estimate", str(bad), "a(b)"])
        self._assert_usage_error(code, capsys)

    def test_explain_unparseable_query(self, summary_file, capsys):
        code = main(["explain", str(summary_file), "a(b"])
        self._assert_usage_error(code, capsys)

    def test_exact_unparseable_query(self, xml_file, capsys):
        code = main(["exact", str(xml_file), "((("])
        self._assert_usage_error(code, capsys)

    def test_stats_missing_summary(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.summary")])
        self._assert_usage_error(code, capsys)

    def test_stats_unparseable_query(self, summary_file, capsys):
        code = main(["stats", str(summary_file), "a(b"])
        self._assert_usage_error(code, capsys)

    def test_message_names_the_offender(self, summary_file, capsys):
        main(["estimate", str(summary_file), "a(b"])
        assert "a(b" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_estimate_metrics_json(self, summary_file, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(
            [
                "estimate",
                str(summary_file),
                "computer(laptops(laptop(brand,price)),desktops)",
                "--metrics-json",
                str(out),
            ]
        )
        assert code == 0
        assert "metrics written" in capsys.readouterr().out
        snapshot = json.loads(out.read_text())
        lookups = snapshot["lattice_lookups_total"]
        assert lookups["type"] == "counter"
        assert sum(v["value"] for v in lookups["values"]) > 0
        assert snapshot["recursion_depth"]["count"] == 1
        assert snapshot["estimate_seconds"]["count"] == 1

    def test_estimate_trace(self, summary_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            [
                "estimate",
                str(summary_file),
                "computer(laptops(laptop(brand,price)),desktops)",
                "--trace",
                str(out),
            ]
        )
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        events = [json.loads(line) for line in out.read_text().splitlines()]
        assert events
        assert all({"seq", "ts", "depth", "event"} <= set(e) for e in events)
        assert any(e["event"] == "lattice_lookup" for e in events)

    def test_summarize_metrics_json(self, xml_file, tmp_path):
        out = tmp_path / "metrics.json"
        code = main(
            [
                "summarize",
                str(xml_file),
                "-o",
                str(tmp_path / "s.tsv"),
                "--metrics-json",
                str(out),
            ]
        )
        assert code == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["lattice_build_seconds"]["count"] == 1
        assert "mining_candidates_total" in snapshot


class TestStats:
    def test_structure_only(self, summary_file, capsys):
        code = main(["stats", str(summary_file)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "level     : 4" in printed
        assert "patterns" in printed
        assert "complete" in printed

    def test_with_queries_table(self, summary_file, capsys):
        code = main(["stats", str(summary_file), "laptop(brand,price)"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "laptop(brand,price) ~= 2.00" in printed
        assert "estimation metrics" in printed
        assert "hit rate" in printed
        assert "recursion depth" in printed

    def test_json_format(self, summary_file, capsys):
        code = main(
            [
                "stats",
                str(summary_file),
                "laptop(brand,price)",
                "--format",
                "json",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        payload = printed[printed.index("{") :]
        snapshot = json.loads(payload)
        assert "lattice_lookups_total" in snapshot

    def test_prometheus_format(self, summary_file, capsys):
        from repro.obs import parse_prometheus_text

        code = main(
            [
                "stats",
                str(summary_file),
                "laptop(brand,price)",
                "--format",
                "prometheus",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        exposition = printed[printed.index("# TYPE") :]
        parsed = parse_prometheus_text(exposition)
        assert any(name.startswith("lattice_lookups") for name in parsed)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_help(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])


class TestEstimateExplainFlag:
    QUERY = "computer(laptops(laptop(brand,price)))"

    def test_explain_prints_execution_backed_trace(self, summary_file, capsys):
        code = main(
            [
                "estimate",
                str(summary_file),
                self.QUERY,
                "--estimator",
                "recursive",
                "--explain",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "estimate  :" in printed
        assert "s(t1) * s(t2) / s(common)" in printed
        assert "ms)" in printed  # span-sourced wall time on the root step
        assert "summary lookups" in printed

    def test_explain_json_is_parseable(self, summary_file, capsys):
        code = main(
            ["estimate", str(summary_file), self.QUERY, "--explain-json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        derivation = payload["derivation"]
        assert derivation["kind"] == "decomposition"
        assert derivation["children"]
        assert payload["estimate"] == derivation["estimate"]
        assert "wall_ms" in derivation

    def test_explain_matches_plain_estimate(self, summary_file, capsys):
        assert main(["estimate", str(summary_file), self.QUERY]) == 0
        plain = capsys.readouterr().out
        assert (
            main(["estimate", str(summary_file), self.QUERY, "--explain"]) == 0
        )
        explained = capsys.readouterr().out
        line = next(l for l in plain.splitlines() if l.startswith("estimate"))
        assert line in explained

    def test_explain_rejects_batch(self, summary_file, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("laptop(brand)\n")
        code = main(
            [
                "estimate",
                str(summary_file),
                "--batch",
                str(batch),
                "--explain",
            ]
        )
        assert code == 2
        assert "--explain" in capsys.readouterr().err

    @pytest.mark.parametrize("estimator", ["fixed", "markov"])
    def test_explain_rejects_non_recursive(self, summary_file, estimator, capsys):
        code = main(
            [
                "estimate",
                str(summary_file),
                self.QUERY,
                "--estimator",
                estimator,
                "--explain",
            ]
        )
        assert code == 2
        assert "recursive or voting" in capsys.readouterr().err


class TestTraceCommand:
    QUERY = "computer(laptops(laptop(brand,price)))"

    def test_single_query_writes_chrome_trace(self, summary_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(["trace", str(summary_file), self.QUERY, "-o", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "roots sampled" in printed
        events = json.loads(out.read_text())
        assert isinstance(events, list) and events
        names = {event["name"] for event in events}
        assert "estimate" in names
        for event in events:
            assert event["ph"] in ("X", "i")
            assert event["cat"] == "repro"

    def test_batch_with_workers_keeps_all_roots(
        self, summary_file, tmp_path, capsys
    ):
        batch = tmp_path / "queries.txt"
        batch.write_text("laptop(brand)\nlaptop(price)\n" + self.QUERY + "\n")
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                str(summary_file),
                "--batch",
                str(batch),
                "--workers",
                "2",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert "3/3 roots sampled" in capsys.readouterr().out
        events = json.loads(out.read_text())
        roots = [
            event
            for event in events
            if event["name"] == "estimate" and event["args"]["parent_id"] is None
        ]
        assert len(roots) == 3

    def test_sample_rate_zero_keeps_nothing(self, summary_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                str(summary_file),
                self.QUERY,
                "--sample-rate",
                "0",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert "0/1 roots sampled" in capsys.readouterr().out
        assert json.loads(out.read_text()) == []

    def test_bad_sample_rate_is_usage_error(self, summary_file, tmp_path, capsys):
        code = main(
            [
                "trace",
                str(summary_file),
                self.QUERY,
                "--sample-rate",
                "2",
                "-o",
                str(tmp_path / "t.json"),
            ]
        )
        assert code == 2
        assert "--sample-rate" in capsys.readouterr().err

    def test_query_and_batch_conflict(self, summary_file, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("laptop(brand)\n")
        code = main(
            [
                "trace",
                str(summary_file),
                self.QUERY,
                "--batch",
                str(batch),
                "-o",
                str(tmp_path / "t.json"),
            ]
        )
        assert code == 2

    def test_missing_query_and_batch(self, summary_file, tmp_path, capsys):
        code = main(
            ["trace", str(summary_file), "-o", str(tmp_path / "t.json")]
        )
        assert code == 2
        assert "missing query" in capsys.readouterr().err


class TestStatsLatencyQuantiles:
    def test_latency_line_printed(self, summary_file, capsys):
        code = main(["stats", str(summary_file), "laptop(brand,price)"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "latency p50/p90/p99" in printed


class TestShardedSummarize:
    def test_shards_writes_identical_file(self, xml_file, tmp_path, capsys):
        serial, sharded = tmp_path / "serial.tl", tmp_path / "sharded.tl"
        assert main(["summarize", str(xml_file), "-o", str(serial)]) == 0
        assert (
            main(["summarize", str(xml_file), "-o", str(sharded), "--shards", "3"])
            == 0
        )
        assert serial.read_bytes() == sharded.read_bytes()

    def test_stream_writes_identical_file(self, xml_file, tmp_path, capsys):
        serial, streamed = tmp_path / "serial.tl", tmp_path / "streamed.tl"
        assert main(["summarize", str(xml_file), "-o", str(serial)]) == 0
        assert (
            main(["summarize", str(xml_file), "-o", str(streamed), "--stream"]) == 0
        )
        assert serial.read_bytes() == streamed.read_bytes()
        assert "streamed" in capsys.readouterr().out

    def test_shards_and_stream_conflict(self, xml_file, tmp_path, capsys):
        code = main(
            [
                "summarize",
                str(xml_file),
                "-o",
                str(tmp_path / "x.tl"),
                "--shards",
                "2",
                "--stream",
            ]
        )
        assert code == 2
        assert "at most one" in capsys.readouterr().err

    def test_zero_shards_is_a_usage_error(self, xml_file, tmp_path, capsys):
        code = main(
            ["summarize", str(xml_file), "-o", str(tmp_path / "x.tl"), "--shards", "0"]
        )
        assert code == 2
        assert "--shards must be >= 1" in capsys.readouterr().err


class TestMerge:
    def test_merges_summaries(self, summary_file, tmp_path, capsys):
        out = tmp_path / "merged.tl"
        code = main(
            ["merge", str(summary_file), str(summary_file), "-o", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "merged 2 summaries" in capsys.readouterr().out

    def test_merged_counts_double(self, summary_file, tmp_path):
        from repro.core.lattice import LatticeSummary

        out = tmp_path / "merged.tl"
        assert (
            main(["merge", str(summary_file), str(summary_file), "-o", str(out)])
            == 0
        )
        one = dict(LatticeSummary.load(summary_file).patterns())
        two = dict(LatticeSummary.load(out).patterns())
        assert two == {key: 2 * count for key, count in one.items()}

    def test_single_input_is_a_usage_error(self, summary_file, tmp_path, capsys):
        code = main(["merge", str(summary_file), "-o", str(tmp_path / "m.tl")])
        assert code == 2
        assert "at least two" in capsys.readouterr().err

    def test_level_mismatch_is_a_usage_error(
        self, xml_file, summary_file, tmp_path, capsys
    ):
        other = tmp_path / "k3.tl"
        assert main(["summarize", str(xml_file), "-k", "3", "-o", str(other)]) == 0
        code = main(
            ["merge", str(summary_file), str(other), "-o", str(tmp_path / "m.tl")]
        )
        assert code == 2
        assert "cannot merge" in capsys.readouterr().err

    def test_missing_input_is_a_usage_error(self, summary_file, tmp_path, capsys):
        code = main(
            [
                "merge",
                str(summary_file),
                str(tmp_path / "nope.tl"),
                "-o",
                str(tmp_path / "m.tl"),
            ]
        )
        assert code == 2
