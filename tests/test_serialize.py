"""Unit tests for XML serialisation."""

import pytest

from repro import LabeledTree, tree_from_xml, tree_from_xml_file, tree_to_xml
from repro.trees.serialize import (
    tree_from_element,
    tree_to_element,
    tree_to_xml_file,
    xml_byte_size,
)


SAMPLE = """
<computer>
  <laptops>
    <laptop><brand>X</brand><price>1</price></laptop>
    <laptop><brand>Y</brand><price>2</price></laptop>
  </laptops>
  <desktops/>
</computer>
"""


class TestParsing:
    def test_structure_only(self):
        tree = tree_from_xml(SAMPLE)
        assert tree.label(0) == "computer"
        assert tree.size == 9  # text content dropped
        assert tree.label_counts()["laptop"] == 2

    def test_values_dropped(self):
        tree = tree_from_xml("<a>hello<b>world</b></a>")
        assert tree.size == 2
        assert sorted(tree.labels) == ["a", "b"]

    def test_attributes_dropped_by_default(self):
        tree = tree_from_xml('<a x="1" y="2"><b/></a>')
        assert tree.size == 2

    def test_attributes_lifted_when_requested(self):
        tree = tree_from_xml('<a x="1"><b y="2"/></a>', include_attributes=True)
        assert tree.size == 4
        assert "@x" in tree.labels
        assert "@y" in tree.labels

    def test_namespaces_stripped(self):
        tree = tree_from_xml('<ns:a xmlns:ns="http://x"><ns:b/></ns:a>')
        assert tree.labels == ["a", "b"]

    def test_bytes_input(self):
        tree = tree_from_xml(b"<a><b/></a>")
        assert tree.size == 2


class TestRoundtrip:
    def test_tree_to_xml_roundtrip(self, figure1_doc):
        text = tree_to_xml(figure1_doc)
        again = tree_from_xml(text)
        assert again.isomorphic(figure1_doc)

    def test_attribute_roundtrip(self):
        tree = LabeledTree.from_nested(("a", ["@x", ("b", ["@y"])]))
        again = tree_from_xml(tree_to_xml(tree), include_attributes=True)
        assert again.isomorphic(tree)

    def test_element_conversion(self):
        tree = LabeledTree.from_nested(("a", ["b", "c"]))
        element = tree_to_element(tree)
        assert element.tag == "a"
        assert len(element) == 2
        assert tree_from_element(element).isomorphic(tree)


class TestFiles:
    def test_file_roundtrip(self, tmp_path, figure1_doc):
        path = tmp_path / "doc.xml"
        written = tree_to_xml_file(figure1_doc, path)
        assert written == path.stat().st_size
        again = tree_from_xml_file(path)
        assert again.isomorphic(figure1_doc)

    def test_file_attributes(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text('<a x="1"><b/><b y="2"/></a>')
        tree = tree_from_xml_file(path, include_attributes=True)
        assert sorted(tree.labels) == ["@x", "@y", "a", "b", "b"]

    def test_large_file_streams(self, tmp_path):
        path = tmp_path / "big.xml"
        body = "".join(f"<item><id/><name/></item>" for _ in range(2000))
        path.write_text(f"<root>{body}</root>")
        tree = tree_from_xml_file(path)
        assert tree.size == 1 + 3 * 2000

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.xml"
        path.write_text("")
        with pytest.raises(Exception):
            tree_from_xml_file(path)


class TestByteSize:
    def test_byte_size_positive_and_consistent(self, figure1_doc):
        size = xml_byte_size(figure1_doc)
        assert size > 0
        bigger = figure1_doc.copy()
        bigger.add_child(0, "printers")
        assert xml_byte_size(bigger) > size
