"""Property-based tests for the extension modules.

Covers the invariants the extensions promise: enumeration agrees with
the counting DP; region encodings reproduce parent/ancestor structure;
incremental maintenance is bit-exact with rebuilds; the path join
agrees with match semantics on linear queries; bucketed values keep the
matcher exact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DocumentIndex,
    LabeledTree,
    count_matches,
    mine_lattice,
)
from repro.core.incremental import IncrementalLattice
from repro.trees.regions import RegionIndex
from repro.trees.twigjoin import PathJoin, count_via_enumeration

from .test_properties import random_tree


class TestEnumerationProperties:
    @given(
        random_tree(max_size=4, labels="ab"),
        random_tree(max_size=8, labels="ab"),
    )
    @settings(max_examples=40, deadline=None)
    def test_enumeration_count_equals_dp(self, query, doc):
        assert count_via_enumeration(query, doc) == count_matches(query, doc)

    @given(
        random_tree(max_size=4, labels="ab"),
        random_tree(max_size=8, labels="ab"),
    )
    @settings(max_examples=25, deadline=None)
    def test_enumerated_matches_are_valid_and_distinct(self, query, doc):
        from repro.trees.twigjoin import enumerate_matches

        seen = set()
        for match in enumerate_matches(query, doc):
            key = tuple(sorted(match.items()))
            assert key not in seen
            seen.add(key)
            assert len(set(match.values())) == len(match)
            for qnode, dnode in match.items():
                assert query.label(qnode) == doc.label(dnode)
                qparent = query.parent(qnode)
                if qparent != -1:
                    assert doc.parent(dnode) == match[qparent]


class TestRegionProperties:
    @given(random_tree(max_size=12, labels="abc"))
    @settings(max_examples=40, deadline=None)
    def test_parent_relation_reconstructed(self, tree):
        index = RegionIndex(tree)
        for node in range(tree.size):
            for other in range(tree.size):
                expected = tree.parent(other) == node
                got = index.region(node).is_parent_of(index.region(other))
                assert got == expected

    @given(random_tree(max_size=12, labels="abc"))
    @settings(max_examples=40, deadline=None)
    def test_intervals_laminar(self, tree):
        """Any two intervals nest or are disjoint — never partially overlap."""
        index = RegionIndex(tree)
        regions = [index.region(n) for n in range(tree.size)]
        for a in regions:
            for b in regions:
                if a is b:
                    continue
                nested = a.contains(b) or b.contains(a)
                disjoint = a.end < b.start or b.end < a.start
                assert nested != disjoint or (nested and not disjoint)
                assert nested or disjoint


class TestPathJoinProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_path_join_agrees_with_matcher(self, data):
        doc = data.draw(random_tree(min_size=2, max_size=12, labels="abc"))
        length = data.draw(st.integers(1, 4))
        labels = [data.draw(st.sampled_from("abc")) for _ in range(length)]
        join = PathJoin(doc)
        assert join.count(labels) == count_matches(LabeledTree.path(labels), doc)


class TestIncrementalProperties:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_append_equals_rebuild(self, data):
        doc = data.draw(random_tree(min_size=1, max_size=8, labels="abc"))
        inc = IncrementalLattice(doc.copy(), 3)
        for _ in range(data.draw(st.integers(1, 3))):
            record = data.draw(random_tree(min_size=1, max_size=5, labels="abc"))
            inc.append_record(record)
        rebuilt = mine_lattice(inc.document, 3).all_patterns()
        assert dict(inc.summary().patterns()) == rebuilt


class TestValueProperties:
    @given(st.lists(st.sampled_from(["10", "20", "30"]), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_value_counts_add_up(self, prices):
        from repro.trees.values import tree_from_xml_with_values, value_twig

        xml = "<shop>" + "".join(
            f"<item><price>{p}</price></item>" for p in prices
        ) + "</shop>"
        doc = tree_from_xml_with_values(xml, buckets=64)
        total = 0
        for value in set(prices):
            query = value_twig("/item[price]", {"price": value}, buckets=64)
            total += count_matches(query.tree, doc)
        # With enough buckets (no collision among 3 values) the bucketed
        # counts partition the items exactly.
        assert total == len(prices)
